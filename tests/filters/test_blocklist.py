"""Tests for blocked-connection persistence (section 5.3 replay rule)."""

import pytest

from repro.filters.blocklist import BlockedConnectionStore

from tests.conftest import in_packet, out_packet, tcp_pair


class TestBlocking:
    def test_blocked_pair_suppressed(self):
        store = BlockedConnectionStore()
        store.block(tcp_pair().inverse, now=0.0)
        assert store.suppress(in_packet(t=1.0))

    def test_sigma_and_inverse_both_match(self):
        # "all the future packets that match any stored σ or σ̄"
        store = BlockedConnectionStore()
        store.block(tcp_pair().inverse, now=0.0)
        assert store.suppress(out_packet(t=1.0))
        assert store.suppress(in_packet(t=2.0))

    def test_unblocked_pair_untouched(self):
        store = BlockedConnectionStore()
        store.block(tcp_pair(sport=1).inverse, now=0.0)
        assert not store.suppress(in_packet(t=1.0))

    def test_accounting(self):
        store = BlockedConnectionStore()
        store.block(tcp_pair(), now=0.0)
        store.suppress(in_packet(t=1.0, size=500))
        store.suppress(in_packet(t=2.0, size=300))
        assert store.suppressed_packets == 2
        assert store.suppressed_bytes == 800

    def test_len(self):
        store = BlockedConnectionStore()
        store.block(tcp_pair(sport=1), now=0.0)
        store.block(tcp_pair(sport=2), now=0.0)
        assert len(store) == 2

    def test_blocking_same_pair_twice_is_one_entry(self):
        store = BlockedConnectionStore()
        store.block(tcp_pair(), now=0.0)
        store.block(tcp_pair().inverse, now=1.0)
        assert len(store) == 1


class TestRetention:
    def test_entry_ages_out(self):
        store = BlockedConnectionStore(retention=10.0)
        store.block(tcp_pair(), now=0.0)
        assert not store.is_blocked(tcp_pair(), now=11.0)

    def test_active_retry_refreshes(self):
        store = BlockedConnectionStore(retention=10.0)
        store.block(tcp_pair(), now=0.0)
        assert store.suppress(in_packet(t=8.0))
        assert store.suppress(in_packet(t=16.0))  # refreshed at t=8

    def test_infinite_retention(self):
        store = BlockedConnectionStore(retention=None)
        store.block(tcp_pair(), now=0.0)
        assert store.is_blocked(tcp_pair(), now=1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockedConnectionStore(retention=0.0)

    def test_clear(self):
        store = BlockedConnectionStore()
        store.block(tcp_pair(), now=0.0)
        store.suppress(in_packet(t=1.0))
        store.clear()
        assert len(store) == 0
        assert store.suppressed_packets == 0


class TestCompact:
    def test_compact_drops_only_expired(self):
        store = BlockedConnectionStore(retention=10.0)
        store.block(tcp_pair(sport=1), now=0.0)
        store.block(tcp_pair(sport=2), now=8.0)
        store.compact(now=11.0)
        assert len(store) == 1
        assert store.is_blocked(tcp_pair(sport=2), now=11.0)

    def test_compact_boundary_is_exclusive(self):
        # Same strictness as is_blocked: now - stamped > retention expires.
        store = BlockedConnectionStore(retention=10.0)
        store.block(tcp_pair(), now=0.0)
        store.compact(now=10.0)
        assert len(store) == 1

    def test_compact_no_retention_is_noop(self):
        store = BlockedConnectionStore(retention=None)
        store.block(tcp_pair(), now=0.0)
        store.compact(now=1e9)
        assert len(store) == 1

    def test_gc_and_compact_agree(self):
        """Interior GC is just a scheduled compact — whatever entries a
        phase-dependent GC has or hasn't collected, a final compact leaves
        the same live set."""
        lazy = BlockedConnectionStore(retention=10.0, gc_interval=1000.0)
        eager = BlockedConnectionStore(retention=10.0, gc_interval=1.0)
        for store in (lazy, eager):
            store.block(tcp_pair(sport=1), now=0.0)
            probe = tcp_pair(sport=999).inverse
            store.suppress(in_packet(pair=probe, t=5.0))   # drives _maybe_gc
            store.suppress(in_packet(pair=probe, t=25.0))  # eager GC fires
            store.block(tcp_pair(sport=2), now=25.0)
            store.compact(now=25.0)
        assert lazy._blocked == eager._blocked
