"""Tests for the naïve exact-timer filter (section 4.2's reference)."""

import pytest

from repro.core.bitmap_filter import FieldMode
from repro.filters.base import Verdict
from repro.filters.naive import NaiveTimerFilter
from repro.net.inet import IPPROTO_UDP
from repro.net.packet import Direction, SocketPair

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR, in_packet, out_packet, tcp_pair, udp_pair


class TestTimerSemantics:
    def test_outbound_installs_timer(self):
        naive = NaiveTimerFilter(expiry=20.0)
        naive.process(out_packet(t=0.0))
        assert naive.process(in_packet(t=10.0)) is Verdict.PASS

    def test_timer_expires(self):
        naive = NaiveTimerFilter(expiry=20.0)
        naive.process(out_packet(t=0.0))
        assert naive.process(in_packet(t=20.5)) is Verdict.DROP

    def test_outbound_resets_timer(self):
        # "If the socket pair is not new to the router, the value of the
        #  associated timer is simply reset to T."
        naive = NaiveTimerFilter(expiry=20.0)
        naive.process(out_packet(t=0.0))
        naive.process(out_packet(t=15.0))
        assert naive.process(in_packet(t=30.0)) is Verdict.PASS

    def test_boundary_inclusive(self):
        naive = NaiveTimerFilter(expiry=20.0)
        naive.process(out_packet(t=0.0))
        assert naive.process(in_packet(t=20.0)) is Verdict.PASS

    def test_unknown_inbound_dropped(self):
        naive = NaiveTimerFilter()
        assert naive.process(in_packet(t=0.0)) is Verdict.DROP

    def test_knows_is_non_mutating(self):
        naive = NaiveTimerFilter(expiry=20.0)
        naive.process(out_packet(t=0.0))
        pair = tcp_pair()
        assert naive.knows(pair, Direction.OUTBOUND, 5.0)
        assert naive.knows(pair.inverse, Direction.INBOUND, 5.0)
        assert not naive.knows(pair, Direction.OUTBOUND, 25.0)

    def test_lazy_expiry_prunes_entry(self):
        naive = NaiveTimerFilter(expiry=5.0)
        naive.process(out_packet(t=0.0))
        naive.process(in_packet(t=10.0))
        assert naive.tracked_pairs == 0

    def test_gc(self):
        naive = NaiveTimerFilter(expiry=1.0, gc_interval=10.0)
        for i in range(50):
            naive.process(out_packet(pair=tcp_pair(sport=1000 + i), t=float(i)))
        naive.process(out_packet(pair=tcp_pair(sport=5000), t=100.0))
        naive.process(out_packet(pair=tcp_pair(sport=5001), t=120.0))
        assert naive.tracked_pairs <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveTimerFilter(expiry=0.0)


class TestFieldModes:
    def test_strict_checks_remote_port(self):
        naive = NaiveTimerFilter(field_mode=FieldMode.STRICT)
        naive.process(out_packet(pair=udp_pair(sport=4000, dport=6881), t=0.0))
        other_port = SocketPair(IPPROTO_UDP, REMOTE_ADDR, 9999, CLIENT_ADDR, 4000)
        assert naive.process(in_packet(pair=other_port, t=1.0)) is Verdict.DROP

    def test_hole_punching_ignores_remote_port(self):
        naive = NaiveTimerFilter(field_mode=FieldMode.HOLE_PUNCHING)
        naive.process(out_packet(pair=udp_pair(sport=4000, dport=6881), t=0.0))
        other_port = SocketPair(IPPROTO_UDP, REMOTE_ADDR, 9999, CLIENT_ADDR, 4000)
        assert naive.process(in_packet(pair=other_port, t=1.0)) is Verdict.PASS

    def test_hole_punching_checks_remote_address(self):
        naive = NaiveTimerFilter(field_mode=FieldMode.HOLE_PUNCHING)
        naive.process(out_packet(pair=udp_pair(sport=4000, dport=6881), t=0.0))
        other_host = SocketPair(IPPROTO_UDP, REMOTE_ADDR + 7, 6881, CLIENT_ADDR, 4000)
        assert naive.process(in_packet(pair=other_host, t=1.0)) is Verdict.DROP


class TestReset:
    def test_reset_clears_state(self):
        naive = NaiveTimerFilter()
        naive.process(out_packet(t=0.0))
        naive.reset()
        assert naive.tracked_pairs == 0
        assert naive.process(in_packet(t=0.1)) is Verdict.DROP
