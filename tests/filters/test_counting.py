"""Tests for the close-aware counting bitmap filter (extension)."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import Verdict
from repro.filters.counting import CountingBitmapFilter
from repro.net.headers import TCPFlags

from tests.conftest import in_packet, out_packet, tcp_pair, udp_pair


def small(**overrides):
    defaults = dict(size=2 ** 12, vectors=4, hashes=3, rotate_interval=5.0)
    defaults.update(overrides)
    return CountingBitmapFilter(BitmapFilterConfig(**defaults))


class TestBitmapParity:
    """Without close signals it behaves like the plain bitmap filter."""

    def test_outbound_passes_and_marks(self):
        filt = small()
        assert filt.process(out_packet(t=0.0)) is Verdict.PASS
        assert filt.process(in_packet(t=1.0)) is Verdict.PASS

    def test_unknown_inbound_dropped(self):
        filt = small()
        assert filt.process(in_packet(t=0.0)) is Verdict.DROP

    def test_rotation_expires(self):
        filt = small()
        filt.process(out_packet(t=0.0))
        assert filt.process(in_packet(t=60.0)) is Verdict.DROP

    def test_within_window_passes(self):
        filt = small()
        filt.process(out_packet(t=0.0))
        assert filt.process(in_packet(t=14.0)) is Verdict.PASS

    def test_udp_never_close_deleted(self):
        filt = small()
        filt.process(out_packet(pair=udp_pair(), t=0.0, flags=TCPFlags.RST))
        assert filt.process(in_packet(pair=udp_pair().inverse, t=1.0)) is Verdict.PASS


class TestCloseAwareDeletion:
    def test_rst_deletes_immediately(self):
        filt = small()
        filt.process(out_packet(t=0.0))
        filt.process(out_packet(t=1.0, flags=TCPFlags.RST))
        assert filt.process(in_packet(t=1.5)) is Verdict.DROP
        assert filt.deleted_on_close == 1

    def test_single_fin_keeps_entry(self):
        # Half-closed: the reverse FIN/data may still arrive.
        filt = small()
        filt.process(out_packet(t=0.0))
        filt.process(out_packet(t=1.0, flags=TCPFlags.FIN | TCPFlags.ACK))
        assert filt.process(in_packet(t=1.5)) is Verdict.PASS
        assert filt.half_closed_pairs == 1

    def test_fin_exchange_deletes(self):
        filt = small()
        filt.process(out_packet(t=0.0))
        filt.process(out_packet(t=1.0, flags=TCPFlags.FIN | TCPFlags.ACK))
        filt.process(in_packet(t=1.1, flags=TCPFlags.FIN | TCPFlags.ACK))
        assert filt.process(in_packet(t=1.5)) is Verdict.DROP
        assert filt.deleted_on_close == 1
        assert filt.half_closed_pairs == 0

    def test_deletion_lowers_utilization(self):
        filt = small()
        for i in range(50):
            filt.process(out_packet(pair=tcp_pair(sport=2000 + i), t=0.01 * i))
        before = filt.current_utilization
        for i in range(50):
            filt.process(
                out_packet(pair=tcp_pair(sport=2000 + i), t=1.0 + 0.01 * i,
                           flags=TCPFlags.RST)
            )
        assert filt.current_utilization < before * 0.1

    def test_deletion_does_not_disturb_other_flows(self):
        filt = small()
        filt.process(out_packet(pair=tcp_pair(sport=1111), t=0.0))
        filt.process(out_packet(pair=tcp_pair(sport=2222), t=0.1))
        filt.process(out_packet(pair=tcp_pair(sport=1111), t=0.5, flags=TCPFlags.RST))
        assert filt.process(in_packet(pair=tcp_pair(sport=2222).inverse, t=1.0)) is Verdict.PASS

    def test_half_close_table_bounded_by_timeout(self):
        filt = small(rotate_interval=1.0)
        for i in range(30):
            filt.process(
                out_packet(pair=tcp_pair(sport=3000 + i), t=float(i),
                           flags=TCPFlags.FIN | TCPFlags.ACK)
            )
        filt.process(out_packet(pair=tcp_pair(sport=9000), t=200.0))
        assert filt.half_closed_pairs <= 1


class TestMemoryAndReset:
    def test_memory_is_4x_plain_bitmap(self):
        filt = small(size=2 ** 12, vectors=4)
        plain_bits_bytes = 4 * 2 ** 12 // 8
        assert filt.memory_bytes == 4 * plain_bits_bytes

    def test_reset(self):
        filt = small()
        filt.process(out_packet(t=0.0))
        filt.reset()
        assert filt.current_utilization == 0.0
        assert filt.process(in_packet(t=0.1)) is Verdict.DROP

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBitmapFilter(half_close_timeout=0.0)
