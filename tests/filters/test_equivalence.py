"""Cross-filter equivalence properties.

The bitmap filter is an approximation of the naïve exact-timer filter
(section 4.2).  Two relationships must hold:

* **No false negatives inside the guaranteed window**: any inbound packet
  the naïve filter (T = (k-1)·Δt) passes, the bitmap filter passes too.
* **Only false positives beyond**: whenever the two disagree, it is the
  bitmap passing something the exact filter drops — never the reverse.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.naive import NaiveTimerFilter
from repro.filters.spi import SPIFilter
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet, SocketPair

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR


def random_workload(seed: int, packets: int = 400, pairs: int = 24):
    """A random interleaving of outbound/inbound packets over a small pair
    population, with strictly increasing timestamps."""
    rng = random.Random(seed)
    population = [
        SocketPair(IPPROTO_TCP, CLIENT_ADDR, 2000 + i, REMOTE_ADDR, 6881 + i % 7)
        for i in range(pairs)
    ]
    now = 0.0
    workload = []
    for _ in range(packets):
        now += rng.expovariate(2.0)
        pair = rng.choice(population)
        if rng.random() < 0.5:
            workload.append(
                Packet(now, pair, size=100, direction=Direction.OUTBOUND)
            )
        else:
            workload.append(
                Packet(now, pair.inverse, size=100, direction=Direction.INBOUND)
            )
    return workload


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_bitmap_never_drops_what_conservative_naive_passes(seed):
    config = BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
    bitmap = BitmapPacketFilter(config)
    # Conservative reference: (k-1)·Δt = 15 s window.
    naive = NaiveTimerFilter(expiry=(config.vectors - 1) * config.rotate_interval)
    for packet in random_workload(seed):
        bitmap_verdict = bitmap.process(packet)
        naive_verdict = naive.process(packet)
        if packet.direction is Direction.OUTBOUND:
            assert bitmap_verdict is Verdict.PASS
            assert naive_verdict is Verdict.PASS
        elif naive_verdict is Verdict.PASS:
            assert bitmap_verdict is Verdict.PASS, (
                f"bitmap dropped a packet inside the guaranteed window at "
                f"t={packet.timestamp:.3f}"
            )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_disagreements_are_only_bitmap_false_positives(seed):
    # Against the *full-window* reference (T = k·Δt = T_e), the bitmap may
    # drop packets near the window edge and may pass hash-collision false
    # positives — but packets younger than (k-1)Δt passed by naive must
    # pass, which test above covers; here we check drop rates order:
    # bitmap drops at least as few as naive-with-(k-1)Δt and at most as
    # many as... nothing strict; instead verify aggregate sanity:
    config = BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
    bitmap = BitmapPacketFilter(config)
    tight = NaiveTimerFilter(expiry=(config.vectors - 1) * config.rotate_interval)
    loose = NaiveTimerFilter(expiry=config.vectors * config.rotate_interval)
    for packet in random_workload(seed):
        bitmap.process(packet)
        tight.process(packet)
        loose.process(packet)
    b = bitmap.stats.drop_rate(Direction.INBOUND)
    assert loose.stats.drop_rate(Direction.INBOUND) <= b <= tight.stats.drop_rate(
        Direction.INBOUND
    ) + 1e-9


def test_spi_and_naive_agree_on_simple_workload():
    # With matching windows and no TCP close signals, SPI and naïve-strict
    # make identical decisions.
    spi = SPIFilter(idle_timeout=20.0)
    naive = NaiveTimerFilter(expiry=20.0)
    disagreements = 0
    for packet in random_workload(17, packets=600):
        if spi.process(packet) is not naive.process(packet):
            disagreements += 1
    # SPI refreshes state on inbound packets too, so it can be slightly
    # more permissive; it must never be stricter overall.
    assert spi.stats.drop_rate(Direction.INBOUND) <= naive.stats.drop_rate(
        Direction.INBOUND
    )


def test_bitmap_close_to_spi_on_trace(small_trace):
    """The Figure 8 headline: SPI and bitmap drop rates are close, with
    SPI slightly higher (it knows exact close times)."""
    spi = SPIFilter(idle_timeout=240.0)
    bitmap = BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
    )
    for packet in small_trace:
        spi.process(packet)
        bitmap.process(packet)
    spi_rate = spi.stats.drop_rate(Direction.INBOUND)
    bitmap_rate = bitmap.stats.drop_rate(Direction.INBOUND)
    assert abs(spi_rate - bitmap_rate) < 0.05


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_counting_filter_matches_bitmap_without_close_signals(seed):
    """With no FIN/RST in the stream, the counting filter is behaviourally
    identical to the plain bitmap filter: same geometry, same hashes, and
    nothing ever triggers a deletion."""
    from repro.filters.counting import CountingBitmapFilter

    config = BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
    bitmap = BitmapPacketFilter(config)
    counting = CountingBitmapFilter(config)
    for packet in random_workload(seed, packets=300):
        assert bitmap.process(packet) is counting.process(packet), (
            f"divergence at t={packet.timestamp:.3f} {packet.direction}"
        )
    assert counting.deleted_on_close == 0
