"""Tests for filter composition and the drop controller."""

import pytest

from repro.core.dropper import RedDropPolicy
from repro.core.throughput import SlidingWindowMeter
from repro.filters.base import AcceptAllFilter, FilterStats, Verdict
from repro.filters.chain import FilterChain
from repro.filters.naive import NaiveTimerFilter
from repro.filters.policy import DropController

from tests.conftest import in_packet, out_packet


class TestFilterChain:
    def test_all_pass(self):
        chain = FilterChain([AcceptAllFilter(), AcceptAllFilter()])
        assert chain.process(out_packet(t=0.0)) is Verdict.PASS

    def test_first_drop_wins(self):
        chain = FilterChain([AcceptAllFilter(), NaiveTimerFilter()])
        assert chain.process(in_packet(t=0.0)) is Verdict.DROP

    def test_member_stats_tracked(self):
        chain = FilterChain([AcceptAllFilter(), NaiveTimerFilter()])
        chain.process(out_packet(t=0.0))
        chain.process(in_packet(t=0.1))
        accept_stats, naive_stats = chain.member_stats()
        assert accept_stats.total == 2
        assert naive_stats.total == 2

    def test_short_circuit(self):
        # A drop in filter 1 must not reach filter 2.
        chain = FilterChain([NaiveTimerFilter(), AcceptAllFilter()])
        chain.process(in_packet(t=0.0))
        _, accept_stats = chain.member_stats()
        assert accept_stats.total == 0

    def test_reset_cascades(self):
        chain = FilterChain([NaiveTimerFilter()])
        chain.process(out_packet(t=0.0))
        chain.reset()
        assert chain.filters[0].tracked_pairs == 0

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FilterChain([])

    def test_len(self):
        assert len(FilterChain([AcceptAllFilter()])) == 1


class TestDropController:
    def test_defaults_to_always_drop(self):
        controller = DropController()
        assert controller.probability(0.0) == 1.0

    def test_red_mbps_thresholds(self):
        controller = DropController.red_mbps(low_mbps=50, high_mbps=100)
        assert controller.probability(0.0) == 0.0  # no upload recorded
        # Feed 75 Mbps into a 1s window: P_d = 0.5.
        controller.record_upload(0.5, int(75e6 / 8))
        assert controller.probability(0.5) == pytest.approx(0.5, abs=0.01)

    def test_throughput_reported(self):
        controller = DropController.red_mbps(50, 100)
        controller.record_upload(0.0, 125_000)  # 1 Mbps over the 1s window
        assert controller.throughput_bps(0.0) == pytest.approx(1e6)

    def test_custom_components(self):
        controller = DropController(
            policy=RedDropPolicy(low=100.0, high=200.0),
            meter=SlidingWindowMeter(window=2.0),
        )
        assert controller.probability(0.0) == 0.0

    def test_never_drop(self):
        assert DropController.never_drop().probability(1e12) == 0.0


class TestFilterStats:
    def test_direction_required(self):
        from repro.net.packet import Packet

        from tests.conftest import tcp_pair

        stats = FilterStats()
        with pytest.raises(ValueError):
            stats.account(Packet(0.0, tcp_pair(), 40), Verdict.PASS)

    def test_drop_rate_no_traffic(self):
        assert FilterStats().drop_rate() == 0.0
        assert FilterStats().overall_drop_rate() == 0.0

    def test_byte_accounting(self):
        stats = FilterStats()
        stats.account(out_packet(t=0.0, size=100), Verdict.PASS)
        stats.account(in_packet(t=0.0, size=50), Verdict.DROP)
        from repro.net.packet import Direction

        assert stats.passed_bytes[Direction.OUTBOUND] == 100
        assert stats.dropped_bytes[Direction.INBOUND] == 50
