"""Tests for the SPI baseline filter."""

import pytest

from repro.filters.base import Verdict
from repro.filters.policy import DropController
from repro.filters.spi import SPIFilter
from repro.net.headers import TCPFlags

from tests.conftest import in_packet, out_packet, tcp_pair, udp_pair


class TestPositiveListing:
    def test_outbound_always_passes(self):
        spi = SPIFilter()
        assert spi.process(out_packet()) is Verdict.PASS

    def test_response_to_outbound_passes(self):
        spi = SPIFilter()
        spi.process(out_packet(t=0.0))
        assert spi.process(in_packet(t=0.1)) is Verdict.PASS

    def test_unsolicited_inbound_dropped(self):
        spi = SPIFilter()
        assert spi.process(in_packet(t=0.0)) is Verdict.DROP

    def test_unsolicited_inbound_does_not_create_state(self):
        spi = SPIFilter(drop_controller=DropController.never_drop())
        spi.process(in_packet(t=0.0))  # passes (P_d = 0) but stateless
        assert spi.tracked_flows == 0

    def test_udp_flows_tracked(self):
        spi = SPIFilter()
        spi.process(out_packet(pair=udp_pair(), t=0.0))
        assert spi.process(in_packet(pair=udp_pair().inverse, t=0.5)) is Verdict.PASS

    def test_state_per_five_tuple(self):
        spi = SPIFilter()
        spi.process(out_packet(pair=tcp_pair(sport=1000), t=0.0))
        assert spi.process(in_packet(pair=tcp_pair(sport=2000).inverse, t=0.1)) is Verdict.DROP


class TestIdleTimeout:
    def test_default_is_windows_time_wait(self):
        assert SPIFilter().idle_timeout == 240.0

    def test_idle_flow_expires(self):
        spi = SPIFilter(idle_timeout=240.0)
        spi.process(out_packet(t=0.0))
        assert spi.process(in_packet(t=241.0)) is Verdict.DROP

    def test_active_flow_survives(self):
        spi = SPIFilter(idle_timeout=240.0)
        spi.process(out_packet(t=0.0))
        spi.process(out_packet(t=200.0))
        assert spi.process(in_packet(t=400.0)) is Verdict.PASS

    def test_inbound_traffic_refreshes(self):
        spi = SPIFilter(idle_timeout=240.0)
        spi.process(out_packet(t=0.0))
        spi.process(in_packet(t=200.0))
        assert spi.process(in_packet(t=420.0)) is Verdict.PASS

    def test_gc_prunes_table(self):
        spi = SPIFilter(idle_timeout=10.0, gc_interval=5.0)
        for i in range(20):
            spi.process(out_packet(pair=tcp_pair(sport=1000 + i), t=float(i)))
        spi.process(out_packet(pair=tcp_pair(sport=5000), t=100.0))
        spi.process(out_packet(pair=tcp_pair(sport=5001), t=106.0))
        assert spi.tracked_flows <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SPIFilter(idle_timeout=0.0)
        with pytest.raises(ValueError):
            SPIFilter(gc_interval=0.0)


class TestCloseTracking:
    def test_rst_deletes_state(self):
        spi = SPIFilter()
        spi.process(out_packet(t=0.0, flags=TCPFlags.SYN))
        spi.process(out_packet(t=1.0, flags=TCPFlags.RST))
        assert spi.tracked_flows == 0
        assert spi.process(in_packet(t=1.1)) is Verdict.DROP

    def test_fin_exchange_enters_time_wait(self):
        spi = SPIFilter(time_wait=10.0)
        spi.process(out_packet(t=0.0, flags=TCPFlags.SYN))
        spi.process(out_packet(t=5.0, flags=TCPFlags.FIN | TCPFlags.ACK))
        spi.process(in_packet(t=5.1, flags=TCPFlags.FIN | TCPFlags.ACK))
        # The trailing ACK of the close handshake still matches state...
        assert spi.process(in_packet(t=5.2, flags=TCPFlags.ACK)) is Verdict.PASS
        # ...but once TIME_WAIT elapses, the flow is gone despite the
        # idle timeout (240 s) not having passed.
        assert spi.process(in_packet(t=30.0)) is Verdict.DROP

    def test_fresh_syn_reinstalls_after_close(self):
        spi = SPIFilter(time_wait=1.0)
        spi.process(out_packet(t=0.0, flags=TCPFlags.SYN))
        spi.process(out_packet(t=5.0, flags=TCPFlags.FIN | TCPFlags.ACK))
        spi.process(in_packet(t=5.1, flags=TCPFlags.FIN | TCPFlags.ACK))
        spi.process(out_packet(t=60.0, flags=TCPFlags.SYN))  # port reuse
        assert spi.process(in_packet(t=61.0)) is Verdict.PASS

    def test_half_close_keeps_state(self):
        spi = SPIFilter()
        spi.process(out_packet(t=0.0, flags=TCPFlags.SYN))
        spi.process(out_packet(t=5.0, flags=TCPFlags.FIN | TCPFlags.ACK))
        assert spi.process(in_packet(t=6.0)) is Verdict.PASS

    def test_udp_ignores_flag_bits(self):
        spi = SPIFilter()
        spi.process(out_packet(pair=udp_pair(), t=0.0, flags=TCPFlags.RST))
        assert spi.tracked_flows == 1


class TestDropController:
    def test_probabilistic_drop(self):
        import random

        spi = SPIFilter(
            drop_controller=DropController.never_drop(), rng=random.Random(1)
        )
        assert spi.process(in_packet(t=0.0)) is Verdict.PASS

    def test_stats_accounting(self):
        spi = SPIFilter()
        spi.process(out_packet(t=0.0))
        spi.process(in_packet(t=0.1))
        spi.process(in_packet(pair=tcp_pair(sport=9).inverse, t=0.2))
        stats = spi.stats.as_dict()
        assert stats["passed_outbound"] == 1
        assert stats["passed_inbound"] == 1
        assert stats["dropped_inbound"] == 1
        assert stats["inbound_drop_rate"] == pytest.approx(0.5)

    def test_reset(self):
        spi = SPIFilter()
        spi.process(out_packet(t=0.0))
        spi.reset()
        assert spi.tracked_flows == 0
        assert spi.stats.total == 0
