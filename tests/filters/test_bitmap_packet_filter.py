"""Tests for the bitmap filter behind the PacketFilter interface."""

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController

from tests.conftest import in_packet, out_packet, tcp_pair


def small_bitmap(**kwargs) -> BitmapPacketFilter:
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0),
        **kwargs,
    )


class TestVerdicts:
    def test_outbound_passes_and_marks(self):
        filt = small_bitmap()
        assert filt.process(out_packet(t=0.0)) is Verdict.PASS
        assert filt.core.stats.outbound_marked == 1

    def test_matched_inbound_passes(self):
        filt = small_bitmap()
        filt.process(out_packet(t=0.0))
        assert filt.process(in_packet(t=1.0)) is Verdict.PASS

    def test_unmatched_inbound_dropped(self):
        filt = small_bitmap()
        assert filt.process(in_packet(t=0.0)) is Verdict.DROP

    def test_expiry_by_trace_time(self):
        filt = small_bitmap()
        filt.process(out_packet(t=0.0))
        # Well past T_e = 20 s: rotations must have wiped the mark.
        assert filt.process(in_packet(t=60.0)) is Verdict.DROP

    def test_within_guaranteed_window(self):
        filt = small_bitmap()
        filt.process(out_packet(t=0.0))
        assert filt.process(in_packet(t=14.0)) is Verdict.PASS


class TestThroughputDrivenDropping:
    def test_low_throughput_admits_unknown_inbound(self):
        filt = small_bitmap(
            drop_controller=DropController.red_mbps(low_mbps=50, high_mbps=100)
        )
        # No upload traffic at all -> P_d = 0 -> unknown inbound passes.
        assert filt.process(in_packet(t=0.0)) is Verdict.PASS

    def test_high_throughput_blocks_unknown_inbound(self):
        filt = small_bitmap(
            drop_controller=DropController.red_mbps(low_mbps=0.001, high_mbps=0.002)
        )
        # Push enough upload bytes to exceed H = 0.002 Mbps in the window.
        for i in range(10):
            filt.process(out_packet(pair=tcp_pair(sport=2000 + i), t=0.1 * i, size=1500))
        assert filt.process(in_packet(pair=tcp_pair(sport=9999).inverse, t=1.0)) is Verdict.DROP

    def test_known_inbound_passes_even_under_load(self):
        filt = small_bitmap(
            drop_controller=DropController.red_mbps(low_mbps=0.001, high_mbps=0.002)
        )
        for i in range(10):
            filt.process(out_packet(pair=tcp_pair(sport=2000 + i), t=0.1 * i, size=1500))
        # Response to a marked pair: must bypass P_d entirely.
        assert filt.process(in_packet(pair=tcp_pair(sport=2003).inverse, t=1.0)) is Verdict.PASS


class TestHousekeeping:
    def test_memory_is_constant(self):
        filt = small_bitmap()
        before = filt.memory_bytes
        for i in range(500):
            filt.process(out_packet(pair=tcp_pair(sport=1024 + i), t=0.01 * i))
        assert filt.memory_bytes == before
        assert filt.memory_bytes == 4 * 2 ** 14 // 8

    def test_reset(self):
        filt = small_bitmap()
        filt.process(out_packet(t=0.0))
        filt.reset()
        assert filt.core.stats.outbound_marked == 0
        assert filt.process(in_packet(t=0.1)) is Verdict.DROP

    def test_paper_default_config(self):
        filt = BitmapPacketFilter()
        assert filt.config.size == 2 ** 20
        assert filt.memory_bytes == 512 * 1024
