"""Tests for the indiscriminate rate-limiting baselines."""

import pytest

from repro.filters.base import Verdict
from repro.filters.ratelimit import RedPolicerFilter, TokenBucket, TokenBucketFilter
from tests.conftest import in_packet, out_packet


class TestTokenBucket:
    def test_burst_allows_initial_traffic(self):
        bucket = TokenBucket(rate_bytes_per_sec=1000, burst_bytes=5000)
        assert bucket.consume(0.0, 5000)
        assert not bucket.consume(0.0, 1)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate_bytes_per_sec=1000, burst_bytes=1000)
        bucket.consume(0.0, 1000)
        assert not bucket.consume(0.5, 1000)
        assert bucket.consume(2.0, 1000)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_bytes_per_sec=1000, burst_bytes=1000)
        bucket.consume(0.0, 0)
        assert not bucket.consume(100.0, 2000)

    def test_steady_rate_enforced(self):
        bucket = TokenBucket(rate_bytes_per_sec=1000, burst_bytes=500)
        passed = sum(
            bucket.consume(i * 0.1, 500) for i in range(100)
        )  # offered 5000 B/s for 10 s against a 1000 B/s bucket
        assert passed * 500 == pytest.approx(1000 * 10, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 100)
        with pytest.raises(ValueError):
            TokenBucket(100, 0)


class TestTokenBucketFilter:
    def test_polices_configured_direction_only(self):
        filt = TokenBucketFilter(rate_mbps=0.001, burst_bytes=100)
        filt.process(out_packet(t=0.0, size=100))  # drains the bucket
        assert filt.process(out_packet(t=0.0, size=100)) is Verdict.DROP
        assert filt.process(in_packet(t=0.0, size=10_000)) is Verdict.PASS

    def test_indiscriminate(self):
        # The bucket cannot tell a web response from a P2P upload: both
        # outbound packets compete for the same tokens.
        filt = TokenBucketFilter(rate_mbps=0.001, burst_bytes=150)
        assert filt.process(out_packet(t=0.0, size=100)) is Verdict.PASS
        assert filt.process(out_packet(t=0.0, size=100)) is Verdict.DROP

    def test_rate_bound_on_stream(self):
        filt = TokenBucketFilter(rate_mbps=1.0)  # 125 kB/s
        passed_bytes = 0
        for i in range(1000):
            packet = out_packet(t=i * 0.01, size=1500)  # 150 kB/s offered
            if filt.process(packet) is Verdict.PASS:
                passed_bytes += packet.size
        assert passed_bytes <= 125_000 * 10 * 1.3  # rate × 10 s + burst slack


class TestRedPolicer:
    def test_below_low_passes(self):
        filt = RedPolicerFilter.mbps(low_mbps=10, high_mbps=20)
        assert filt.process(out_packet(t=0.0, size=100)) is Verdict.PASS

    def test_saturated_drops(self):
        filt = RedPolicerFilter.mbps(low_mbps=0.001, high_mbps=0.002)
        for i in range(20):
            filt.process(out_packet(t=0.01 * i, size=1500))
        assert filt.process(out_packet(t=0.25, size=1500)) is Verdict.DROP

    def test_other_direction_untouched(self):
        filt = RedPolicerFilter.mbps(low_mbps=0.001, high_mbps=0.002)
        for i in range(20):
            filt.process(out_packet(t=0.01 * i, size=1500))
        assert filt.process(in_packet(t=0.25, size=1500)) is Verdict.PASS
