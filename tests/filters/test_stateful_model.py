"""Stateful model-based testing: the bitmap filter against an exact model.

A hypothesis state machine drives a :class:`BitmapFilter` and a exact
dictionary model with the same operation sequence (marks, lookups, and
rotations at arbitrary points).  Invariants checked on every step:

* no false negatives within the guaranteed (k-1) rotations of a mark;
* marks older than k rotations (and never refreshed) are never visible,
  absent hash collisions — with a near-empty vector, collisions cannot
  produce the exact 3-bit pattern of another single pair, so on this
  small population visibility implies recency.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import SocketPair

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR

K = 4
PAIRS = [
    SocketPair(IPPROTO_TCP, CLIENT_ADDR, 2000 + i, REMOTE_ADDR, 6881)
    for i in range(8)
]


class BitmapModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.filter = BitmapFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=K, hashes=3, rotate_interval=5.0)
        )
        #: rotation count at the last mark of each pair (exact model).
        self.marked_at = {}
        self.rotations = 0

    @rule(index=st.integers(min_value=0, max_value=len(PAIRS) - 1))
    def mark(self, index):
        self.filter.mark_outbound(PAIRS[index])
        self.marked_at[index] = self.rotations

    @rule()
    def rotate(self):
        self.filter.rotate()
        self.rotations += 1

    @rule(index=st.integers(min_value=0, max_value=len(PAIRS) - 1))
    def lookup(self, index):
        visible = self.filter.lookup_inbound(PAIRS[index].inverse)
        last_mark = self.marked_at.get(index)
        if last_mark is None:
            age = None
        else:
            age = self.rotations - last_mark
        if age is not None and age <= K - 1:
            assert visible, (
                f"false negative: pair {index} marked {age} rotations ago "
                f"(guaranteed window is {K - 1})"
            )
        if age is None or age >= K:
            # With <= 8 pairs in a 16384-bit vector, a stale pair testing
            # positive would require all 3 of its bits to collide with
            # other pairs' bits — astronomically unlikely and, with these
            # fixed pairs and seed, deterministically false.
            assert not visible, (
                f"stale visibility: pair {index} age {age} (>= k={K})"
            )

    @invariant()
    def utilization_bounded(self):
        # At most 8 pairs × 3 bits marked per vector.
        assert self.filter.vectors[self.filter.idx].popcount() <= len(PAIRS) * 3


TestBitmapModel = BitmapModel.TestCase
TestBitmapModel.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
