"""Tests for per-subnet sharded deployment (Figure 6 core placement)."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.naive import NaiveTimerFilter
from repro.filters.sharded import ShardedFilter
from repro.net.inet import IPPROTO_TCP, parse_ipv4
from repro.net.packet import Direction, Packet, SocketPair

NET_A = parse_ipv4("10.1.0.0")
NET_B = parse_ipv4("10.2.0.0")
HOST_A = parse_ipv4("10.1.0.5")
HOST_B = parse_ipv4("10.2.0.5")
REMOTE = parse_ipv4("203.0.113.9")


def out_pkt(src, t=0.0, sport=3000):
    pair = SocketPair(IPPROTO_TCP, src, sport, REMOTE, 80)
    return Packet(t, pair, size=100, direction=Direction.OUTBOUND)


def in_pkt(dst, t=0.0, dport=3000):
    pair = SocketPair(IPPROTO_TCP, REMOTE, 80, dst, dport)
    return Packet(t, pair, size=100, direction=Direction.INBOUND)


def bitmap():
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
    )


def sharded():
    return ShardedFilter([(NET_A, 16, bitmap()), (NET_B, 16, bitmap())])


class TestRouting:
    def test_outbound_routes_by_source(self):
        filt = sharded()
        filt.process(out_pkt(HOST_A))
        shard_a = filt.shards[0][2]
        shard_b = filt.shards[1][2]
        assert shard_a.stats.total == 1
        assert shard_b.stats.total == 0

    def test_inbound_routes_by_destination(self):
        filt = sharded()
        filt.process(out_pkt(HOST_B))
        assert filt.process(in_pkt(HOST_B, t=0.5)) is Verdict.PASS
        assert filt.shards[1][2].stats.total == 2

    def test_isolation_between_shards(self):
        """A mark in network A's shard must not admit inbound traffic to
        network B even on identical ports."""
        filt = sharded()
        filt.process(out_pkt(HOST_A, sport=4000))
        assert filt.process(in_pkt(HOST_A, t=0.1, dport=4000)) is Verdict.PASS
        assert filt.process(in_pkt(HOST_B, t=0.2, dport=4000)) is Verdict.DROP

    def test_first_match_wins(self):
        specific = NaiveTimerFilter()
        broad = NaiveTimerFilter()
        filt = ShardedFilter([(parse_ipv4("10.1.0.0"), 24, specific),
                              (parse_ipv4("10.1.0.0"), 16, broad)])
        filt.process(out_pkt(parse_ipv4("10.1.0.7")))
        assert specific.stats.total == 1
        assert broad.stats.total == 0
        filt.process(out_pkt(parse_ipv4("10.1.99.7")))
        assert broad.stats.total == 1

    def test_unrouted_follows_default(self):
        passing = sharded()
        transit = Packet(
            0.0,
            SocketPair(IPPROTO_TCP, parse_ipv4("8.8.8.8"), 1, REMOTE, 2),
            size=60,
            direction=Direction.OUTBOUND,
        )
        assert passing.process(transit) is Verdict.PASS
        assert passing.unrouted_packets == 1

        dropping = ShardedFilter([(NET_A, 16, bitmap())], default_verdict=Verdict.DROP)
        assert dropping.process(transit) is Verdict.DROP


class TestHousekeeping:
    def test_shard_stats_keys(self):
        filt = sharded()
        filt.process(out_pkt(HOST_A))
        stats = filt.shard_stats()
        assert "10.1.0.0/16" in stats
        assert stats["10.1.0.0/16"]["passed_outbound"] == 1

    def test_reset_cascades(self):
        filt = sharded()
        filt.process(out_pkt(HOST_A))
        filt.reset()
        assert filt.process(in_pkt(HOST_A, t=0.1)) is Verdict.DROP
        assert filt.unrouted_packets == 0

    def test_len(self):
        assert len(sharded()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedFilter([])
        with pytest.raises(ValueError):
            ShardedFilter([(NET_A, 40, bitmap())])


class TestPolicyIsolation:
    def test_per_shard_drop_controllers(self):
        """Network A saturates its uplink; network B's unsolicited inbound
        must still be admitted (per-customer policy isolation)."""
        from repro.filters.policy import DropController

        shard_a = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(0.0001, 0.0002),
        )
        shard_b = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(0.0001, 0.0002),
        )
        filt = ShardedFilter([(NET_A, 16, shard_a), (NET_B, 16, shard_b)])
        # Saturate A's meter only.
        for i in range(20):
            filt.process(out_pkt(HOST_A, t=0.01 * i, sport=5000 + i))
        assert filt.process(in_pkt(HOST_A, t=0.5, dport=9999)) is Verdict.DROP
        assert filt.process(in_pkt(HOST_B, t=0.5, dport=9999)) is Verdict.PASS
