"""Tests for per-subnet sharded deployment (Figure 6 core placement)."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.naive import NaiveTimerFilter
from repro.filters.sharded import ShardedFilter
from repro.net.inet import IPPROTO_TCP, parse_ipv4
from repro.net.packet import Direction, Packet, SocketPair

NET_A = parse_ipv4("10.1.0.0")
NET_B = parse_ipv4("10.2.0.0")
HOST_A = parse_ipv4("10.1.0.5")
HOST_B = parse_ipv4("10.2.0.5")
REMOTE = parse_ipv4("203.0.113.9")


def out_pkt(src, t=0.0, sport=3000):
    pair = SocketPair(IPPROTO_TCP, src, sport, REMOTE, 80)
    return Packet(t, pair, size=100, direction=Direction.OUTBOUND)


def in_pkt(dst, t=0.0, dport=3000):
    pair = SocketPair(IPPROTO_TCP, REMOTE, 80, dst, dport)
    return Packet(t, pair, size=100, direction=Direction.INBOUND)


def bitmap():
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
    )


def sharded():
    return ShardedFilter([(NET_A, 16, bitmap()), (NET_B, 16, bitmap())])


class TestRouting:
    def test_outbound_routes_by_source(self):
        filt = sharded()
        filt.process(out_pkt(HOST_A))
        shard_a = filt.shards[0][2]
        shard_b = filt.shards[1][2]
        assert shard_a.stats.total == 1
        assert shard_b.stats.total == 0

    def test_inbound_routes_by_destination(self):
        filt = sharded()
        filt.process(out_pkt(HOST_B))
        assert filt.process(in_pkt(HOST_B, t=0.5)) is Verdict.PASS
        assert filt.shards[1][2].stats.total == 2

    def test_isolation_between_shards(self):
        """A mark in network A's shard must not admit inbound traffic to
        network B even on identical ports."""
        filt = sharded()
        filt.process(out_pkt(HOST_A, sport=4000))
        assert filt.process(in_pkt(HOST_A, t=0.1, dport=4000)) is Verdict.PASS
        assert filt.process(in_pkt(HOST_B, t=0.2, dport=4000)) is Verdict.DROP

    def test_first_match_wins(self):
        specific = NaiveTimerFilter()
        broad = NaiveTimerFilter()
        filt = ShardedFilter([(parse_ipv4("10.1.0.0"), 24, specific),
                              (parse_ipv4("10.1.0.0"), 16, broad)])
        filt.process(out_pkt(parse_ipv4("10.1.0.7")))
        assert specific.stats.total == 1
        assert broad.stats.total == 0
        filt.process(out_pkt(parse_ipv4("10.1.99.7")))
        assert broad.stats.total == 1

    def test_unrouted_follows_default(self):
        passing = sharded()
        transit = Packet(
            0.0,
            SocketPair(IPPROTO_TCP, parse_ipv4("8.8.8.8"), 1, REMOTE, 2),
            size=60,
            direction=Direction.OUTBOUND,
        )
        assert passing.process(transit) is Verdict.PASS
        assert passing.unrouted_packets == 1

        dropping = ShardedFilter([(NET_A, 16, bitmap())], default_verdict=Verdict.DROP)
        assert dropping.process(transit) is Verdict.DROP


class TestHousekeeping:
    def test_shard_stats_keys(self):
        filt = sharded()
        filt.process(out_pkt(HOST_A))
        stats = filt.shard_stats()
        assert "10.1.0.0/16" in stats
        assert stats["10.1.0.0/16"]["passed_outbound"] == 1

    def test_reset_cascades(self):
        filt = sharded()
        filt.process(out_pkt(HOST_A))
        filt.reset()
        assert filt.process(in_pkt(HOST_A, t=0.1)) is Verdict.DROP
        assert filt.unrouted_packets == 0

    def test_len(self):
        assert len(sharded()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedFilter([])
        with pytest.raises(ValueError):
            ShardedFilter([(NET_A, 40, bitmap())])


class TestRouteCache:
    """The bounded inner-address → shard cache on the routing hot path."""

    def overlapping(self, cache_size=ShardedFilter.ROUTE_CACHE_SIZE):
        # Overlapping prefixes, more-specific first: the cache must honour
        # first-match order exactly like the linear scan.
        return ShardedFilter(
            [
                (parse_ipv4("10.1.0.0"), 24, NaiveTimerFilter()),
                (parse_ipv4("10.1.0.0"), 16, NaiveTimerFilter()),
                (parse_ipv4("10.2.0.0"), 16, NaiveTimerFilter()),
            ],
            route_cache_size=cache_size,
        )

    def test_cache_matches_uncached_scan(self):
        """Behaviour equivalence: for a spread of addresses (including
        repeats, overlap boundaries and transit), the cached lookup returns
        exactly what the first-match linear scan returns."""
        import random

        filt = self.overlapping()
        rng = random.Random(7)
        addresses = [
            parse_ipv4("10.1.0.1"), parse_ipv4("10.1.0.255"),
            parse_ipv4("10.1.1.0"), parse_ipv4("10.2.5.5"),
            parse_ipv4("8.8.8.8"), parse_ipv4("10.3.0.1"),
        ] + [rng.randrange(2 ** 32) for _ in range(500)]
        # Query twice: first pass populates the cache, second pass hits it.
        for _ in range(2):
            for address in addresses:
                assert filt.shard_index_for(address) == filt._scan_shard_index(address)

    def test_routing_through_cache_matches_scan_semantics(self):
        filt = self.overlapping()
        specific = filt.shards[0][2]
        broad = filt.shards[1][2]
        for _ in range(3):  # repeats exercise the cached path
            filt.process(out_pkt(parse_ipv4("10.1.0.7")))
            filt.process(out_pkt(parse_ipv4("10.1.99.7")))
        assert specific.stats.total == 3
        assert broad.stats.total == 3

    def test_cache_is_bounded(self):
        filt = self.overlapping(cache_size=4)
        for offset in range(50):
            filt.shard_index_for(parse_ipv4("10.1.0.0") + offset)
        assert len(filt._route_cache) <= 4
        # Still correct after heavy eviction.
        assert filt.shard_index_for(parse_ipv4("10.2.0.9")) == 2

    def test_reset_invalidates_cache(self):
        filt = self.overlapping()
        filt.process(out_pkt(HOST_A))
        assert filt._route_cache
        filt.reset()
        assert not filt._route_cache

    def test_cache_size_validation(self):
        with pytest.raises(ValueError):
            ShardedFilter([(NET_A, 16, NaiveTimerFilter())], route_cache_size=0)


class TestPartitioning:
    """Helpers the multiprocess replay engine builds on."""

    def test_partition_by_inner_address(self):
        filt = sharded()
        packets = [out_pkt(HOST_A), in_pkt(HOST_B, t=0.1),
                   out_pkt(HOST_B, t=0.2), in_pkt(HOST_A, t=0.3)]
        lanes, default_lane = filt.partition_packets(packets)
        assert [p.timestamp for p in lanes[0]] == [0.0, 0.3]
        assert [p.timestamp for p in lanes[1]] == [0.1, 0.2]
        assert default_lane == []

    def test_partition_transit_to_default_lane(self):
        filt = sharded()
        transit = Packet(
            0.5,
            SocketPair(IPPROTO_TCP, parse_ipv4("8.8.8.8"), 1, REMOTE, 2),
            size=60,
            direction=Direction.OUTBOUND,
        )
        lanes, default_lane = filt.partition_packets([out_pkt(HOST_A), transit])
        assert len(lanes[0]) == 1
        assert default_lane == [transit]

    def test_inner_address(self):
        assert ShardedFilter.inner_address(out_pkt(HOST_A)) == HOST_A
        assert ShardedFilter.inner_address(in_pkt(HOST_B)) == HOST_B

    def test_shard_label(self):
        filt = sharded()
        assert filt.shard_label(0) == "10.1.0.0/16"
        assert filt.shard_label(1) == "10.2.0.0/16"


class TestPolicyIsolation:
    def test_per_shard_drop_controllers(self):
        """Network A saturates its uplink; network B's unsolicited inbound
        must still be admitted (per-customer policy isolation)."""
        from repro.filters.policy import DropController

        shard_a = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(0.0001, 0.0002),
        )
        shard_b = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(0.0001, 0.0002),
        )
        filt = ShardedFilter([(NET_A, 16, shard_a), (NET_B, 16, shard_b)])
        # Saturate A's meter only.
        for i in range(20):
            filt.process(out_pkt(HOST_A, t=0.01 * i, sport=5000 + i))
        assert filt.process(in_pkt(HOST_A, t=0.5, dport=9999)) is Verdict.DROP
        assert filt.process(in_pkt(HOST_B, t=0.5, dport=9999)) is Verdict.PASS
