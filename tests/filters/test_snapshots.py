"""Warm-restart snapshot hooks for the non-bitmap filters.

The contract mirrors the bitmap filter's: a filter snapshotted mid-trace
and restored must continue verdict-for-verdict and counter-for-counter
as if never interrupted.  Filters without hooks must refuse loudly
(:class:`SnapshotUnsupported`) instead of producing a lossy snapshot.
"""

import json
import random

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters import SnapshotUnsupported, restore_filter
from repro.filters.base import AcceptAllFilter
from repro.filters.chain import FilterChain
from repro.filters.counting import CountingBitmapFilter
from repro.filters.policy import DropController
from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter
from repro.filters.spi import SPIFilter
from repro.workload import TraceConfig, TraceGenerator

SMALL_CONFIG = BitmapFilterConfig(
    size=2 ** 12, vectors=4, hashes=3, rotate_interval=5.0
)


def trace(seed=4, duration=30.0, rate=6.0):
    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    return TraceGenerator(config).packet_list()


def red():
    return DropController.red_mbps(0.2, 0.8)


FACTORIES = {
    "spi": lambda: SPIFilter(drop_controller=red(), rng=random.Random(7)),
    "counting-bitmap": lambda: CountingBitmapFilter(
        SMALL_CONFIG, drop_controller=red(), rng=random.Random(7)
    ),
    "token-bucket": lambda: TokenBucketFilter(rate_mbps=0.5),
    "red-policer": lambda: RedPolicerFilter.mbps(0.2, 0.8, rng=random.Random(7)),
    "chain": lambda: FilterChain([
        SPIFilter(drop_controller=red(), rng=random.Random(3)),
        TokenBucketFilter(rate_mbps=0.5),
        RedPolicerFilter.mbps(0.2, 0.8, rng=random.Random(5)),
    ]),
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_snapshot_resume_is_bit_identical(self, name):
        packets = trace()
        half = len(packets) // 2
        make = FACTORIES[name]

        uninterrupted = make()
        full_verdicts = [uninterrupted.process(p) for p in packets]

        interrupted = make()
        for packet in packets[:half]:
            interrupted.process(packet)
        # Force the snapshot through JSON: the service plane persists it.
        document = json.loads(json.dumps(interrupted.snapshot()))
        resumed = restore_filter(document)
        resumed_verdicts = [resumed.process(p) for p in packets[half:]]

        assert resumed_verdicts == full_verdicts[half:]
        assert resumed.stats.snapshot() == uninterrupted.stats.snapshot()

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_snapshot_does_not_disturb_the_running_filter(self, name):
        packets = trace(seed=6, duration=15.0)
        half = len(packets) // 2
        make = FACTORIES[name]
        observed, control = make(), make()
        for packet in packets[:half]:
            observed.process(packet)
            control.process(packet)
        observed.snapshot()
        tail_observed = [observed.process(p) for p in packets[half:]]
        tail_control = [control.process(p) for p in packets[half:]]
        assert tail_observed == tail_control

    def test_spi_flow_table_survives(self):
        flt = FACTORIES["spi"]()
        for packet in trace(seed=9, duration=10.0):
            flt.process(packet)
        assert flt.tracked_flows > 0
        resumed = restore_filter(flt.snapshot())
        assert resumed.tracked_flows == flt.tracked_flows
        assert resumed._table.keys() == flt._table.keys()

    def test_counting_cells_and_counters_survive(self):
        flt = FACTORIES["counting-bitmap"]()
        for packet in trace(seed=9, duration=12.0):
            flt.process(packet)
        resumed = restore_filter(json.loads(json.dumps(flt.snapshot())))
        assert [bytes(c._cells) for c in resumed.columns] == \
            [bytes(c._cells) for c in flt.columns]
        assert resumed.idx == flt.idx
        assert resumed._next_rotation == flt._next_rotation
        assert resumed.deleted_on_close == flt.deleted_on_close
        assert resumed._half_closed == flt._half_closed

    def test_token_bucket_level_survives(self):
        flt = FACTORIES["token-bucket"]()
        for packet in trace(seed=9, duration=10.0):
            flt.process(packet)
        resumed = restore_filter(flt.snapshot())
        assert resumed.bucket._tokens == flt.bucket._tokens
        assert resumed.bucket._last == flt.bucket._last
        assert resumed.bucket.rate == flt.bucket.rate
        assert resumed.bucket.burst == flt.bucket.burst


class TestRefusals:
    def test_filters_without_hooks_refuse(self):
        with pytest.raises(SnapshotUnsupported, match="accept-all"):
            AcceptAllFilter().snapshot()

    def test_chain_with_unsupported_member_refuses(self):
        chain = FilterChain([TokenBucketFilter(rate_mbps=1.0),
                             AcceptAllFilter()])
        with pytest.raises(SnapshotUnsupported):
            chain.snapshot()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown filter snapshot kind"):
            restore_filter({"kind": "mystery"})

    def test_kind_mismatch_rejected(self):
        snapshot = FACTORIES["spi"]().snapshot()
        with pytest.raises(ValueError, match="snapshot is for filter kind"):
            TokenBucketFilter.restore(snapshot)

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_reanchor_clock_rejected(self, name):
        snapshot = FACTORIES[name]().snapshot()
        with pytest.raises(ValueError, match="clock='resume'"):
            restore_filter(snapshot, clock="reanchor")
