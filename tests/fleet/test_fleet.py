"""Tests for the fleet plane (repro.fleet): spec mirroring, supervised
daemons, and the fleet-vs-offline exactness invariant under disruption.

The integration tests spawn real ``repro serve`` subprocesses, so they
use a small trace and few shards; the invariant they hold is the PR's
acceptance bar — a fleet's merged fingerprint and blocklist are
bit-identical to the offline partitioned replay, including across a
mid-trace crash-kill and a rolling restart.
"""

import argparse
import json
import os

import pytest

from repro.filters.base import Verdict
from repro.fleet import (
    FleetSupervisor,
    ShardFilterSpec,
    offline_reference,
)
from repro.fleet.supervisor import MANIFEST_NAME
from repro.shard.plan import HashShardPlan, SubnetShardPlan, plan_from_spec
from repro.workload import TraceConfig, TraceGenerator


def trace_table(duration=10.0, rate=6.0, seed=5):
    return TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).table()


def chunks_of(table, size=512):
    return [table.slice(start, min(start + size, len(table)))
            for start in range(0, len(table), size)]


def red_spec():
    return ShardFilterSpec(size_bits=12, vectors=3, hashes=2,
                           low_mbps=0.1, high_mbps=1.0)


class TestShardFilterSpec:
    def test_round_trip(self):
        spec = ShardFilterSpec(size_bits=14, hole_punching=True,
                               low_mbps=0.5, high_mbps=2.0,
                               use_blocklist=False)
        assert ShardFilterSpec.from_spec(spec.as_spec()) == spec

    def test_serve_args_mirror_build_filter(self):
        """serve_args fed through the CLI's own filter builder must
        produce the same filter build_filter constructs in-process."""
        from repro.cli import _build_serve_filter, build_parser

        for spec in (ShardFilterSpec(size_bits=12),
                     red_spec(),
                     ShardFilterSpec(size_bits=12, hole_punching=True)):
            parser = build_parser()
            args = parser.parse_args(["serve"] + spec.serve_args())
            via_cli, _ = _build_serve_filter(args)
            direct = spec.build_filter()
            assert via_cli.snapshot() == direct.snapshot()
            assert args.no_blocklist is (not spec.use_blocklist)

    def test_no_blocklist_arg(self):
        assert "--no-blocklist" in ShardFilterSpec(
            use_blocklist=False).serve_args()
        assert "--no-blocklist" not in ShardFilterSpec().serve_args()


class TestFleetIntegration:
    def test_clean_fleet_matches_offline(self, tmp_path):
        plan = HashShardPlan(2, seed=3)
        spec = red_spec()
        table = trace_table(duration=8.0)
        supervisor = FleetSupervisor(plan, str(tmp_path), spec=spec,
                                     snapshot_every=0)
        try:
            supervisor.launch()

            manifest = json.loads(
                (tmp_path / MANIFEST_NAME).read_text()
            )
            assert len(manifest["shards"]) == 2
            rebuilt = plan_from_spec(manifest["plan"])
            assert isinstance(rebuilt, HashShardPlan)
            assert all(s["status"] in ("running", "draining")
                       for s in supervisor.ping()["shards"])

            supervisor.feed(chunks_of(table))
            result = supervisor.drain()
        finally:
            supervisor.stop()

        reference = offline_reference(table, plan, spec)
        assert result.packets == len(table) == reference.packets
        assert result.inbound_dropped == reference.inbound_dropped
        assert result.restarts == 0
        assert result.fingerprint == reference.fingerprint
        assert result.blocked == dict(reference.router.blocklist._blocked)

    def test_disrupted_fleet_stays_exact(self, tmp_path):
        """Crash-kill one shard and roll-restart the fleet mid-trace;
        the merged verdict must not move a bit."""
        from repro.net.inet import parse_ipv4

        plan = SubnetShardPlan.from_cidr(parse_ipv4("10.1.0.0"), 16,
                                         shard_bits=1)
        spec = red_spec()
        table = trace_table(duration=10.0, seed=9)
        chunks = chunks_of(table)
        assert len(chunks) >= 4
        supervisor = FleetSupervisor(plan, str(tmp_path), spec=spec,
                                     snapshot_every=2)
        try:
            supervisor.launch()
            supervisor.feed(chunks[:len(chunks) // 2])
            supervisor.daemons[1].kill()  # crash, recovered on next send
            supervisor.rolling_restart()
            supervisor.feed(chunks[len(chunks) // 2:])
            result = supervisor.drain()
        finally:
            supervisor.stop()

        # The killed shard recovered once and every lane rolled once.
        assert result.restarts >= plan.lanes
        reference = offline_reference(table, plan, spec)
        assert result.packets == reference.packets
        assert result.fingerprint == reference.fingerprint
        assert result.blocked == dict(reference.router.blocklist._blocked)

    def test_boot_failure_reports_log_tail(self, tmp_path):
        # An argv the child's parser rejects: the daemon dies on boot
        # and the supervisor surfaces its stderr instead of hanging.
        from repro.fleet.daemon import FleetError, ShardDaemon

        daemon = ShardDaemon(0, "bad", str(tmp_path),
                             ["--size-bits", "not-a-number"],
                             boot_timeout=10.0)
        with pytest.raises(FleetError, match="exited during boot"):
            daemon.launch()
        assert daemon.process.poll() is not None
