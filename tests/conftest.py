"""Shared fixtures and packet-building helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP, parse_ipv4
from repro.net.packet import Direction, Packet, SocketPair

# Canonical test addresses: CLIENT inside the 10.1/16 client network,
# REMOTE outside it.
CLIENT_ADDR = parse_ipv4("10.1.0.5")
CLIENT_ADDR_2 = parse_ipv4("10.1.0.9")
REMOTE_ADDR = parse_ipv4("203.0.113.7")
REMOTE_ADDR_2 = parse_ipv4("198.51.100.23")


def tcp_pair(
    src=CLIENT_ADDR, sport=3333, dst=REMOTE_ADDR, dport=80
) -> SocketPair:
    return SocketPair(IPPROTO_TCP, src, sport, dst, dport)


def udp_pair(
    src=CLIENT_ADDR, sport=4444, dst=REMOTE_ADDR, dport=53
) -> SocketPair:
    return SocketPair(IPPROTO_UDP, src, sport, dst, dport)


def out_packet(pair=None, t=0.0, size=100, flags=0, payload=b"") -> Packet:
    """An outbound packet (client -> remote orientation)."""
    return Packet(
        t, pair or tcp_pair(), size=size, flags=flags, payload=payload,
        direction=Direction.OUTBOUND,
    )


def in_packet(pair=None, t=0.0, size=100, flags=0, payload=b"") -> Packet:
    """An inbound packet; ``pair`` is given in remote -> client orientation
    (i.e. already inverted)."""
    if pair is None:
        pair = tcp_pair().inverse
    return Packet(t, pair, size=size, flags=flags, payload=payload,
                  direction=Direction.INBOUND)


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture(scope="session")
def small_trace():
    """A small deterministic synthetic trace shared by integration tests."""
    from repro.workload import TraceConfig, TraceGenerator

    generator = TraceGenerator(TraceConfig(duration=60.0, connection_rate=8.0, seed=42))
    return generator.packet_list()


@pytest.fixture(scope="session")
def small_trace_specs():
    from repro.workload import TraceConfig, TraceGenerator

    generator = TraceGenerator(TraceConfig(duration=60.0, connection_rate=8.0, seed=42))
    generator.packet_list()
    return generator.specs()
