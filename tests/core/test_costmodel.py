"""Tests for the section 5.2 analytical cost model."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.costmodel import (
    HARDWARE_ASIC,
    SOFTWARE_2006,
    HardwareProfile,
    estimate,
    spi_lookup_seconds,
    spi_memory_bytes,
    supports_line_rate,
)

PAPER_CONFIG = BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)


class TestEstimate:
    def test_inbound_cheaper_than_outbound(self):
        # "Processing inbound packets is simpler than for outbound packets."
        cost = estimate(PAPER_CONFIG, SOFTWARE_2006)
        assert cost.inbound_seconds < cost.outbound_seconds

    def test_outbound_scales_with_k(self):
        small = estimate(BitmapFilterConfig(vectors=2), SOFTWARE_2006)
        large = estimate(BitmapFilterConfig(vectors=8), SOFTWARE_2006)
        assert large.outbound_seconds > small.outbound_seconds

    def test_inbound_independent_of_k(self):
        small = estimate(BitmapFilterConfig(vectors=2), SOFTWARE_2006)
        large = estimate(BitmapFilterConfig(vectors=8), SOFTWARE_2006)
        assert large.inbound_seconds == pytest.approx(small.inbound_seconds)

    def test_both_scale_with_m(self):
        small = estimate(BitmapFilterConfig(hashes=1), SOFTWARE_2006)
        large = estimate(BitmapFilterConfig(hashes=6), SOFTWARE_2006)
        assert large.inbound_seconds > small.inbound_seconds
        assert large.outbound_seconds > small.outbound_seconds

    def test_rotate_scales_with_n(self):
        small = estimate(BitmapFilterConfig(size=2 ** 16), SOFTWARE_2006)
        large = estimate(BitmapFilterConfig(size=2 ** 24), SOFTWARE_2006)
        assert large.rotate_seconds == pytest.approx(small.rotate_seconds * 256)

    def test_rotate_duty_cycle_tiny_at_paper_config(self):
        # One 128 KiB memset every 5 s is noise.
        cost = estimate(PAPER_CONFIG, SOFTWARE_2006)
        assert cost.rotate_duty_cycle < 1e-3

    def test_hardware_faster_than_software(self):
        software = estimate(PAPER_CONFIG, SOFTWARE_2006)
        hardware = estimate(PAPER_CONFIG, HARDWARE_ASIC)
        assert hardware.line_rate_mbps() > software.line_rate_mbps() * 5


class TestLineRate:
    def test_software_covers_campus_trace(self):
        # The paper's trace averaged 146.7 Mbps; a 2006 CPU keeps up.
        assert supports_line_rate(PAPER_CONFIG, SOFTWARE_2006, 146.7)

    def test_hardware_covers_10g(self):
        assert supports_line_rate(PAPER_CONFIG, HARDWARE_ASIC, 10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            supports_line_rate(PAPER_CONFIG, SOFTWARE_2006, 0)
        with pytest.raises(ValueError):
            supports_line_rate(PAPER_CONFIG, SOFTWARE_2006, 100, mean_packet_bytes=0)


class TestProfiles:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            HardwareProfile("bad", 0, 1e-9, 1e-9, 1e9)
        with pytest.raises(ValueError):
            HardwareProfile("bad", 1e-9, 1e-9, 1e-9, 0)


class TestSpiModel:
    def test_lookup_grows_with_load_factor(self):
        fast = spi_lookup_seconds(1000, load_factor=0.5)
        slow = spi_lookup_seconds(1000, load_factor=8.0)
        assert slow > fast

    def test_memory_linear_in_flows(self):
        assert spi_memory_bytes(200_000) == 2 * spi_memory_bytes(100_000)

    def test_paper_scale_comparison(self):
        # "tens of thousands or even millions" of flows: at 1M flows SPI
        # state dwarfs the 512 KiB bitmap.
        assert spi_memory_bytes(1_000_000) > 100 * PAPER_CONFIG.memory_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            spi_lookup_seconds(-1)
        with pytest.raises(ValueError):
            spi_memory_bytes(10, bytes_per_flow=0)
