"""Tests for the section 5.1 closed-form model (Equations 2-6)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    capacity_bound,
    capacity_table,
    exact_penetration_probability,
    expected_utilization,
    false_negative_bound,
    minimum_vector_size,
    optimal_hash_count,
    penetration_probability,
    recommend_parameters,
)
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import SocketPair


class TestEquation3:
    def test_formula(self):
        # p ≈ (c·m/N)^m
        assert penetration_probability(1000, 2 ** 20, 3) == pytest.approx(
            (1000 * 3 / 2 ** 20) ** 3
        )

    def test_clamped_to_one(self):
        assert penetration_probability(10 ** 9, 2 ** 10, 3) == 1.0

    def test_zero_connections(self):
        assert penetration_probability(0, 2 ** 20, 3) == 0.0

    def test_monotone_in_connections(self):
        values = [penetration_probability(c, 2 ** 16, 3) for c in (10, 100, 1000)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            penetration_probability(10, 0, 3)
        with pytest.raises(ValueError):
            penetration_probability(-1, 2 ** 10, 3)

    def test_approximation_close_to_exact_at_low_utilization(self):
        approx = penetration_probability(1000, 2 ** 20, 3)
        exact = exact_penetration_probability(1000, 2 ** 20, 3)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_approximation_overestimates_at_high_utilization(self):
        # (c·m/N)^m ignores collisions, so it exceeds the exact value.
        approx = penetration_probability(200_000, 2 ** 20, 3)
        exact = exact_penetration_probability(200_000, 2 ** 20, 3)
        assert approx > exact


class TestEquation5:
    def test_optimum_formula(self):
        # m* = N/(e·c)
        assert optimal_hash_count(2 ** 20, 100_000) == pytest.approx(
            2 ** 20 / (math.e * 100_000)
        )

    def test_optimum_actually_minimizes_equation3(self):
        size, connections = 2 ** 20, 80_000
        best_m = optimal_hash_count(size, connections)
        at_best = (connections * best_m / size) ** best_m
        for factor in (0.5, 0.8, 1.25, 2.0):
            m = best_m * factor
            assert (connections * m / size) ** m >= at_best

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_hash_count(2 ** 20, 0)


class TestEquation6CapacityBound:
    """The paper's worked example: N = 2^20, p = 10 %/5 %/1 % ->
    roughly 167K / 125K / 83K connections."""

    def test_ten_percent(self):
        assert capacity_bound(2 ** 20, 0.10) == pytest.approx(167_000, rel=0.03)

    def test_five_percent(self):
        assert capacity_bound(2 ** 20, 0.05) == pytest.approx(125_000, rel=0.04)

    def test_one_percent(self):
        assert capacity_bound(2 ** 20, 0.01) == pytest.approx(83_000, rel=0.04)

    def test_trace_headroom(self):
        # "our trace data ... has only average 15K active connections
        #  inside a time unit of 20 seconds" — far below every bound.
        assert 15_000 < capacity_bound(2 ** 20, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_bound(2 ** 20, 0.0)
        with pytest.raises(ValueError):
            capacity_bound(2 ** 20, 1.0)

    def test_capacity_table_shape(self):
        rows = capacity_table(2 ** 20)
        assert [row["target_p"] for row in rows] == [0.10, 0.05, 0.01]
        assert rows[0]["capacity"] > rows[1]["capacity"] > rows[2]["capacity"]

    def test_capacity_respected_at_optimal_m(self):
        # At c = capacity and m = m*, Equation 3 gives exactly target p:
        # p = (c·m*/N)^{m*} = e^{-m*} and m* = -ln p.
        size, target = 2 ** 20, 0.05
        capacity = capacity_bound(size, target)
        m_star = optimal_hash_count(size, int(capacity))
        predicted = (capacity * m_star / size) ** m_star
        assert predicted == pytest.approx(target, rel=0.01)


class TestMinimumVectorSize:
    def test_power_of_two(self):
        size = minimum_vector_size(15_000, 0.05)
        assert size & (size - 1) == 0

    def test_meets_bound(self):
        size = minimum_vector_size(15_000, 0.05)
        assert capacity_bound(size, 0.05) >= 15_000

    def test_smaller_size_violates_bound(self):
        size = minimum_vector_size(15_000, 0.05)
        assert capacity_bound(size // 2, 0.05) < 15_000

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_vector_size(0, 0.05)


class TestUtilizationModel:
    def test_expected_utilization_empirical(self):
        size, hashes, connections = 2 ** 12, 3, 300
        filt = BitmapFilter(BitmapFilterConfig(size=size, vectors=2, hashes=hashes))
        rng = random.Random(11)
        for _ in range(connections):
            filt.mark_outbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
        expected = expected_utilization(connections, size, hashes)
        assert filt.current_utilization == pytest.approx(expected, rel=0.08)


class TestFalseNegativeBound:
    def test_paper_number(self):
        # CDF(3.61 s) = 99 % -> false negatives < 1 %.
        assert false_negative_bound(0.99) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            false_negative_bound(1.5)


class TestRecommendParameters:
    def test_paper_scenario(self):
        # 15K active connections, T_e = 20 s, Δt = 5 s.
        rec = recommend_parameters(15_000, target_p=0.05, expiry_time=20.0,
                                   rotate_interval=5.0)
        assert rec.vectors == 4
        assert rec.expiry_time == 20.0
        assert rec.predicted_penetration <= 0.05
        assert rec.size & (rec.size - 1) == 0
        assert 1 <= rec.hashes <= 8

    def test_memory_accounting(self):
        rec = recommend_parameters(15_000, target_p=0.05)
        assert rec.memory_bytes == rec.vectors * rec.size // 8

    def test_tighter_target_needs_more_memory(self):
        loose = recommend_parameters(50_000, target_p=0.10)
        tight = recommend_parameters(50_000, target_p=0.001)
        assert tight.size >= loose.size

    def test_rejects_long_expiry(self):
        # Section 4.3: T_e above 60 s invites port-reuse false positives.
        with pytest.raises(ValueError):
            recommend_parameters(1000, expiry_time=120.0)

    def test_rejects_expiry_below_interval(self):
        with pytest.raises(ValueError):
            recommend_parameters(1000, expiry_time=2.0, rotate_interval=5.0)

    def test_summary_mentions_geometry(self):
        rec = recommend_parameters(15_000)
        assert "bitmap" in rec.summary()

    def test_recommendation_holds_empirically(self):
        rec = recommend_parameters(2_000, target_p=0.05, expiry_time=20.0)
        filt = BitmapFilter(
            BitmapFilterConfig(size=rec.size, vectors=rec.vectors, hashes=rec.hashes)
        )
        rng = random.Random(5)
        for _ in range(2_000):
            filt.mark_outbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
        probes = 10_000
        hits = sum(
            filt.lookup_inbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
            for _ in range(probes)
        )
        assert hits / probes <= 0.05 * 1.3  # modest sampling slack


@given(
    size_bits=st.integers(min_value=10, max_value=24),
    connections=st.integers(min_value=1, max_value=200_000),
    hashes=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=200)
def test_penetration_probability_in_unit_interval(size_bits, connections, hashes):
    p = penetration_probability(connections, 2 ** size_bits, hashes)
    assert 0.0 <= p <= 1.0
    exact = exact_penetration_probability(connections, 2 ** size_bits, hashes)
    assert 0.0 <= exact <= 1.0
    assert p >= exact - 1e-12  # approximation never undershoots
