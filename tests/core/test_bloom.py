"""Tests for the Bloom-filter substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter, optimal_hashes_classic, theoretical_fpr


class TestBloomBasics:
    def test_added_key_is_member(self):
        bloom = BloomFilter(size=1024, hashes=3)
        bloom.add(b"hello")
        assert b"hello" in bloom

    def test_no_false_negatives(self):
        bloom = BloomFilter(size=4096, hashes=4)
        keys = [f"key-{i}".encode() for i in range(200)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_absent_key_usually_absent(self):
        bloom = BloomFilter(size=2 ** 16, hashes=3)
        for i in range(100):
            bloom.add((i, i + 1, i + 2))
        misses = sum((i, 0, 0) in bloom for i in range(10_000, 11_000))
        assert misses < 10  # fpr should be tiny at this utilization

    def test_tuple_keys(self):
        bloom = BloomFilter(size=1024, hashes=3)
        bloom.add((6, 1, 2, 3, 4))
        assert (6, 1, 2, 3, 4) in bloom

    def test_clear(self):
        bloom = BloomFilter(size=1024, hashes=3)
        bloom.add(b"x")
        bloom.clear()
        assert b"x" not in bloom
        assert len(bloom) == 0

    def test_len_counts_adds(self):
        bloom = BloomFilter(size=1024, hashes=3)
        for i in range(5):
            bloom.add((i,))
        assert len(bloom) == 5

    def test_utilization_grows(self):
        bloom = BloomFilter(size=1024, hashes=3)
        before = bloom.utilization
        bloom.add(b"k")
        assert bloom.utilization > before

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BloomFilter(size=1000, hashes=3)

    def test_seed_isolation(self):
        a = BloomFilter(size=256, hashes=3, seed=1)
        b = BloomFilter(size=256, hashes=3, seed=2)
        a.add(b"k")
        b.add(b"k")
        assert a.vector != b.vector

    def test_measured_fpr_tracks_equation2(self):
        # p = U^m (Equation 2) against an empirical probe.
        bloom = BloomFilter(size=2 ** 12, hashes=3, seed=9)
        rng = random.Random(1)
        for _ in range(400):
            bloom.add((rng.getrandbits(32), rng.getrandbits(32)))
        predicted = bloom.false_positive_rate()
        probes = 20_000
        hits = sum(
            (rng.getrandbits(32), rng.getrandbits(32), 1) in bloom for _ in range(probes)
        )
        measured = hits / probes
        assert measured == pytest.approx(predicted, abs=0.02)


class TestTheory:
    def test_theoretical_fpr_monotone_in_items(self):
        rates = [theoretical_fpr(2 ** 16, 3, n) for n in (10, 100, 1000, 10000)]
        assert rates == sorted(rates)

    def test_theoretical_fpr_bounds(self):
        assert theoretical_fpr(2 ** 16, 3, 0) == 0.0
        assert 0.0 < theoretical_fpr(2 ** 10, 3, 500) < 1.0

    def test_theoretical_fpr_validation(self):
        with pytest.raises(ValueError):
            theoretical_fpr(0, 3, 10)
        with pytest.raises(ValueError):
            theoretical_fpr(16, 0, 10)
        with pytest.raises(ValueError):
            theoretical_fpr(16, 3, -1)

    def test_classic_optimum(self):
        # m* = (N/c) ln 2: for N=1024, c=100 -> ~7.1
        assert optimal_hashes_classic(1024, 100) == pytest.approx(7.097, abs=0.01)

    def test_classic_optimum_rejects_zero_items(self):
        with pytest.raises(ValueError):
            optimal_hashes_classic(1024, 0)

    def test_empirical_fpr_near_theory(self):
        size, hashes, items = 2 ** 14, 4, 1500
        bloom = BloomFilter(size=size, hashes=hashes, seed=3)
        rng = random.Random(2)
        for _ in range(items):
            bloom.add((rng.getrandbits(40),))
        expected = theoretical_fpr(size, hashes, items)
        probes = 30_000
        hits = sum((2 ** 50 + i,) in bloom for i in range(probes))
        assert hits / probes == pytest.approx(expected, rel=0.35, abs=0.005)


@given(st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=50))
@settings(max_examples=100)
def test_never_false_negative_property(keys):
    bloom = BloomFilter(size=2 ** 10, hashes=3)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)
