"""Tests for the hash families feeding the bitmap filter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    HashFamily,
    HashIndexMemo,
    derive_seed,
    fnv1a_64,
    make_hash_family,
    mix_tuple,
    splitmix64,
    uniformity_chi2,
)


class TestFnv1a:
    def test_known_empty(self):
        # FNV-1a offset basis for empty input.
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_known_vector(self):
        # 'a' -> documented FNV-1a 64-bit value.
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_seed_changes_output(self):
        assert fnv1a_64(b"hello", seed=0) != fnv1a_64(b"hello", seed=1)

    def test_deterministic(self):
        assert fnv1a_64(b"xyz") == fnv1a_64(b"xyz")

    def test_fits_64_bits(self):
        assert 0 <= fnv1a_64(b"\xff" * 100) < 2 ** 64


class TestSplitmix64:
    def test_fits_64_bits(self):
        for value in (0, 1, 2 ** 64 - 1, 12345678901234567890 % 2 ** 64):
            assert 0 <= splitmix64(value) < 2 ** 64

    def test_zero_not_fixed_point(self):
        assert splitmix64(0) != 0

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    def test_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        a = splitmix64(0x1234)
        b = splitmix64(0x1235)
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48


class TestMixTuple:
    def test_deterministic(self):
        fields = (6, 0x0A010005, 3333, 0xCB007107, 80)
        assert mix_tuple(fields) == mix_tuple(fields)

    def test_order_sensitive(self):
        assert mix_tuple((1, 2)) != mix_tuple((2, 1))

    def test_seed_sensitive(self):
        assert mix_tuple((1, 2), seed=0) != mix_tuple((1, 2), seed=1)

    def test_length_sensitive(self):
        assert mix_tuple((1,)) != mix_tuple((1, 0))


class TestHashFamily:
    def test_indices_in_range(self):
        family = HashFamily(m=5, n_bits=10)
        for fields in [(1, 2, 3), (6, 7, 8, 9, 10)]:
            for index in family.indices(fields):
                assert 0 <= index < 1024

    def test_m_indices_returned(self):
        family = HashFamily(m=7, n_bits=12)
        assert len(family.indices((1, 2, 3))) == 7

    def test_deterministic(self):
        family = HashFamily(m=3, n_bits=20)
        assert family.indices((6, 1, 2, 3)) == family.indices((6, 1, 2, 3))

    def test_distinct_keys_differ(self):
        family = HashFamily(m=3, n_bits=20)
        assert family.indices((6, 1, 2, 3)) != family.indices((6, 1, 2, 4))

    def test_seeds_give_different_families(self):
        a = HashFamily(m=3, n_bits=20, seed=1)
        b = HashFamily(m=3, n_bits=20, seed=2)
        assert a.indices((1, 2, 3)) != b.indices((1, 2, 3))

    def test_bytes_and_tuple_apis_independent(self):
        family = HashFamily(m=3, n_bits=16)
        assert len(family.indices_bytes(b"some key")) == 3

    def test_rejects_zero_hashes(self):
        with pytest.raises(ValueError):
            HashFamily(m=0, n_bits=10)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            HashFamily(m=3, n_bits=0)
        with pytest.raises(ValueError):
            HashFamily(m=3, n_bits=33)

    def test_n_bit_truncation(self):
        # The paper: outputs exceeding n bits are truncated.
        family = HashFamily(m=8, n_bits=4)
        assert all(0 <= i < 16 for i in family.indices((9, 9, 9)))

    def test_uniformity(self):
        family = HashFamily(m=1, n_bits=16)
        rng = random.Random(7)
        samples = [
            family.indices((rng.getrandbits(32), rng.getrandbits(16)))[0]
            for _ in range(20000)
        ]
        chi2 = uniformity_chi2(samples, buckets=64)
        # 63 degrees of freedom; p=0.001 critical value ~ 103.
        assert chi2 < 110


class TestMakeHashFamily:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            make_hash_family(3, 1000)

    def test_size_to_bits(self):
        family = make_hash_family(3, 2 ** 20)
        assert family.n_bits == 20

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_hash_family(3, 0)


class TestUniformityChi2:
    def test_perfectly_uniform(self):
        samples = list(range(100)) * 10
        assert uniformity_chi2(samples, buckets=100) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity_chi2([], buckets=4)


@given(st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1), min_size=1, max_size=6))
@settings(max_examples=200)
def test_indices_always_in_range(fields):
    family = HashFamily(m=4, n_bits=14)
    assert all(0 <= index < 2 ** 14 for index in family.indices(fields))


@given(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=2 ** 32 - 1),
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=2 ** 32 - 1),
        st.integers(min_value=0, max_value=65535),
    )
)
@settings(max_examples=200)
def test_hash_family_deterministic_property(fields):
    family = HashFamily(m=3, n_bits=20, seed=5)
    assert family.indices(fields) == family.indices(fields)


class TestDeriveSeed:
    """Per-stream RNG seed derivation (the generator's packet schedules)."""

    def test_regression_colliding_indices(self):
        # The old layout (seed << 20) ^ index collapses these two streams
        # onto one value — index 2**20 under seed 7 lands exactly on
        # index 0 under seed 6 — so both connections replayed the same
        # packet-schedule RNG.  derive_seed must keep them apart.
        assert (7 << 20) ^ 2 ** 20 == (6 << 20) ^ 0  # the collision itself
        assert derive_seed(7, 2 ** 20) != derive_seed(6, 0)
        assert (3 << 20) ^ (2 ** 21 + 5) == (1 << 20) ^ 5
        assert derive_seed(3, 2 ** 21 + 5) != derive_seed(1, 5)

    def test_colliding_indices_give_distinct_rng_streams(self):
        a = random.Random(derive_seed(7, 2 ** 20))
        b = random.Random(derive_seed(6, 0))
        assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]

    def test_injective_per_seed(self):
        seeds = {derive_seed(7, index) for index in range(5000)}
        assert len(seeds) == 5000
        large = {derive_seed(7, 2 ** 20 + index) for index in range(5000)}
        assert len(large) == 5000
        assert not seeds & large

    def test_deterministic(self):
        assert derive_seed(42, 17) == derive_seed(42, 17)


class TestHashIndexMemo:
    """LRU memo accounting: repeats are hits, firsts are misses."""

    def make(self, capacity=1 << 16):
        return HashIndexMemo(make_hash_family(3, 2 ** 14), capacity=capacity)

    def test_get_accounting(self):
        memo = self.make()
        key = (6, 1, 2, 3, 4)
        first = memo.get(key)
        assert (memo.hits, memo.misses) == (0, 1)
        assert memo.get(key) == first
        assert (memo.hits, memo.misses) == (1, 1)

    def test_get_many_credits_in_batch_repeats(self):
        # The PR-3 bug: misses were deduped before resolution, so a flow's
        # thousands of repeats inside one batch earned zero hits.
        memo = self.make()
        k1, k2 = (6, 1, 1, 2, 2), (6, 3, 3, 4, 4)
        memo.get_many([k1, k1, k2, k1, k2])
        assert (memo.hits, memo.misses) == (3, 2)

    def test_get_many_credits_cross_batch_reuse(self):
        memo = self.make()
        k1, k2 = (6, 1, 1, 2, 2), (6, 3, 3, 4, 4)
        memo.get_many([k1, k2])
        assert (memo.hits, memo.misses) == (0, 2)
        memo.get_many([k1, k2, k1])
        assert (memo.hits, memo.misses) == (3, 2)

    def test_get_many_matches_per_key_get_accounting(self):
        rng = random.Random(3)
        keys = [(6, rng.randrange(8), 1, rng.randrange(8), 2)
                for _ in range(200)]
        batched = self.make()
        batched_out = batched.get_many(keys)
        looped = self.make()
        looped_out = [looped.get(key) for key in keys]
        assert batched_out == looped_out
        assert (batched.hits, batched.misses) == (looped.hits, looped.misses)

    def test_get_many_survives_capacity_smaller_than_batch(self):
        memo = self.make(capacity=4)
        keys = [(6, index, 0, 0, 0) for index in range(16)]
        out = memo.get_many(keys)
        family = make_hash_family(3, 2 ** 14)
        assert out == [tuple(family.indices(key)) for key in keys]
        assert len(memo) <= 4


class TestVectorizedBatches:
    """numpy-vectorized indices_many / base_hashes_many are bit-identical
    to the scalar loop, on every key width, and fall back cleanly."""

    @pytest.fixture(params=["numpy", "stdlib"])
    def np_mode(self, request, monkeypatch):
        import repro.net.table as table_mod
        if request.param == "numpy" and not table_mod.HAVE_NUMPY:
            pytest.skip("numpy not installed")
        monkeypatch.setattr(
            table_mod, "_use_numpy",
            request.param == "numpy" and table_mod.HAVE_NUMPY,
        )
        return request.param

    def keys(self, width, count=300, seed=3):
        rng = random.Random(seed)
        return [tuple(rng.randrange(2 ** 32) for _ in range(width))
                for _ in range(count)]

    @pytest.mark.parametrize("width", [4, 5])
    def test_indices_many_matches_scalar(self, np_mode, width):
        family = HashFamily(4, 14, seed=9)
        keys = self.keys(width)
        batched = family.indices_many(keys)
        assert batched == [tuple(family.indices(k)) for k in keys]

    @pytest.mark.parametrize("width", [4, 5])
    def test_base_hashes_many_matches_scalar(self, np_mode, width):
        family = HashFamily(3, 20, seed=2)
        keys = self.keys(width)
        assert family.base_hashes_many(keys) == \
            [family.base_hashes(k) for k in keys]

    def test_ragged_key_batch_falls_back(self, np_mode):
        # Mixed strict (5-field) and hole-punching (4-field) keys cannot
        # form a rectangular matrix; the scalar loop must kick in.
        family = HashFamily(4, 14, seed=9)
        keys = self.keys(5, count=40) + self.keys(4, count=40)
        assert family.indices_many(keys) == \
            [tuple(family.indices(k)) for k in keys]

    def test_small_batches_skip_numpy_setup(self, np_mode):
        family = HashFamily(4, 14, seed=9)
        keys = self.keys(5, count=8)  # below the vectorization threshold
        assert family.indices_many(keys) == \
            [tuple(family.indices(k)) for k in keys]

    def test_iterator_input_still_works(self, np_mode):
        family = HashFamily(4, 14, seed=9)
        keys = self.keys(5, count=100)
        assert family.indices_many(iter(keys)) == family.indices_many(keys)
