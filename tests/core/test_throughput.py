"""Tests for uplink-throughput estimators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.throughput import (
    EwmaThroughputMeter,
    SlidingWindowMeter,
    from_mbps,
    mbps,
)


class TestSlidingWindowMeter:
    def test_empty_rate_is_zero(self):
        meter = SlidingWindowMeter(window=1.0)
        assert meter.rate_bps(10.0) == 0.0

    def test_single_packet(self):
        meter = SlidingWindowMeter(window=1.0)
        meter.record(0.0, 125)  # 1000 bits, but only 0.5 s observed so far
        assert meter.rate_bps(0.5) == pytest.approx(2000.0)

    def test_single_packet_after_full_window(self):
        meter = SlidingWindowMeter(window=1.0)
        meter.record(0.5, 125)  # 1000 bits in a full 1 s window
        assert meter.rate_bps(1.5) == pytest.approx(1000.0)

    def test_warmup_uses_elapsed_time(self):
        # Regression: before the fix the first window's traffic was divided
        # by the full window, underestimating throughput (and keeping P_d
        # at 0) until ``window`` seconds had elapsed.
        meter = SlidingWindowMeter(window=10.0)
        meter.record(0.0, 1250)
        meter.record(1.0, 1250)
        # 2500 B over 2 observed seconds = 10 kbps, not 2500*8/10 = 2 kbps.
        assert meter.rate_bps(2.0) == pytest.approx(10_000.0)

    def test_warmup_at_first_instant_falls_back_to_window(self):
        meter = SlidingWindowMeter(window=2.0)
        meter.record(3.0, 1000)
        # No elapsed time to average over: full-window average, not inf.
        assert meter.rate_bps(3.0) == pytest.approx(1000 * 8.0 / 2.0)

    def test_steady_stream(self):
        meter = SlidingWindowMeter(window=1.0)
        for i in range(100):
            meter.record(i * 0.01, 1250)  # 1250 B every 10 ms = 1 Mbps
        assert meter.rate_bps(1.0) == pytest.approx(1e6, rel=0.02)

    def test_eviction(self):
        meter = SlidingWindowMeter(window=1.0)
        meter.record(0.0, 1000)
        assert meter.rate_bps(2.5) == 0.0
        assert len(meter) == 0

    def test_partial_eviction(self):
        meter = SlidingWindowMeter(window=1.0)
        meter.record(0.0, 1000)
        meter.record(0.9, 1000)
        assert meter.rate_bps(1.5) == pytest.approx(8000.0)

    def test_window_scaling(self):
        short = SlidingWindowMeter(window=1.0)
        long = SlidingWindowMeter(window=10.0)
        for meter in (short, long):
            meter.record(5.0, 1000)
        assert short.rate_bps(5.0) == pytest.approx(10 * long.rate_bps(5.0))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowMeter(window=0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            SlidingWindowMeter().record(0.0, -1)


class TestEwmaMeter:
    def test_initially_zero(self):
        meter = EwmaThroughputMeter()
        assert meter.rate_bps(0.0) == 0.0

    def test_first_packet_is_visible(self):
        # Regression: the anchor sample used to reset the rate to 0, so a
        # single-packet burst was invisible to the estimator.
        meter = EwmaThroughputMeter(tau=2.0)
        meter.record(0.0, 1250)
        assert meter.rate_bps(0.0) == pytest.approx(1250 * 8.0 / 2.0)

    def test_first_packet_estimate_decays(self):
        meter = EwmaThroughputMeter(tau=1.0)
        meter.record(0.0, 1250)
        assert 0.0 < meter.rate_bps(5.0) < meter.rate_bps(0.0)

    def test_converges_to_steady_rate(self):
        meter = EwmaThroughputMeter(tau=0.5)
        # 1250 B per 10 ms = 1 Mbps steady.
        for i in range(1, 1000):
            meter.record(i * 0.01, 1250)
        assert meter.rate_bps(10.0) == pytest.approx(1e6, rel=0.05)

    def test_decays_during_silence(self):
        meter = EwmaThroughputMeter(tau=1.0)
        for i in range(1, 200):
            meter.record(i * 0.01, 1250)
        active = meter.rate_bps(2.0)
        quiet = meter.rate_bps(10.0)
        assert quiet < active * 0.01

    def test_same_instant_burst_does_not_crash(self):
        meter = EwmaThroughputMeter()
        meter.record(1.0, 100)
        meter.record(1.0, 100)
        assert meter.rate_bps(1.0) >= 0.0

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            EwmaThroughputMeter(tau=0.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            EwmaThroughputMeter().record(0.0, -5)


class TestUnits:
    def test_mbps_roundtrip(self):
        assert mbps(from_mbps(100.0)) == pytest.approx(100.0)

    def test_mbps_value(self):
        assert mbps(1e6) == 1.0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=50,
    )
)
@settings(max_examples=100)
def test_sliding_window_rate_never_negative(events):
    meter = SlidingWindowMeter(window=2.0)
    for timestamp, size in sorted(events):
        meter.record(timestamp, size)
        assert meter.rate_bps(timestamp) >= 0.0
