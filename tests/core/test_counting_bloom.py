"""Tests for the counting Bloom filter substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting_bloom import COUNTER_MAX, CountingBloomFilter


class TestBasics:
    def test_add_then_member(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        cbf.add(b"key")
        assert b"key" in cbf

    def test_absent_not_member(self):
        cbf = CountingBloomFilter(size=2 ** 16, hashes=3)
        cbf.add(b"present")
        assert b"absent" not in cbf

    def test_remove_deletes(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        cbf.add(b"key")
        assert cbf.remove(b"key")
        assert b"key" not in cbf

    def test_remove_absent_is_safe_noop(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        cbf.add(b"other")
        assert not cbf.remove(b"missing")
        assert b"other" in cbf

    def test_multiset_semantics(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        cbf.add(b"key")
        cbf.add(b"key")
        cbf.remove(b"key")
        assert b"key" in cbf  # one copy remains
        cbf.remove(b"key")
        assert b"key" not in cbf

    def test_remove_does_not_disturb_others(self):
        cbf = CountingBloomFilter(size=2 ** 14, hashes=3)
        keys = [f"k{i}".encode() for i in range(100)]
        for key in keys:
            cbf.add(key)
        for key in keys[:50]:
            cbf.remove(key)
        assert all(key in cbf for key in keys[50:])

    def test_tuple_keys(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        cbf.add((6, 1, 2, 3, 4))
        assert (6, 1, 2, 3, 4) in cbf
        assert cbf.remove((6, 1, 2, 3, 4))

    def test_len_tracks_live_entries(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        for i in range(5):
            cbf.add((i,))
        cbf.remove((0,))
        assert len(cbf) == 4


class TestCounters:
    def test_saturation(self):
        cbf = CountingBloomFilter(size=64, hashes=1)
        for _ in range(COUNTER_MAX + 5):
            cbf.add(b"hot")
        assert cbf.saturations > 0
        assert b"hot" in cbf

    def test_saturated_cell_never_decremented(self):
        cbf = CountingBloomFilter(size=64, hashes=1)
        for _ in range(COUNTER_MAX + 5):
            cbf.add(b"hot")
        for _ in range(COUNTER_MAX + 5):
            cbf.remove(b"hot")
        # Saturated cells are stranded at COUNTER_MAX — still a member.
        assert b"hot" in cbf

    def test_clear(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        cbf.add(b"x")
        cbf.clear()
        assert b"x" not in cbf
        assert len(cbf) == 0

    def test_utilization(self):
        cbf = CountingBloomFilter(size=1024, hashes=3)
        assert cbf.utilization == 0.0
        cbf.add(b"x")
        assert 0.0 < cbf.utilization <= 3 / 1024

    def test_memory_is_half_size_bytes(self):
        cbf = CountingBloomFilter(size=2 ** 10, hashes=3)
        assert cbf.memory_bytes == 2 ** 9

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(size=1000, hashes=3)


class TestDeletionLowersUtilization:
    def test_fpr_drops_after_removals(self):
        rng = random.Random(7)
        cbf = CountingBloomFilter(size=2 ** 12, hashes=3)
        keys = [(rng.getrandbits(48),) for _ in range(600)]
        for key in keys:
            cbf.add(key)
        before = cbf.false_positive_rate()
        for key in keys[:500]:
            cbf.remove(key)
        after = cbf.false_positive_rate()
        assert after < before * 0.3


@given(st.sets(st.binary(min_size=1, max_size=12), min_size=1, max_size=40))
@settings(max_examples=100)
def test_add_remove_roundtrip_property(keys):
    cbf = CountingBloomFilter(size=2 ** 12, hashes=3)
    for key in keys:
        cbf.add(key)
    assert all(key in cbf for key in keys)
    for key in keys:
        assert cbf.remove(key)
    # With distinct adds/removes and no saturation, everything clears.
    assert cbf.utilization == 0.0
