"""Tests for the bit-vector substrate (one bitmap column)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import BitVector, ByteArrayBitVector, vector_stats


class TestBitVectorBasics:
    def test_starts_empty(self):
        vector = BitVector(64)
        assert vector.popcount() == 0
        assert not vector.test(0)
        assert not vector.test(63)

    def test_set_and_test(self):
        vector = BitVector(64)
        vector.set(5)
        assert vector.test(5)
        assert not vector.test(4)
        assert not vector.test(6)

    def test_set_many(self):
        vector = BitVector(128)
        vector.set_many([0, 64, 127])
        assert vector.test(0) and vector.test(64) and vector.test(127)
        assert vector.popcount() == 3

    def test_set_idempotent(self):
        vector = BitVector(32)
        vector.set(10)
        vector.set(10)
        assert vector.popcount() == 1

    def test_test_all(self):
        vector = BitVector(32)
        vector.set_many([1, 2, 3])
        assert vector.test_all([1, 2, 3])
        assert not vector.test_all([1, 2, 4])
        assert vector.test_all([])  # vacuous truth

    def test_clear(self):
        vector = BitVector(32)
        vector.set_many(range(32))
        vector.clear()
        assert vector.popcount() == 0

    def test_utilization(self):
        vector = BitVector(100)
        vector.set_many(range(25))
        assert vector.utilization == pytest.approx(0.25)

    def test_len(self):
        assert len(BitVector(77)) == 77


class TestBitVectorBounds:
    def test_negative_index(self):
        with pytest.raises(IndexError):
            BitVector(8).set(-1)

    def test_index_at_size(self):
        with pytest.raises(IndexError):
            BitVector(8).set(8)

    def test_test_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(8).test(8)

    def test_set_many_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(8).set_many([3, 9])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            BitVector(0)


class TestBitVectorSerde:
    def test_roundtrip(self):
        vector = BitVector(70)
        vector.set_many([0, 13, 69])
        clone = BitVector.from_bytes(vector.to_bytes(), 70)
        assert clone == vector

    def test_from_bytes_rejects_overflow(self):
        vector = BitVector(16)
        vector.set(15)
        with pytest.raises(ValueError):
            BitVector.from_bytes(vector.to_bytes(), 8)

    def test_copy_is_independent(self):
        vector = BitVector(16)
        vector.set(3)
        clone = vector.copy()
        clone.set(4)
        assert not vector.test(4)
        assert clone.test(3)

    def test_union_update(self):
        a = BitVector(16)
        b = BitVector(16)
        a.set(1)
        b.set(2)
        a.union_update(b)
        assert a.test(1) and a.test(2)

    def test_union_size_mismatch(self):
        with pytest.raises(ValueError):
            BitVector(8).union_update(BitVector(16))

    def test_iter_set_bits(self):
        vector = BitVector(40)
        vector.set_many([3, 17, 39])
        assert list(vector.iter_set_bits()) == [3, 17, 39]

    def test_equality(self):
        a, b = BitVector(8), BitVector(8)
        a.set(2)
        b.set(2)
        assert a == b
        b.set(3)
        assert a != b


class TestByteArrayBitVector:
    """The C-layout variant must agree with the int-backed one."""

    def test_agrees_with_int_backed(self):
        import random

        rng = random.Random(3)
        a = BitVector(512)
        b = ByteArrayBitVector(512)
        indices = [rng.randrange(512) for _ in range(100)]
        a.set_many(indices)
        b.set_many(indices)
        for index in range(512):
            assert a.test(index) == b.test(index)
        assert a.popcount() == b.popcount()

    def test_clear(self):
        vector = ByteArrayBitVector(64)
        vector.set_many([0, 63])
        vector.clear()
        assert vector.popcount() == 0

    def test_bounds(self):
        with pytest.raises(IndexError):
            ByteArrayBitVector(8).set(8)
        with pytest.raises(ValueError):
            ByteArrayBitVector(0)

    def test_test_all(self):
        vector = ByteArrayBitVector(32)
        vector.set_many([4, 5])
        assert vector.test_all([4, 5])
        assert not vector.test_all([4, 6])


class TestVectorStats:
    def test_summary(self):
        vectors = [BitVector(10) for _ in range(3)]
        vectors[0].set_many([0, 1])
        stats = vector_stats(vectors)
        assert stats["count"] == 3
        assert stats["max_utilization"] == pytest.approx(0.2)
        assert stats["min_utilization"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            vector_stats([])


@given(st.sets(st.integers(min_value=0, max_value=255), max_size=64))
@settings(max_examples=200)
def test_popcount_matches_set_size(indices):
    vector = BitVector(256)
    vector.set_many(indices)
    assert vector.popcount() == len(indices)
    assert set(vector.iter_set_bits()) == indices


@given(st.sets(st.integers(min_value=0, max_value=127), min_size=1, max_size=30))
@settings(max_examples=200)
def test_serde_roundtrip_property(indices):
    vector = BitVector(128)
    vector.set_many(indices)
    assert BitVector.from_bytes(vector.to_bytes(), 128) == vector


@given(st.sets(st.integers(min_value=0, max_value=4095), max_size=200))
@settings(max_examples=100)
def test_popcount_fallback_matches_bit_count(indices):
    # The chunked-to_bytes fallback (Python 3.9) must agree with the
    # int.bit_count fast path used on >= 3.10.
    from repro.core.bitvector import _popcount_fallback, popcount_int

    value = 0
    for index in indices:
        value |= 1 << index
    assert _popcount_fallback(value) == len(indices)
    assert popcount_int(value) == len(indices)


class TestMaskOps:
    def test_set_mask_equivalent_to_set_many(self):
        a, b = BitVector(64), BitVector(64)
        a.set_many([1, 5, 40])
        b.set_mask((1 << 1) | (1 << 5) | (1 << 40))
        assert a == b

    def test_set_mask_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector(8).set_mask(1 << 8)

    def test_test_mask_requires_all_bits(self):
        vector = BitVector(32)
        vector.set_many([2, 3])
        assert vector.test_mask((1 << 2) | (1 << 3))
        assert not vector.test_mask((1 << 2) | (1 << 4))
        assert vector.test_mask(0)
