"""Tests for the {k×N}-bitmap filter (Algorithms 1 and 2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, FieldMode
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import Direction, SocketPair

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR, tcp_pair, udp_pair


def small_filter(**overrides) -> BitmapFilter:
    defaults = dict(size=2 ** 12, vectors=4, hashes=3, rotate_interval=5.0)
    defaults.update(overrides)
    return BitmapFilter(BitmapFilterConfig(**defaults))


class TestConfig:
    def test_paper_defaults(self):
        config = BitmapFilterConfig()
        assert config.size == 2 ** 20
        assert config.vectors == 4
        assert config.hashes == 3
        assert config.rotate_interval == 5.0

    def test_expiry_time_is_k_delta_t(self):
        config = BitmapFilterConfig(vectors=4, rotate_interval=5.0)
        assert config.expiry_time == 20.0

    def test_memory_matches_paper_example(self):
        # "the memory space required by the bitmap filter is only
        #  (k × N)/8 = 512K bytes"
        config = BitmapFilterConfig(size=2 ** 20, vectors=4)
        assert config.memory_bytes == 512 * 1024

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BitmapFilterConfig(size=1000)

    def test_needs_two_vectors(self):
        with pytest.raises(ValueError):
            BitmapFilterConfig(vectors=1)

    def test_needs_one_hash(self):
        with pytest.raises(ValueError):
            BitmapFilterConfig(hashes=0)

    def test_positive_interval(self):
        with pytest.raises(ValueError):
            BitmapFilterConfig(rotate_interval=0)


class TestMarkAndLookup:
    def test_marked_pair_is_found(self):
        filt = small_filter()
        pair = tcp_pair()
        filt.mark_outbound(pair)
        assert filt.lookup_inbound(pair.inverse)

    def test_unmarked_pair_is_missed(self):
        filt = small_filter()
        filt.mark_outbound(tcp_pair(sport=1111))
        assert not filt.lookup_inbound(tcp_pair(sport=2222).inverse)

    def test_mark_sets_all_vectors(self):
        filt = small_filter()
        filt.mark_outbound(tcp_pair())
        pops = [vector.popcount() for vector in filt.vectors]
        assert all(pop > 0 for pop in pops)
        assert len(set(pops)) == 1

    def test_lookup_only_checks_current_vector(self):
        filt = small_filter()
        pair = tcp_pair()
        filt.mark_outbound(pair)
        # Manually wipe only the current vector: lookup must now miss even
        # though the other vectors still carry the mark.
        filt.vectors[filt.idx].clear()
        assert not filt.lookup_inbound(pair.inverse)

    def test_udp_pairs_supported(self):
        filt = small_filter()
        pair = udp_pair()
        filt.mark_outbound(pair)
        assert filt.lookup_inbound(pair.inverse)

    def test_protocol_distinguishes_pairs(self):
        filt = small_filter()
        tcp = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 5555, REMOTE_ADDR, 80)
        udp = SocketPair(IPPROTO_UDP, CLIENT_ADDR, 5555, REMOTE_ADDR, 80)
        filt.mark_outbound(tcp)
        assert not filt.lookup_inbound(udp.inverse)

    def test_stats_counters(self):
        filt = small_filter()
        pair = tcp_pair()
        filt.mark_outbound(pair)
        filt.lookup_inbound(pair.inverse)
        filt.lookup_inbound(tcp_pair(sport=9999).inverse)
        assert filt.stats.outbound_marked == 1
        assert filt.stats.inbound_hits == 1
        assert filt.stats.inbound_misses == 1


class TestRotation:
    def test_rotate_advances_index(self):
        filt = small_filter(vectors=3)
        assert filt.idx == 0
        assert filt.rotate() == 1
        assert filt.rotate() == 2
        assert filt.rotate() == 0  # wraps mod k

    def test_rotate_clears_vacated_vector(self):
        filt = small_filter()
        filt.mark_outbound(tcp_pair())
        old = filt.idx
        filt.rotate()
        assert filt.vectors[old].popcount() == 0

    def test_mark_survives_k_minus_1_rotations(self):
        filt = small_filter(vectors=4)
        pair = tcp_pair()
        filt.mark_outbound(pair)
        for _ in range(3):  # k-1 rotations
            filt.rotate()
            assert filt.lookup_inbound(pair.inverse)

    def test_mark_gone_after_k_rotations(self):
        filt = small_filter(vectors=4)
        pair = tcp_pair()
        filt.mark_outbound(pair)
        for _ in range(4):
            filt.rotate()
        assert not filt.lookup_inbound(pair.inverse)

    def test_advance_to_runs_pending_rotations(self):
        filt = small_filter(rotate_interval=5.0)
        filt.advance_to(0.0)  # anchors the schedule
        assert filt.advance_to(4.9) == 0
        assert filt.advance_to(5.0) == 1
        assert filt.advance_to(20.0) == 3

    def test_advance_to_ignores_time_going_backwards(self):
        filt = small_filter(rotate_interval=5.0)
        filt.advance_to(0.0)
        filt.advance_to(12.0)
        assert filt.advance_to(3.0) == 0

    def test_refresh_extends_visibility(self):
        # Re-marking (an active connection's next packet) keeps the pair
        # alive indefinitely, like the naive solution's timer reset.
        filt = small_filter(vectors=4)
        pair = tcp_pair()
        for _ in range(10):
            filt.mark_outbound(pair)
            filt.rotate()
            assert filt.lookup_inbound(pair.inverse)


class TestFilterDecision:
    def test_outbound_always_passes(self):
        filt = small_filter()
        assert filt.filter(tcp_pair(), Direction.OUTBOUND) is True

    def test_inbound_hit_passes(self):
        filt = small_filter()
        pair = tcp_pair()
        filt.filter(pair, Direction.OUTBOUND)
        assert filt.filter(pair.inverse, Direction.INBOUND) is True

    def test_inbound_miss_dropped_at_p1(self):
        filt = small_filter()
        assert filt.filter(tcp_pair().inverse, Direction.INBOUND, 1.0) is False
        assert filt.stats.inbound_dropped == 1

    def test_inbound_miss_passes_at_p0(self):
        filt = small_filter()
        assert filt.filter(tcp_pair().inverse, Direction.INBOUND, 0.0) is True
        assert filt.stats.inbound_dropped == 0

    def test_intermediate_probability(self):
        filt = BitmapFilter(
            BitmapFilterConfig(size=2 ** 12, vectors=4, hashes=3),
            rng=random.Random(99),
        )
        drops = sum(
            not filt.filter(tcp_pair(sport=1024 + i).inverse, Direction.INBOUND, 0.3)
            for i in range(2000)
        )
        assert drops / 2000 == pytest.approx(0.3, abs=0.05)

    def test_reset(self):
        filt = small_filter()
        filt.filter(tcp_pair(), Direction.OUTBOUND)
        filt.rotate()
        filt.reset()
        assert filt.idx == 0
        assert filt.stats.outbound_marked == 0
        assert all(vector.popcount() == 0 for vector in filt.vectors)


class TestFieldModes:
    def test_strict_requires_exact_reverse_path(self):
        filt = small_filter(field_mode=FieldMode.STRICT)
        pair = tcp_pair(sport=4000, dport=6881)
        filt.mark_outbound(pair)
        assert filt.lookup_inbound(pair.inverse)
        # Same remote host, different remote port: must miss.
        other = SocketPair(IPPROTO_TCP, REMOTE_ADDR, 7000, CLIENT_ADDR, 4000)
        assert not filt.lookup_inbound(other)

    def test_hole_punching_ignores_remote_port(self):
        # An outbound packet to peer P opens the door for inbound packets
        # from *any* port of P toward the same local endpoint.
        filt = small_filter(field_mode=FieldMode.HOLE_PUNCHING)
        pair = udp_pair(sport=4000, dport=6881)
        filt.mark_outbound(pair)
        from_other_port = SocketPair(IPPROTO_UDP, REMOTE_ADDR, 12345, CLIENT_ADDR, 4000)
        assert filt.lookup_inbound(from_other_port)

    def test_hole_punching_still_checks_remote_address(self):
        filt = small_filter(field_mode=FieldMode.HOLE_PUNCHING)
        pair = udp_pair(sport=4000, dport=6881)
        filt.mark_outbound(pair)
        from_other_host = SocketPair(IPPROTO_UDP, REMOTE_ADDR + 1, 6881, CLIENT_ADDR, 4000)
        assert not filt.lookup_inbound(from_other_host)

    def test_hole_punching_still_checks_local_port(self):
        filt = small_filter(field_mode=FieldMode.HOLE_PUNCHING)
        pair = udp_pair(sport=4000, dport=6881)
        filt.mark_outbound(pair)
        to_other_local_port = SocketPair(IPPROTO_UDP, REMOTE_ADDR, 6881, CLIENT_ADDR, 4001)
        assert not filt.lookup_inbound(to_other_local_port)

    def test_hole_punch_rendezvous_admits_port_hopping_probes(self):
        # The swarm plane's hole-punch rendezvous: one outbound probe from
        # the client's listen port toward the peer, then inbound connects
        # hopping across ephemeral source ports.  Under HOLE_PUNCHING
        # every hop matches the single probe's mark.
        filt = small_filter(field_mode=FieldMode.HOLE_PUNCHING)
        probe = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 6881, REMOTE_ADDR, 40001)
        filt.mark_outbound(probe)
        for hop in (40002, 51333, 1024, 65535):
            inbound = SocketPair(IPPROTO_TCP, REMOTE_ADDR, hop, CLIENT_ADDR, 6881)
            assert filt.lookup_inbound(inbound), hop

    def test_strict_refuses_every_port_hop_but_the_probed_one(self):
        # Same rendezvous against STRICT fields: only the exact probed
        # remote port matches; every hop misses.
        filt = small_filter(field_mode=FieldMode.STRICT)
        probe = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 6881, REMOTE_ADDR, 40001)
        filt.mark_outbound(probe)
        assert filt.lookup_inbound(probe.inverse)
        for hop in (40002, 51333, 1024, 65535):
            inbound = SocketPair(IPPROTO_TCP, REMOTE_ADDR, hop, CLIENT_ADDR, 6881)
            assert not filt.lookup_inbound(inbound), hop

    def test_hole_punch_door_survives_rotation_within_expiry(self):
        # The asymmetric mark ages like any other: refreshed rotations
        # within T_e keep the door open for hopping probes.
        filt = small_filter(field_mode=FieldMode.HOLE_PUNCHING,
                            vectors=4, rotate_interval=5.0)
        probe = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 6881, REMOTE_ADDR, 40001)
        filt.mark_outbound(probe)
        filt.rotate()
        hop = SocketPair(IPPROTO_TCP, REMOTE_ADDR, 50999, CLIENT_ADDR, 6881)
        assert filt.lookup_inbound(hop)


class TestPenetration:
    def test_utilization_reported(self):
        filt = small_filter()
        assert filt.current_utilization == 0.0
        filt.mark_outbound(tcp_pair())
        assert filt.current_utilization > 0.0

    def test_penetration_probability_is_u_to_m(self):
        filt = small_filter(hashes=3)
        for i in range(50):
            filt.mark_outbound(tcp_pair(sport=1024 + i))
        assert filt.penetration_probability() == pytest.approx(
            filt.current_utilization ** 3
        )

    def test_empirical_penetration_matches_equation(self):
        # Fill to a known utilization, probe with random unseen pairs.
        filt = BitmapFilter(
            BitmapFilterConfig(size=2 ** 12, vectors=2, hashes=3, seed=4)
        )
        rng = random.Random(8)
        for _ in range(300):
            filt.mark_outbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
        predicted = filt.penetration_probability()
        probes = 20_000
        hits = sum(
            filt.lookup_inbound(
                SocketPair(IPPROTO_TCP, rng.getrandbits(32), rng.getrandbits(16),
                           rng.getrandbits(32), rng.getrandbits(16))
            )
            for _ in range(probes)
        )
        assert hits / probes == pytest.approx(predicted, rel=0.25, abs=0.01)


# ---------------------------------------------------------------------------
# The core correctness property: within (k-1)·Δt of a mark, lookups always
# hit — the bitmap filter has no false negatives inside its guaranteed
# window, regardless of rotation phase.
# ---------------------------------------------------------------------------


@given(
    mark_time=st.floats(min_value=0.0, max_value=100.0),
    gap=st.floats(min_value=0.0, max_value=14.9),
    anchor=st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=200, deadline=None)
def test_no_false_negative_within_guaranteed_window(mark_time, gap, anchor):
    filt = small_filter(vectors=4, rotate_interval=5.0)  # (k-1)·Δt = 15 s
    filt.advance_to(anchor)
    mark_time = anchor + mark_time
    filt.advance_to(mark_time)
    pair = tcp_pair()
    filt.mark_outbound(pair)
    filt.advance_to(mark_time + gap)
    assert filt.lookup_inbound(pair.inverse)


@given(gap=st.floats(min_value=20.01, max_value=200.0))
@settings(max_examples=100, deadline=None)
def test_mark_always_expired_after_te(gap):
    # Beyond T_e = k·Δt the mark must be gone (absent hash collisions;
    # with a nearly-empty 4096-bit map and one mark, collisions are
    # impossible for the same 3 bits to all reappear).
    filt = small_filter(vectors=4, rotate_interval=5.0)
    filt.advance_to(0.0)
    pair = tcp_pair()
    filt.mark_outbound(pair)
    filt.advance_to(gap)
    assert not filt.lookup_inbound(pair.inverse)
