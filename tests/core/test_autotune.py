"""Tests for the adaptive target-rate controller."""

import pytest

from repro.core.autotune import TargetRateController
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.throughput import SlidingWindowMeter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController


class TestControlLaw:
    def test_starts_at_initial_probability(self):
        controller = TargetRateController(1e6)
        assert controller.current_probability == 0.0

    def test_raises_pd_above_target(self):
        controller = TargetRateController(1e6, gain=0.1)
        for _ in range(20):
            controller.probability(2e6)  # 2x the target
        assert controller.current_probability > 0.5

    def test_lowers_pd_below_target(self):
        controller = TargetRateController(1e6, gain=0.1, initial_probability=1.0)
        for _ in range(30):
            controller.probability(0.2e6)
        assert controller.current_probability < 0.5

    def test_deadband_prevents_hunting(self):
        controller = TargetRateController(1e6, deadband=0.10, initial_probability=0.4)
        for _ in range(100):
            controller.probability(1.05e6)  # within the 10% deadband
        assert controller.current_probability == pytest.approx(0.4)

    def test_clamped_to_unit_interval(self):
        controller = TargetRateController(1e6, gain=5.0)
        for _ in range(10):
            controller.probability(100e6)
        assert controller.current_probability == 1.0
        for _ in range(10):
            controller.probability(0.0)
        assert controller.current_probability == 0.0

    def test_reset(self):
        controller = TargetRateController(1e6, gain=0.5)
        controller.probability(5e6)
        controller.reset()
        assert controller.current_probability == 0.0
        assert controller.observations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetRateController(0)
        with pytest.raises(ValueError):
            TargetRateController(1e6, gain=0)
        with pytest.raises(ValueError):
            TargetRateController(1e6, deadband=1.0)
        with pytest.raises(ValueError):
            TargetRateController(1e6, initial_probability=1.5)
        with pytest.raises(ValueError):
            TargetRateController(1e6).reset(probability=-0.1)


class TestClosedLoopConvergence:
    def test_settles_near_target_on_trace(self, small_trace):
        """End-to-end: autotuned filter holds the uplink near the stated
        target without any threshold configuration."""
        from repro.filters.base import AcceptAllFilter
        from repro.net.packet import Direction
        from repro.sim.replay import replay

        offered = replay(small_trace, AcceptAllFilter(), use_blocklist=False)
        offered_up = offered.passed.mean_mbps(Direction.OUTBOUND)
        target = offered_up * 0.5

        controller = DropController(
            policy=TargetRateController.mbps(target, gain=0.05),
            meter=SlidingWindowMeter(window=1.0),
        )
        result = replay(
            small_trace,
            BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                                   rotate_interval=5.0),
                drop_controller=controller,
            ),
            use_blocklist=True,
        )
        limited = result.passed.mean_mbps(Direction.OUTBOUND)
        # Open-loop replay cannot remove triggered uploads, so the bound
        # is loose — but the controller must clearly bite and must not
        # collapse the uplink to zero.
        assert limited < offered_up * 0.9
        assert limited > target * 0.1
