"""Property tests for bitmap-filter snapshot/restore round trips.

Hypothesis drives randomized configurations (non-default k/m/n, odd
rotation intervals) and randomized mark/lookup streams with the snapshot
taken mid-rotation, and checks the restored filter is *bit-identical*:
same membership verdicts, same rotation schedule, same bits, and — at
the packet level — the same fractional-P_d drop decisions (RNG state
travels with the snapshot).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig  # noqa: E402
from repro.core.dropper import StaticDropPolicy  # noqa: E402
from repro.filters.base import Verdict  # noqa: E402
from repro.filters.bitmap import BitmapPacketFilter  # noqa: E402
from repro.filters.policy import DropController  # noqa: E402

from tests.conftest import in_packet, out_packet, tcp_pair  # noqa: E402


configs = st.builds(
    BitmapFilterConfig,
    size=st.sampled_from([2 ** 8, 2 ** 10, 2 ** 12]),
    vectors=st.integers(min_value=2, max_value=6),
    hashes=st.integers(min_value=1, max_value=4),
    rotate_interval=st.floats(min_value=0.5, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)

# One event: (is_mark, source port, time step).  Time steps accumulate,
# so streams are timestamp-ordered; steps up to 4s cross rotation
# boundaries for every interval the config strategy can produce.
events = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=1024, max_value=1024 + 50),
        st.floats(min_value=0.0, max_value=4.0),
    ),
    min_size=1,
    max_size=60,
)


def timeline(event_list):
    """Materialize (is_mark, pair, timestamp) with cumulative clocks."""
    now = 0.0
    out = []
    for is_mark, sport, step in event_list:
        now += step
        out.append((is_mark, tcp_pair(sport=sport), now))
    return out


def apply_events(filt, stream):
    """Run events through a core filter; returns the lookup outcomes."""
    verdicts = []
    for is_mark, pair, now in stream:
        filt.advance_to(now)
        if is_mark:
            filt.mark_outbound(pair)
        else:
            verdicts.append(filt.lookup_inbound(pair.inverse))
    return verdicts


class TestCoreRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(config=configs, prefix=events, suffix=events)
    def test_restore_midstream_is_bit_identical(self, config, prefix, suffix):
        original = BitmapFilter(config)
        apply_events(original, timeline(prefix))

        # clock="resume": the continuation runs on the same trace clock,
        # so the restored filter must keep the original's absolute
        # rotation schedule (the service plane's warm-restart mode).
        restored = BitmapFilter.restore(original.snapshot(), clock="resume")

        assert restored.idx == original.idx
        assert [v.to_bytes() for v in restored.vectors] == [
            v.to_bytes() for v in original.vectors
        ]

        # The suffix continues on the prefix's clock: rotations fire at
        # the same instants and every lookup answers the same way.
        last = timeline(prefix)[-1][2] if prefix else 0.0
        continuation = [
            (is_mark, pair, last + now)
            for is_mark, pair, now in timeline(suffix)
        ]
        assert apply_events(restored, continuation) == apply_events(
            original, continuation
        )
        assert restored.idx == original.idx
        assert restored._next_rotation == original._next_rotation

    @settings(max_examples=30, deadline=None)
    @given(config=configs, prefix=events)
    def test_snapshot_of_restored_filter_is_stable(self, config, prefix):
        original = BitmapFilter(config)
        apply_events(original, timeline(prefix))
        first = original.snapshot()
        second = BitmapFilter.restore(first, clock="resume").snapshot()
        # A restored filter re-derives its absolute rotation anchor
        # lazily on the first advance, so ``next_rotation`` may read None
        # until then; everything else — bits, phase, RNG, counters —
        # must round-trip unchanged.
        first.pop("next_rotation")
        second.pop("next_rotation")
        assert first == second

    @settings(max_examples=30, deadline=None)
    @given(config=configs, prefix=events)
    def test_membership_survives_restore(self, config, prefix):
        original = BitmapFilter(config)
        stream = timeline(prefix)
        apply_events(original, stream)
        restored = BitmapFilter.restore(original.snapshot())
        for is_mark, pair, _ in stream:
            assert restored.lookup_inbound(pair.inverse) == \
                original.lookup_inbound(pair.inverse)


packet_events = st.lists(
    st.tuples(
        st.booleans(),                                   # outbound?
        st.integers(min_value=1024, max_value=1024 + 30),  # sport
        st.floats(min_value=0.0, max_value=2.0),           # time step
        st.integers(min_value=40, max_value=1500),         # size
    ),
    min_size=1,
    max_size=50,
)


def packets_from(event_list, start=0.0):
    now = start
    packets = []
    for outbound, sport, step, size in event_list:
        now += step
        if outbound:
            packets.append(
                out_packet(tcp_pair(sport=sport), t=now, size=size)
            )
        else:
            packets.append(
                in_packet(tcp_pair(sport=sport).inverse, t=now, size=size)
            )
    return packets, now


class TestPacketFilterRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 16),
        prefix=packet_events,
        suffix=packet_events,
    )
    def test_fractional_drop_verdicts_survive_restore(
        self, seed, prefix, suffix
    ):
        """With P_d strictly between 0 and 1 every inbound miss rolls the
        RNG; the restored filter must continue the identical roll
        sequence, so the suffix verdicts match decision for decision."""

        def build():
            return BitmapPacketFilter(
                BitmapFilterConfig(
                    size=2 ** 10, vectors=3, hashes=2,
                    rotate_interval=1.5, seed=seed,
                ),
                drop_controller=DropController(StaticDropPolicy(0.5)),
            )

        original = build()
        head, last = packets_from(prefix)
        for packet in head:
            original.decide(packet)

        restored = BitmapPacketFilter.restore(
            original.snapshot(), clock="resume"
        )

        tail, _ = packets_from(suffix, start=last)
        original_verdicts = [original.decide(p) for p in tail]
        restored_verdicts = [restored.decide(p) for p in tail]
        assert original_verdicts == restored_verdicts
        assert all(isinstance(v, Verdict) for v in original_verdicts)
