"""Tests for bitmap-filter state persistence (snapshot/restore)."""

import pickle

import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, FieldMode

from tests.conftest import tcp_pair


def filled_filter():
    filt = BitmapFilter(
        BitmapFilterConfig(size=2 ** 12, vectors=4, hashes=3, rotate_interval=5.0,
                           seed=9)
    )
    filt.advance_to(0.0)
    for i in range(20):
        filt.mark_outbound(tcp_pair(sport=2000 + i))
    filt.advance_to(7.0)  # one rotation: idx = 1
    return filt


class TestSnapshotRestore:
    def test_roundtrip_preserves_membership(self):
        original = filled_filter()
        restored = BitmapFilter.restore(original.snapshot())
        for i in range(20):
            assert restored.lookup_inbound(tcp_pair(sport=2000 + i).inverse)
        assert not restored.lookup_inbound(tcp_pair(sport=9999).inverse)

    def test_roundtrip_preserves_rotation_phase(self):
        original = filled_filter()
        restored = BitmapFilter.restore(original.snapshot())
        assert restored.idx == original.idx
        # Resuming on the same clock rebases onto the identical schedule:
        # the original's next rotation is at t=10, and the restored filter's
        # first advance_to re-derives it from the stored phase.
        assert restored.advance_to(8.0) == original.advance_to(8.0) == 0
        assert restored._next_rotation == original._next_rotation == 10.0
        # Future rotations behave identically.
        assert restored.advance_to(50.0) == original.advance_to(50.0)
        assert restored.idx == original.idx

    def test_restore_into_restarted_clock_keeps_rotating(self):
        # Regression: the snapshot used to persist the absolute next-rotation
        # time, so restoring state taken at t≈100000 into a replay whose
        # clock restarts near 0 suppressed rotation for the whole gap.
        filt = BitmapFilter(
            BitmapFilterConfig(size=2 ** 12, vectors=4, hashes=3,
                               rotate_interval=5.0, seed=9)
        )
        filt.advance_to(100_000.0)
        filt.mark_outbound(tcp_pair(sport=1))
        filt.advance_to(100_007.0)
        restored = BitmapFilter.restore(filt.snapshot())
        restored.advance_to(0.1)  # new trace clock starting near zero
        assert restored.advance_to(20.0) >= 3  # rotations resume within Δt

    def test_restore_then_snapshot_keeps_phase(self):
        # A snapshot taken before the restored filter sees any traffic must
        # not lose the rotation phase.
        original = filled_filter()
        rehydrated = BitmapFilter.restore(
            BitmapFilter.restore(original.snapshot()).snapshot()
        )
        assert rehydrated.advance_to(8.0) == 0
        assert rehydrated._next_rotation == 10.0

    def test_roundtrip_preserves_config(self):
        original = BitmapFilter(
            BitmapFilterConfig(size=2 ** 10, vectors=3, hashes=2,
                               rotate_interval=2.0,
                               field_mode=FieldMode.HOLE_PUNCHING, seed=4)
        )
        restored = BitmapFilter.restore(original.snapshot())
        assert restored.config == original.config

    def test_snapshot_is_picklable(self):
        snapshot = filled_filter().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        restored = BitmapFilter.restore(clone)
        assert restored.lookup_inbound(tcp_pair(sport=2000).inverse)

    def test_restore_validates_vector_count(self):
        snapshot = filled_filter().snapshot()
        snapshot["bits"] = snapshot["bits"][:-1]
        with pytest.raises(ValueError):
            BitmapFilter.restore(snapshot)

    def test_restore_validates_index(self):
        snapshot = filled_filter().snapshot()
        snapshot["idx"] = 99
        with pytest.raises(ValueError):
            BitmapFilter.restore(snapshot)

    def test_hash_seed_travels_with_snapshot(self):
        # Bits restored under the original seed's hash family must match;
        # a filter built fresh with another seed would not see them.
        original = filled_filter()
        restored = BitmapFilter.restore(original.snapshot())
        assert restored.family.seed == original.family.seed
