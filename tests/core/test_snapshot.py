"""Tests for bitmap-filter state persistence (snapshot/restore)."""

import pickle

import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, FieldMode

from tests.conftest import tcp_pair


def filled_filter():
    filt = BitmapFilter(
        BitmapFilterConfig(size=2 ** 12, vectors=4, hashes=3, rotate_interval=5.0,
                           seed=9)
    )
    filt.advance_to(0.0)
    for i in range(20):
        filt.mark_outbound(tcp_pair(sport=2000 + i))
    filt.advance_to(7.0)  # one rotation: idx = 1
    return filt


class TestSnapshotRestore:
    def test_roundtrip_preserves_membership(self):
        original = filled_filter()
        restored = BitmapFilter.restore(original.snapshot())
        for i in range(20):
            assert restored.lookup_inbound(tcp_pair(sport=2000 + i).inverse)
        assert not restored.lookup_inbound(tcp_pair(sport=9999).inverse)

    def test_roundtrip_preserves_rotation_phase(self):
        original = filled_filter()
        restored = BitmapFilter.restore(original.snapshot())
        assert restored.idx == original.idx
        assert restored._next_rotation == original._next_rotation
        # Future rotations behave identically.
        assert restored.advance_to(50.0) == original.advance_to(50.0)
        assert restored.idx == original.idx

    def test_roundtrip_preserves_config(self):
        original = BitmapFilter(
            BitmapFilterConfig(size=2 ** 10, vectors=3, hashes=2,
                               rotate_interval=2.0,
                               field_mode=FieldMode.HOLE_PUNCHING, seed=4)
        )
        restored = BitmapFilter.restore(original.snapshot())
        assert restored.config == original.config

    def test_snapshot_is_picklable(self):
        snapshot = filled_filter().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        restored = BitmapFilter.restore(clone)
        assert restored.lookup_inbound(tcp_pair(sport=2000).inverse)

    def test_restore_validates_vector_count(self):
        snapshot = filled_filter().snapshot()
        snapshot["bits"] = snapshot["bits"][:-1]
        with pytest.raises(ValueError):
            BitmapFilter.restore(snapshot)

    def test_restore_validates_index(self):
        snapshot = filled_filter().snapshot()
        snapshot["idx"] = 99
        with pytest.raises(ValueError):
            BitmapFilter.restore(snapshot)

    def test_hash_seed_travels_with_snapshot(self):
        # Bits restored under the original seed's hash family must match;
        # a filter built fresh with another seed would not see them.
        original = filled_filter()
        restored = BitmapFilter.restore(original.snapshot())
        assert restored.family.seed == original.family.seed
