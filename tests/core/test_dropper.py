"""Tests for drop-probability policies (Equation 1 and variants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dropper import RedDropPolicy, StaticDropPolicy, SteppedDropPolicy


class TestRedDropPolicy:
    """Equation 1 with the paper's L=50 Mbps, H=100 Mbps (as raw units)."""

    def test_zero_below_low(self):
        policy = RedDropPolicy(low=50.0, high=100.0)
        assert policy.probability(0.0) == 0.0
        assert policy.probability(49.9) == 0.0

    def test_zero_at_low(self):
        assert RedDropPolicy(50.0, 100.0).probability(50.0) == 0.0

    def test_one_at_high(self):
        assert RedDropPolicy(50.0, 100.0).probability(100.0) == 1.0

    def test_one_above_high(self):
        assert RedDropPolicy(50.0, 100.0).probability(250.0) == 1.0

    def test_linear_in_between(self):
        policy = RedDropPolicy(50.0, 100.0)
        assert policy.probability(75.0) == pytest.approx(0.5)
        assert policy.probability(60.0) == pytest.approx(0.2)
        assert policy.probability(90.0) == pytest.approx(0.8)

    def test_monotone(self):
        policy = RedDropPolicy(10.0, 20.0)
        values = [policy.probability(b) for b in range(0, 31)]
        assert values == sorted(values)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            RedDropPolicy(100.0, 50.0)
        with pytest.raises(ValueError):
            RedDropPolicy(50.0, 50.0)

    def test_rejects_negative_low(self):
        with pytest.raises(ValueError):
            RedDropPolicy(-1.0, 10.0)

    def test_zero_low_allowed(self):
        policy = RedDropPolicy(0.0, 10.0)
        assert policy.probability(5.0) == pytest.approx(0.5)


class TestStaticDropPolicy:
    def test_constant(self):
        policy = StaticDropPolicy(0.4)
        for throughput in (0.0, 1e9):
            assert policy.probability(throughput) == 0.4

    def test_figure8_configuration(self):
        # "drop all inbound packets without states"
        assert StaticDropPolicy(1.0).probability(0.0) == 1.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            StaticDropPolicy(-0.1)
        with pytest.raises(ValueError):
            StaticDropPolicy(1.1)


class TestSteppedDropPolicy:
    def test_below_first_step(self):
        policy = SteppedDropPolicy([(10.0, 0.3), (20.0, 0.9)])
        assert policy.probability(5.0) == 0.0

    def test_step_values(self):
        policy = SteppedDropPolicy([(10.0, 0.3), (20.0, 0.9)])
        assert policy.probability(10.0) == 0.3
        assert policy.probability(15.0) == 0.3
        assert policy.probability(20.0) == 0.9
        assert policy.probability(1000.0) == 0.9

    def test_requires_sorted_steps(self):
        with pytest.raises(ValueError):
            SteppedDropPolicy([(20.0, 0.9), (10.0, 0.3)])

    def test_rejects_duplicate_thresholds(self):
        """Regression: equal thresholds are ambiguous (which P_d applies at
        exactly that throughput?) and used to slip through the tuple-sort
        check when the probabilities happened to be ascending."""
        with pytest.raises(ValueError, match="strictly increasing"):
            SteppedDropPolicy([(10.0, 0.2), (10.0, 0.9)])

    def test_duplicate_rejection_ignores_probability_order(self):
        """Regression: the old ``sorted(steps) != steps`` check tie-broke on
        the probability, so [(10, .9), (10, .2)] raised while
        [(10, .2), (10, .9)] passed.  Both orderings must fail."""
        for steps in ([(10.0, 0.9), (10.0, 0.2)], [(10.0, 0.2), (10.0, 0.9)],
                      [(0.0, 0.1), (10.0, 0.5), (10.0, 0.5)]):
            with pytest.raises(ValueError, match="strictly increasing"):
                SteppedDropPolicy(steps)

    def test_strictly_increasing_steps_accepted(self):
        policy = SteppedDropPolicy([(0.0, 0.1), (10.0, 0.5), (20.0, 1.0)])
        assert policy.probability(10.0) == 0.5

    def test_requires_steps(self):
        with pytest.raises(ValueError):
            SteppedDropPolicy([])

    def test_validates_probabilities(self):
        with pytest.raises(ValueError):
            SteppedDropPolicy([(10.0, 1.5)])

    def test_validates_thresholds(self):
        with pytest.raises(ValueError):
            SteppedDropPolicy([(-5.0, 0.5)])


@given(
    low=st.floats(min_value=0.0, max_value=1e9),
    span=st.floats(min_value=1e-6, max_value=1e9),
    throughput=st.floats(min_value=0.0, max_value=2e9),
)
@settings(max_examples=300)
def test_red_probability_always_in_unit_interval(low, span, throughput):
    policy = RedDropPolicy(low, low + span)
    assert 0.0 <= policy.probability(throughput) <= 1.0
