"""Smoke-run every example script — the documentation must execute.

Each example runs as a subprocess with trimmed-down inputs where the
script accepts them; a failure here means the README's promises broke.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def run_example(path, args=(), timeout=240):
    return subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship seven


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(path, tmp_path):
    args = []
    if path.name == "trace_analysis.py":
        args = [str(tmp_path / "example_trace.pcap")]
    result = run_example(path, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_quickstart_shows_both_verdicts():
    result = run_example(
        pathlib.Path(__file__).parent.parent / "examples" / "quickstart.py"
    )
    assert "pass" in result.stdout
    assert "drop" in result.stdout

def test_capacity_planning_accepts_arguments():
    result = run_example(
        pathlib.Path(__file__).parent.parent / "examples" / "capacity_planning.py",
        args=["50000", "0.01"],
    )
    assert result.returncode == 0
    assert "50,000" in result.stdout
