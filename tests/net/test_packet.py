"""Tests for packets, socket pairs and direction classification."""

import pytest

from repro.net.headers import TCPFlags
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP, parse_ipv4
from repro.net.packet import Direction, Packet, SocketPair, classify_direction

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR, tcp_pair


class TestSocketPair:
    def test_inverse(self):
        pair = SocketPair(IPPROTO_TCP, 1, 2, 3, 4)
        assert pair.inverse == SocketPair(IPPROTO_TCP, 3, 4, 1, 2)

    def test_inverse_involution(self):
        pair = tcp_pair()
        assert pair.inverse.inverse == pair

    def test_canonical_is_direction_independent(self):
        pair = tcp_pair()
        assert pair.canonical == pair.inverse.canonical

    def test_canonical_is_one_of_the_two(self):
        pair = tcp_pair()
        assert pair.canonical in (pair, pair.inverse)

    def test_protocol_helpers(self):
        assert SocketPair(IPPROTO_TCP, 1, 2, 3, 4).is_tcp
        assert SocketPair(IPPROTO_UDP, 1, 2, 3, 4).is_udp
        assert not SocketPair(IPPROTO_UDP, 1, 2, 3, 4).is_tcp

    def test_describe(self):
        pair = SocketPair(IPPROTO_TCP, parse_ipv4("1.2.3.4"), 5, parse_ipv4("6.7.8.9"), 10)
        assert pair.describe() == "tcp 1.2.3.4:5 -> 6.7.8.9:10"

    def test_hashable_and_equal(self):
        assert tcp_pair() == tcp_pair()
        assert hash(tcp_pair()) == hash(tcp_pair())
        assert len({tcp_pair(), tcp_pair().inverse}) == 2


class TestPacket:
    def test_flags_syn(self):
        packet = Packet(0.0, tcp_pair(), 40, flags=TCPFlags.SYN)
        assert packet.is_syn
        assert not packet.is_synack
        assert not packet.is_fin

    def test_synack_is_not_initiation(self):
        packet = Packet(0.0, tcp_pair(), 40, flags=TCPFlags.SYN | TCPFlags.ACK)
        assert not packet.is_syn
        assert packet.is_synack

    def test_fin_and_rst(self):
        assert Packet(0.0, tcp_pair(), 40, flags=TCPFlags.FIN | TCPFlags.ACK).is_fin
        assert Packet(0.0, tcp_pair(), 40, flags=TCPFlags.RST).is_rst

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(0.0, tcp_pair(), -1)

    def test_protocol_shortcut(self):
        assert Packet(0.0, tcp_pair(), 40).protocol == IPPROTO_TCP

    def test_direction_default_none(self):
        assert Packet(0.0, tcp_pair(), 40).direction is None


class TestDirectionClassification:
    NET = parse_ipv4("10.1.0.0")

    def test_outbound_from_client(self):
        pair = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 1, REMOTE_ADDR, 2)
        assert classify_direction(pair, self.NET, 16) is Direction.OUTBOUND

    def test_inbound_from_remote(self):
        pair = SocketPair(IPPROTO_TCP, REMOTE_ADDR, 2, CLIENT_ADDR, 1)
        assert classify_direction(pair, self.NET, 16) is Direction.INBOUND

    def test_opposite(self):
        assert Direction.OUTBOUND.opposite is Direction.INBOUND
        assert Direction.INBOUND.opposite is Direction.OUTBOUND
