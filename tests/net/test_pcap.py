"""Tests for the pcap reader/writer."""

import io
import struct

import pytest

from repro.net.headers import encode_packet
from repro.net.pcap import (
    LINKTYPE_EN10MB,
    LINKTYPE_RAW,
    PcapError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    iter_pcap,
    read_pcap,
    write_pcap,
)

from tests.conftest import tcp_pair


def roundtrip(records, **writer_kwargs):
    buffer = io.BytesIO()
    writer = PcapWriter(buffer, **writer_kwargs)
    for timestamp, data in records:
        writer.write(timestamp, data)
    buffer.seek(0)
    return list(PcapReader(buffer))


class TestRoundtrip:
    def test_single_record(self):
        data = encode_packet(tcp_pair(), payload=b"hello")
        [record] = roundtrip([(1.5, data)])
        assert record.data == data
        assert record.timestamp == pytest.approx(1.5, abs=1e-6)
        assert record.orig_len == len(data)

    def test_many_records_ordered(self):
        data = encode_packet(tcp_pair())
        records = roundtrip([(float(i), data) for i in range(50)])
        assert len(records) == 50
        assert [record.timestamp for record in records] == [float(i) for i in range(50)]

    def test_microsecond_precision(self):
        data = b"x" * 10
        [record] = roundtrip([(123.456789, data)])
        assert record.timestamp == pytest.approx(123.456789, abs=1e-6)

    def test_timestamp_near_second_boundary(self):
        [record] = roundtrip([(1.9999999, b"x")])
        assert record.timestamp == pytest.approx(2.0, abs=1e-5)

    def test_snaplen_truncates_but_preserves_orig_len(self):
        data = encode_packet(tcp_pair(), payload=b"y" * 100)
        [record] = roundtrip([(0.0, data)], snaplen=64)
        assert len(record.data) == 64
        assert record.orig_len == len(data)

    def test_empty_file(self):
        assert roundtrip([]) == []


class TestFileHelpers:
    def test_write_and_read_path(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        data = encode_packet(tcp_pair())
        count = write_pcap(path, [(0.5, data), (1.0, data)])
        assert count == 2
        records = read_pcap(path)
        assert len(records) == 2
        assert records[0].data == data

    def test_write_pcap_records(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        write_pcap(path, [PcapRecord(0.1, 99, b"abc")])
        [record] = read_pcap(path)
        assert record.orig_len == 99


class TestIterPcap:
    def test_matches_read_pcap(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        data = encode_packet(tcp_pair(), payload=b"stream")
        write_pcap(path, [(float(i) / 4, data) for i in range(20)])
        assert list(iter_pcap(path)) == read_pcap(path)

    def test_lazy_one_record_at_a_time(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        data = encode_packet(tcp_pair())
        write_pcap(path, [(0.0, data), (1.0, data), (2.0, data)])
        stream = iter_pcap(path)
        first = next(stream)
        assert first.timestamp == pytest.approx(0.0, abs=1e-6)
        stream.close()  # abandoning mid-stream must not leak the file

    def test_empty_capture(self, tmp_path):
        path = str(tmp_path / "empty.pcap")
        write_pcap(path, [])
        assert list(iter_pcap(path)) == []


class TestTableIngest:
    """Streaming pcap -> PacketTable (never holds the capture twice)."""

    NETWORK = 0x0A010000  # 10.1.0.0/16: tcp_pair's client side is inside

    def write_trace(self, tmp_path, count=12, payload=b"p2p!"):
        path = str(tmp_path / "trace.pcap")
        data = encode_packet(tcp_pair(), payload=payload)
        reverse = encode_packet(tcp_pair().inverse, payload=payload)
        records = []
        for index in range(count):
            records.append((float(index), data if index % 2 == 0 else reverse))
        write_pcap(path, records)
        return path

    def test_round_trip_and_direction(self, tmp_path):
        from repro.net.packet import Direction
        from repro.net.table import PacketTable

        path = self.write_trace(tmp_path)
        table = PacketTable.from_pcap(path, self.NETWORK, 16)
        assert len(table) == 12
        for position, packet in enumerate(table.to_packets()):
            expected = (Direction.OUTBOUND if position % 2 == 0
                        else Direction.INBOUND)
            assert packet.direction is expected
            assert packet.timestamp == pytest.approx(float(position), abs=1e-6)

    def test_matches_object_loader(self, tmp_path):
        """Identical fields to the decode-to-Packet-objects path."""
        from repro.net.headers import decode_packet
        from repro.net.inet import in_network
        from repro.net.table import PacketTable

        path = self.write_trace(tmp_path)
        table = PacketTable.from_pcap(path, self.NETWORK, 16)
        for record, packet in zip(read_pcap(path), table.to_packets()):
            reference = decode_packet(record.data, record.timestamp)
            assert packet.pair == reference.pair
            assert packet.size == reference.size
            assert packet.flags == reference.flags
            assert packet.payload == reference.payload
            assert (packet.direction.name == "OUTBOUND") == in_network(
                reference.pair.src_addr, self.NETWORK, 16
            )

    def test_payload_limit(self, tmp_path):
        from repro.net.table import PacketTable

        path = self.write_trace(tmp_path, payload=b"long-payload-here")
        table = PacketTable.from_pcap(path, self.NETWORK, 16, payload_limit=0)
        assert all(payload == b"" for payload in table.payloads)

    def test_undecodable_records_skipped(self, tmp_path):
        from repro.net.table import PacketTable

        path = str(tmp_path / "mixed.pcap")
        good = encode_packet(tcp_pair())
        write_pcap(path, [(0.0, good), (1.0, b"\x00\x01junk"), (2.0, good)])
        table = PacketTable.from_pcap(path, self.NETWORK, 16)
        assert len(table) == 2


class TestMalformed:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.0, b"0123456789")
        truncated = io.BytesIO(buffer.getvalue()[:-5])
        with pytest.raises(PcapError):
            list(PcapReader(truncated))

    def test_bad_snaplen(self):
        with pytest.raises(ValueError):
            PcapWriter(io.BytesIO(), snaplen=0)


class TestLinkTypes:
    def test_linktype_recorded(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, linktype=LINKTYPE_RAW)
        buffer.seek(0)
        assert PcapReader(buffer).linktype == LINKTYPE_RAW

    def test_ethernet_unwrapped(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, linktype=LINKTYPE_EN10MB)
        ip_packet = encode_packet(tcp_pair())
        ethernet = b"\xaa" * 12 + b"\x08\x00" + ip_packet
        writer.write(0.0, ethernet)
        buffer.seek(0)
        [record] = list(PcapReader(buffer))
        assert record.data == ip_packet

    def test_swapped_magic_readable(self):
        # Build a minimal big-endian pcap by hand.
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, LINKTYPE_RAW)
        body = struct.pack(">IIII", 1, 500000, 3, 3) + b"abc"
        records = list(PcapReader(io.BytesIO(header + body)))
        assert records[0].data == b"abc"
        assert records[0].timestamp == pytest.approx(1.5)
