"""Tests for connection tracking (flow records and the table)."""

import pytest

from repro.net.flows import ConnectionTable, TCPState
from repro.net.headers import TCPFlags
from repro.net.packet import Direction

from tests.conftest import in_packet, out_packet, tcp_pair, udp_pair


def syn(t=0.0, pair=None):
    return out_packet(pair=pair or tcp_pair(), t=t, flags=TCPFlags.SYN)


def synack(t=0.05, pair=None):
    return in_packet(pair=(pair or tcp_pair()).inverse, t=t,
                     flags=TCPFlags.SYN | TCPFlags.ACK)


def fin(t=1.0, pair=None):
    return out_packet(pair=pair or tcp_pair(), t=t, flags=TCPFlags.FIN | TCPFlags.ACK)


class TestFlowLifecycle:
    def test_syn_starts_flow(self):
        table = ConnectionTable()
        record = table.observe(syn())
        assert record.state is TCPState.SYN_SEEN
        assert record.syn_time == 0.0
        assert record.saw_syn

    def test_synack_establishes(self):
        table = ConnectionTable()
        table.observe(syn())
        record = table.observe(synack())
        assert record.state is TCPState.ESTABLISHED

    def test_fin_closes_and_sets_lifetime(self):
        table = ConnectionTable()
        table.observe(syn(t=0.0))
        table.observe(synack(t=0.05))
        record = table.observe(fin(t=10.0))
        assert record.state is TCPState.CLOSED
        assert record.lifetime == pytest.approx(10.0)

    def test_rst_closes(self):
        table = ConnectionTable()
        table.observe(syn(t=0.0))
        record = table.observe(out_packet(t=3.0, flags=TCPFlags.RST))
        assert record.state is TCPState.CLOSED
        assert record.lifetime == pytest.approx(3.0)

    def test_both_directions_one_flow(self):
        table = ConnectionTable()
        table.observe(syn())
        table.observe(synack())
        table.observe(out_packet(t=0.1, size=200))
        table.observe(in_packet(t=0.2, size=300))
        assert len(table) == 1
        record = next(iter(table.active.values()))
        assert record.packets == 4
        assert record.packets_fwd == 2
        assert record.packets_rev == 2
        assert record.bytes_fwd == 300  # syn(100) + data(200)
        assert record.bytes_rev == 400

    def test_post_close_packets_attach_to_same_flow(self):
        # The FIN handshake tail must not create a phantom flow.
        table = ConnectionTable()
        table.observe(syn(t=0.0))
        table.observe(fin(t=5.0))
        table.observe(in_packet(t=5.05, flags=TCPFlags.FIN | TCPFlags.ACK))
        table.observe(out_packet(t=5.1, flags=TCPFlags.ACK))
        table.flush()
        assert len(table.finished) == 1

    def test_port_reuse_starts_new_flow(self):
        table = ConnectionTable()
        table.observe(syn(t=0.0))
        table.observe(fin(t=5.0))
        table.observe(syn(t=120.0))  # same five-tuple, fresh SYN
        table.flush()
        assert len(table.finished) == 2

    def test_direction_is_first_packet_direction(self):
        table = ConnectionTable()
        record = table.observe(in_packet(t=0.0, flags=TCPFlags.SYN))
        assert record.direction is Direction.INBOUND


class TestUDPFlows:
    def test_udp_lifetime_is_span(self):
        table = ConnectionTable()
        table.observe(out_packet(pair=udp_pair(), t=1.0))
        record = table.observe(in_packet(pair=udp_pair().inverse, t=3.5))
        assert record.lifetime == pytest.approx(2.5)

    def test_udp_idle_expiry(self):
        table = ConnectionTable(udp_timeout=10.0)
        table.observe(out_packet(pair=udp_pair(), t=0.0))
        table.expire_idle(100.0)
        assert len(table) == 0
        assert len(table.finished) == 1

    def test_udp_active_not_expired(self):
        table = ConnectionTable(udp_timeout=10.0)
        table.observe(out_packet(pair=udp_pair(), t=0.0))
        assert table.expire_idle(5.0) == 0
        assert len(table) == 1


class TestTableMechanics:
    def test_flush_moves_everything(self):
        table = ConnectionTable()
        table.observe(syn())
        table.observe(out_packet(pair=udp_pair()))
        table.flush()
        assert len(table) == 0
        assert table.total_flows == 2

    def test_lookup_by_either_orientation(self):
        table = ConnectionTable()
        table.observe(syn())
        assert table.lookup(tcp_pair()) is not None
        assert table.lookup(tcp_pair().inverse) is not None
        assert table.lookup(tcp_pair(sport=1)) is None

    def test_all_flows_iterates_finished_and_active(self):
        table = ConnectionTable()
        table.observe(syn(pair=tcp_pair(sport=1000)))
        table.observe(out_packet(pair=udp_pair(), t=0.0))
        table.observe(syn(pair=tcp_pair(sport=2000), t=1.0))
        flows = list(table.all_flows())
        assert len(flows) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionTable(udp_timeout=0)

    def test_tcp_lifetime_none_without_syn(self):
        table = ConnectionTable()
        record = table.observe(out_packet(t=0.0, flags=TCPFlags.ACK))
        assert record.lifetime is None
