"""Tests for IPv4 address helpers and checksums."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.inet import (
    format_ipv4,
    in_network,
    internet_checksum,
    ipv4_network,
    is_private,
    parse_ipv4,
    pseudo_header,
)


class TestAddressParsing:
    def test_parse_basic(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001

    def test_parse_extremes(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_format_basic(self):
        assert format_ipv4(0x0A000001) == "10.0.0.1"

    def test_roundtrip(self):
        for text in ("192.168.1.254", "1.2.3.4", "172.16.0.1"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_ipv4("10.0.1")

    def test_parse_rejects_octet_overflow(self):
        with pytest.raises(ValueError):
            parse_ipv4("10.0.0.256")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_ipv4("a.b.c.d")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(-1)
        with pytest.raises(ValueError):
            format_ipv4(2 ** 32)


class TestNetworks:
    def test_network_mask(self):
        assert ipv4_network(parse_ipv4("10.1.2.3"), 16) == parse_ipv4("10.1.0.0")

    def test_zero_prefix(self):
        assert ipv4_network(parse_ipv4("10.1.2.3"), 0) == 0

    def test_full_prefix(self):
        addr = parse_ipv4("10.1.2.3")
        assert ipv4_network(addr, 32) == addr

    def test_in_network(self):
        net = parse_ipv4("10.1.0.0")
        assert in_network(parse_ipv4("10.1.200.3"), net, 16)
        assert not in_network(parse_ipv4("10.2.0.3"), net, 16)

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            ipv4_network(0, 33)

    def test_private_ranges(self):
        assert is_private(parse_ipv4("10.5.5.5"))
        assert is_private(parse_ipv4("172.16.9.9"))
        assert is_private(parse_ipv4("192.168.0.10"))
        assert not is_private(parse_ipv4("8.8.8.8"))
        assert not is_private(parse_ipv4("172.32.0.1"))


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        # Word sum 0x2DDF0 folds to 0xDDF2; one's complement is 0x220D.
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_checksum_verifies_to_zero(self):
        # Embedding the checksum makes the total sum verify as 0.
        data = bytearray(b"\x45\x00\x00\x14\x00\x00\x00\x00\x40\x06\x00\x00" + b"\x0a" * 8)
        checksum = internet_checksum(bytes(data))
        struct.pack_into("!H", data, 10, checksum)
        assert internet_checksum(bytes(data)) == 0

    def test_pseudo_header_layout(self):
        header = pseudo_header(0x01020304, 0x05060708, 6, 20)
        assert len(header) == 12
        assert header[8] == 0  # zero byte
        assert header[9] == 6  # protocol


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=300)
def test_address_roundtrip_property(addr):
    assert parse_ipv4(format_ipv4(addr)) == addr


@given(st.binary(max_size=100))
@settings(max_examples=200)
def test_checksum_is_16_bit(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF
