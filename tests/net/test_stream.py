"""Tests for the length-prefixed packet framing (repro.net.stream)."""

import io
import socket
import struct
import threading

import pytest

from repro.net.stream import (
    MAGIC,
    WIRE_VERSION,
    FrameWriter,
    FramingError,
    MAX_FRAME_BYTES,
    TableEncoder,
    decode_table,
    encode_table,
    encode_table_json,
    read_frame,
    write_frame,
)
from repro.net.table import PacketTable
from repro.workload import TraceConfig, TraceGenerator

from tests.conftest import in_packet, out_packet

_HEADER_SIZE = struct.calcsize("!4sBBIIIII")


def sample_table():
    table = PacketTable()
    table.append_packet(out_packet(t=1.0, size=100, flags=0x02))
    table.append_packet(in_packet(t=1.2, size=60, flags=0x12, payload=b"\x01\x02"))
    table.append_packet(out_packet(t=2.5, size=1500))
    return table


class TestFraming:
    def test_roundtrip(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        write_frame(buffer, b"")
        write_frame(buffer, b"world")
        buffer.seek(0)
        assert read_frame(buffer) == b"hello"
        assert read_frame(buffer) == b""
        assert read_frame(buffer) == b"world"
        assert read_frame(buffer) is None  # clean EOF

    def test_truncated_payload(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        data = buffer.getvalue()[:-2]
        with pytest.raises(FramingError):
            read_frame(io.BytesIO(data))

    def test_truncated_header(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        data = buffer.getvalue()[:2]
        with pytest.raises(FramingError):
            read_frame(io.BytesIO(data))

    def test_oversize_length_rejected_without_allocating(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FramingError):
            read_frame(io.BytesIO(header))

    def test_oversize_write_rejected(self):
        class NullStream:
            def write(self, data):
                raise AssertionError("should not write")

        with pytest.raises(FramingError):
            write_frame(NullStream(), b"x" * (MAX_FRAME_BYTES + 1))


class TestTableCodec:
    def test_roundtrip_fields(self):
        table = sample_table()
        decoded = decode_table(encode_table(table))
        assert len(decoded) == len(table)
        assert list(decoded.timestamps) == list(table.timestamps)
        assert list(decoded.sizes) == list(table.sizes)
        assert list(decoded.flags) == list(table.flags)
        assert list(decoded.outbound) == list(table.outbound)
        for position in range(len(table)):
            assert decoded.pair(position) == table.pair(position)
        assert decoded.payloads[decoded.payload_ids[1]] == b"\x01\x02"

    def test_pool_sharing_keeps_pair_ids_stable(self):
        """Chunks decoded against one pool table intern flows once, so a
        flow keeps its pair_id across frames — the generator stream's
        contract, preserved over the wire."""
        generator = TraceGenerator(
            TraceConfig(duration=6.0, connection_rate=5.0, seed=3)
        )
        chunks = list(generator.iter_tables(64))
        pool = PacketTable()
        decoded = [
            decode_table(encode_table(chunk), pool=pool) for chunk in chunks
        ]
        seen = {}
        for chunk in decoded:
            for position in range(len(chunk)):
                pair = chunk.pair(position)
                pair_id = chunk.pair_ids[position]
                if pair in seen:
                    assert seen[pair] == pair_id
                else:
                    seen[pair] = pair_id

    def test_generator_chunk_roundtrip_packets(self):
        generator = TraceGenerator(
            TraceConfig(duration=4.0, connection_rate=4.0, seed=5)
        )
        table = next(iter(generator.iter_tables(256)))
        decoded = decode_table(encode_table(table))

        def rows(packets):
            return [
                (p.timestamp, p.pair, p.size, p.flags, p.payload, p.direction)
                for p in packets
            ]

        assert rows(decoded.to_packets()) == rows(table.to_packets())

    def test_flushes_buffered_stream_per_frame(self):
        """A frame must reach the peer when written, not when the feeder
        closes — live services read a buffered ``makefile`` stream."""
        left, right = socket.socketpair()
        try:
            writer = left.makefile("wb")  # buffered: no flush, no bytes
            write_frame(writer, encode_table(sample_table()))
            right.settimeout(2.0)
            reader = right.makefile("rb")
            payload = read_frame(reader)  # writer is still open
            assert payload is not None
            assert len(decode_table(payload)) == 3
        finally:
            left.close()
            right.close()


class TestBinaryCodec:
    def stream_chunks(self, seed=3, duration=6.0, chunk_size=64):
        generator = TraceGenerator(
            TraceConfig(duration=duration, connection_rate=5.0, seed=seed)
        )
        return list(generator.iter_tables(chunk_size))

    def test_delta_stream_keeps_pair_ids_bit_identical(self):
        """A TableEncoder stream decoded against one pool reproduces the
        source pair_ids exactly — no re-interning on the lockstep path."""
        chunks = self.stream_chunks()
        encoder = TableEncoder()
        pool = PacketTable()
        for chunk in chunks:
            decoded = decode_table(encoder.encode(chunk), pool=pool)
            assert list(decoded.pair_ids) == list(chunk.pair_ids)
            assert list(decoded.payload_ids) == list(chunk.payload_ids)
        assert pool.pairs == chunks[-1].pairs

    def test_delta_frames_ship_only_the_pool_tail(self):
        chunks = self.stream_chunks()
        encoder = TableEncoder()
        frames = [encoder.encode(chunk) for chunk in chunks]
        standalone = [encode_table(chunk) for chunk in chunks]
        # Later delta frames omit already-shipped pool entries, so they
        # are strictly smaller than their standalone encodings.
        assert len(frames[-1]) < len(standalone[-1])

    def test_json_binary_equivalence(self):
        """Property: both codecs decode every chunk to the same packets."""
        for chunk in self.stream_chunks(seed=11):
            via_json = decode_table(encode_table_json(chunk))
            via_binary = decode_table(encode_table(chunk))
            assert len(via_json) == len(via_binary) == len(chunk)
            for name in ("timestamps", "sizes", "flags", "outbound"):
                assert list(getattr(via_json, name)) == \
                    list(getattr(via_binary, name))
            for position in range(len(chunk)):
                assert via_json.pair(position) == via_binary.pair(position) \
                    == chunk.pair(position)
                assert (via_json.payloads[via_json.payload_ids[position]]
                        == via_binary.payloads[via_binary.payload_ids[position]])

    def test_standalone_frame_reinterns_into_populated_pool(self):
        """A full-pool frame from an independent feeder decodes against an
        already-populated receiver pool by re-interning, like JSON."""
        first, second = self.stream_chunks()[:2]
        pool = PacketTable()
        decoded_first = decode_table(encode_table(first), pool=pool)
        decoded_second = decode_table(encode_table(second), pool=pool)
        for source, decoded in ((first, decoded_first),
                                (second, decoded_second)):
            for position in range(len(source)):
                assert decoded.pair(position) == source.pair(position)
        # Shared flows interned once: both chunks' ids index one pool.
        assert decoded_second.pairs is pool.pairs

    def test_empty_payload_is_keepalive(self):
        assert len(decode_table(b"")) == 0
        pool = PacketTable()
        pool.append_packet(out_packet(t=1.0))
        chunk = decode_table(b"", pool=pool)
        assert len(chunk) == 0
        assert chunk.pairs is pool.pairs

    def test_delta_frame_without_pool_rejected(self):
        chunks = self.stream_chunks()
        encoder = TableEncoder()
        encoder.encode(chunks[0])
        delta = encoder.encode(chunks[1])
        with pytest.raises(FramingError, match="needs a pool"):
            decode_table(delta)

    def test_pool_desync_rejected(self):
        chunks = self.stream_chunks()
        encoder = TableEncoder()
        encoder.encode(chunks[0])
        delta = encoder.encode(chunks[1])
        # A pool that never saw frame 0 is neither lockstep nor standalone.
        with pytest.raises(FramingError, match="pool desync"):
            decode_table(delta, pool=PacketTable())

    def test_frame_writer_sends_deltas_and_keepalives(self):
        buffer = io.BytesIO()
        writer = FrameWriter(buffer)
        chunks = self.stream_chunks()
        for chunk in chunks:
            writer.send(chunk)
        writer.keepalive()
        assert writer.frames_sent == len(chunks) + 1
        buffer.seek(0)
        pool = PacketTable()
        received = []
        while (payload := read_frame(buffer)) is not None:
            chunk = decode_table(payload, pool=pool)
            if len(chunk):
                received.append(chunk)
        assert len(received) == len(chunks)
        for source, decoded in zip(chunks, received):
            assert list(decoded.pair_ids) == list(source.pair_ids)

    def test_frame_writer_json_mode(self):
        buffer = io.BytesIO()
        writer = FrameWriter(buffer, binary=False)
        writer.send(sample_table())
        buffer.seek(0)
        payload = read_frame(buffer)
        assert payload.startswith(b"[")
        assert len(decode_table(payload)) == 3


class TestCorruptFrames:
    """A corrupt or hostile payload raises FramingError, never worse."""

    def frame(self):
        return bytearray(encode_table(sample_table()))

    def test_unrecognized_first_byte(self):
        with pytest.raises(FramingError, match="unrecognized"):
            decode_table(b"\x00\x01\x02")

    def test_bad_magic(self):
        corrupt = self.frame()
        corrupt[1:4] = b"XXX"  # keeps the 0xAB sniff byte
        with pytest.raises(FramingError, match="bad magic"):
            decode_table(bytes(corrupt))

    def test_wrong_version(self):
        corrupt = self.frame()
        corrupt[4] = WIRE_VERSION + 1
        with pytest.raises(FramingError, match="unsupported wire version"):
            decode_table(bytes(corrupt))

    def test_reserved_flags(self):
        corrupt = self.frame()
        corrupt[5] = 0x80
        with pytest.raises(FramingError, match="reserved frame flags"):
            decode_table(bytes(corrupt))

    def test_truncated_header(self):
        with pytest.raises(FramingError, match="header truncated"):
            decode_table(bytes(self.frame()[:_HEADER_SIZE - 2]))

    def test_truncated_pair_delta(self):
        with pytest.raises(FramingError, match="pair delta truncated"):
            decode_table(bytes(self.frame()[:_HEADER_SIZE + 3]))

    def test_truncated_payload_delta(self):
        # sample_table interns 2 pairs (13 bytes each) and one payload;
        # cut inside the payload delta's length prefix.
        cut = _HEADER_SIZE + 2 * 13 + 2
        with pytest.raises(FramingError, match="payload delta truncated"):
            decode_table(bytes(self.frame()[:cut]))

    def test_column_length_mismatch(self):
        corrupt = self.frame()
        # Inflate the header's row count: the first column's byte length
        # no longer matches rows * itemsize.
        (rows,) = struct.unpack_from("!I", corrupt, _HEADER_SIZE - 4)
        struct.pack_into("!I", corrupt, _HEADER_SIZE - 4, rows + 1)
        with pytest.raises(FramingError, match="length mismatch"):
            decode_table(bytes(corrupt))

    def test_truncated_column(self):
        with pytest.raises(FramingError, match="truncated"):
            decode_table(bytes(self.frame()[:-5]))

    def test_trailing_bytes(self):
        with pytest.raises(FramingError, match="trailing bytes"):
            decode_table(bytes(self.frame()) + b"\x00")

    def test_pair_id_beyond_pool(self):
        corrupt = self.frame()
        # The pair_ids column is 5th of 6; its last entry sits just
        # before the final column's (prefix + rows*8) bytes.
        rows = 3
        pair_ids_last = len(corrupt) - (4 + rows * 8) - 8
        struct.pack_into("<q", corrupt, pair_ids_last, 99)
        with pytest.raises(FramingError, match="pair_ids column indexes"):
            decode_table(bytes(corrupt))

    def test_negative_size_rejected(self):
        table = PacketTable()
        table.append_packet(out_packet(t=1.0, size=100))
        corrupt = bytearray(encode_table(table))
        # One row: the column region is 6 prefixes (4 B each) + 37 data
        # bytes; the sizes value sits after timestamps' prefix+data and
        # its own prefix, i.e. 45 bytes from the end.
        struct.pack_into("<q", corrupt, len(corrupt) - 45, -5)
        with pytest.raises(FramingError, match="negative packet size"):
            decode_table(bytes(corrupt))

    def test_magic_constant_shape(self):
        payload = encode_table(sample_table())
        assert payload[:4] == MAGIC
        assert not MAGIC[:1].isascii() or MAGIC[0] == 0xAB
