"""Tests for the length-prefixed packet framing (repro.net.stream)."""

import io

import pytest

from repro.net.stream import (
    FramingError,
    MAX_FRAME_BYTES,
    decode_table,
    encode_table,
    read_frame,
    write_frame,
)
from repro.net.table import PacketTable
from repro.workload import TraceConfig, TraceGenerator

from tests.conftest import in_packet, out_packet


def sample_table():
    table = PacketTable()
    table.append_packet(out_packet(t=1.0, size=100, flags=0x02))
    table.append_packet(in_packet(t=1.2, size=60, flags=0x12, payload=b"\x01\x02"))
    table.append_packet(out_packet(t=2.5, size=1500))
    return table


class TestFraming:
    def test_roundtrip(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        write_frame(buffer, b"")
        write_frame(buffer, b"world")
        buffer.seek(0)
        assert read_frame(buffer) == b"hello"
        assert read_frame(buffer) == b""
        assert read_frame(buffer) == b"world"
        assert read_frame(buffer) is None  # clean EOF

    def test_truncated_payload(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        data = buffer.getvalue()[:-2]
        with pytest.raises(FramingError):
            read_frame(io.BytesIO(data))

    def test_truncated_header(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        data = buffer.getvalue()[:2]
        with pytest.raises(FramingError):
            read_frame(io.BytesIO(data))

    def test_oversize_length_rejected_without_allocating(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(FramingError):
            read_frame(io.BytesIO(header))

    def test_oversize_write_rejected(self):
        class NullStream:
            def write(self, data):
                raise AssertionError("should not write")

        with pytest.raises(FramingError):
            write_frame(NullStream(), b"x" * (MAX_FRAME_BYTES + 1))


class TestTableCodec:
    def test_roundtrip_fields(self):
        table = sample_table()
        decoded = decode_table(encode_table(table))
        assert len(decoded) == len(table)
        assert list(decoded.timestamps) == list(table.timestamps)
        assert list(decoded.sizes) == list(table.sizes)
        assert list(decoded.flags) == list(table.flags)
        assert list(decoded.outbound) == list(table.outbound)
        for position in range(len(table)):
            assert decoded.pair(position) == table.pair(position)
        assert decoded.payloads[decoded.payload_ids[1]] == b"\x01\x02"

    def test_pool_sharing_keeps_pair_ids_stable(self):
        """Chunks decoded against one pool table intern flows once, so a
        flow keeps its pair_id across frames — the generator stream's
        contract, preserved over the wire."""
        generator = TraceGenerator(
            TraceConfig(duration=6.0, connection_rate=5.0, seed=3)
        )
        chunks = list(generator.iter_tables(64))
        pool = PacketTable()
        decoded = [
            decode_table(encode_table(chunk), pool=pool) for chunk in chunks
        ]
        seen = {}
        for chunk in decoded:
            for position in range(len(chunk)):
                pair = chunk.pair(position)
                pair_id = chunk.pair_ids[position]
                if pair in seen:
                    assert seen[pair] == pair_id
                else:
                    seen[pair] = pair_id

    def test_generator_chunk_roundtrip_packets(self):
        generator = TraceGenerator(
            TraceConfig(duration=4.0, connection_rate=4.0, seed=5)
        )
        table = next(iter(generator.iter_tables(256)))
        decoded = decode_table(encode_table(table))

        def rows(packets):
            return [
                (p.timestamp, p.pair, p.size, p.flags, p.payload, p.direction)
                for p in packets
            ]

        assert rows(decoded.to_packets()) == rows(table.to_packets())
