"""Property tests for the columnar packet plane.

The :class:`~repro.net.table.PacketTable` contract: every field of every
packet round-trips *exactly* through the struct-of-arrays representation
— timestamps, five-tuples, sizes, flags, payloads and directions — and a
replay over a table is bit-identical to a replay over the equivalent
``List[Packet]``, in both STRICT and HOLE_PUNCHING field modes.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap_filter import BitmapFilterConfig, FieldMode
from repro.filters.bitmap import BitmapPacketFilter
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import Direction, Packet, SocketPair
from repro.net.table import PacketTable, as_table
from repro.sim.replay import replay

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

socket_pairs = st.builds(
    SocketPair,
    st.sampled_from([IPPROTO_TCP, IPPROTO_UDP]),
    st.integers(0, 2 ** 32 - 1),
    st.integers(0, 65535),
    st.integers(0, 2 ** 32 - 1),
    st.integers(0, 65535),
)

timestamps = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)
sizes = st.integers(0, 65535)
flag_values = st.integers(0, 2 ** 32 - 1)
payloads = st.binary(max_size=48)
directions = st.sampled_from([Direction.OUTBOUND, Direction.INBOUND])


def make_packet(timestamp, pair, size, flags, payload, direction):
    return Packet(timestamp, pair, size=size, flags=flags, payload=payload,
                  direction=direction)


packet_lists = st.lists(
    st.builds(make_packet, timestamps, socket_pairs, sizes, flag_values,
              payloads, directions),
    max_size=40,
)


def fields(packets):
    return [
        (p.timestamp, p.pair, p.size, p.flags, p.payload, p.direction)
        for p in packets
    ]


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @given(packet_lists)
    @settings(max_examples=200)
    def test_from_packets_to_packets_exact(self, packets):
        table = PacketTable.from_packets(packets)
        assert len(table) == len(packets)
        assert fields(table.to_packets()) == fields(packets)

    @given(packet_lists)
    @settings(max_examples=100)
    def test_append_packet_matches_from_packets(self, packets):
        table = PacketTable()
        for packet in packets:
            table.append_packet(packet)
        assert fields(table.to_packets()) == fields(packets)

    @given(packet_lists)
    @settings(max_examples=100)
    def test_views_read_every_field(self, packets):
        table = PacketTable.from_packets(packets)
        got = [
            (v.timestamp, v.pair, v.size, v.flags, v.payload, v.direction)
            for v in table.iter_views()
        ]
        assert got == fields(packets)

    @given(packet_lists, st.integers(0, 16))
    @settings(max_examples=100)
    def test_payload_limit_truncates(self, packets, limit):
        table = PacketTable.from_packets(packets, payload_limit=limit)
        for packet, back in zip(packets, table.to_packets()):
            assert back.payload == packet.payload[:limit]
            assert back.size == packet.size  # wire size is never touched

    @given(packet_lists)
    @settings(max_examples=100)
    def test_interning_pools(self, packets):
        table = PacketTable.from_packets(packets)
        assert table.payloads[0] == b""  # the empty payload is always id 0
        assert len(set(table.pairs)) == len(table.pairs)
        assert set(table.pairs) == {p.pair for p in packets}

    @given(packet_lists)
    @settings(max_examples=50)
    def test_pickle_round_trip(self, packets):
        table = PacketTable.from_packets(packets)
        clone = pickle.loads(pickle.dumps(table))
        assert fields(clone.to_packets()) == fields(packets)

    @given(packet_lists, st.integers(0, 40), st.integers(0, 40))
    @settings(max_examples=100)
    def test_slice_matches_list_slice(self, packets, start, stop):
        table = PacketTable.from_packets(packets)
        start = min(start, len(packets))
        stop = min(max(stop, start), len(packets))
        assert fields(table.slice(start, stop).to_packets()) == fields(
            packets[start:stop]
        )


class TestValidation:
    def test_direction_none_rejected_by_from_packets(self):
        stray = Packet(1.0, SocketPair(IPPROTO_TCP, 1, 2, 3, 4), size=40)
        assert stray.direction is None
        with pytest.raises(ValueError, match="direction"):
            PacketTable.from_packets([stray])

    def test_direction_none_rejected_by_append_packet(self):
        stray = Packet(1.0, SocketPair(IPPROTO_TCP, 1, 2, 3, 4), size=40)
        with pytest.raises(ValueError, match="direction"):
            PacketTable().append_packet(stray)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PacketTable().append_row(
                0.0, SocketPair(IPPROTO_TCP, 1, 2, 3, 4), -1, 0, b"", 1
            )

    def test_flags_out_of_range_rejected(self):
        pair = SocketPair(IPPROTO_TCP, 1, 2, 3, 4)
        with pytest.raises(ValueError):
            PacketTable().append_row(0.0, pair, 40, 1 << 32, b"", 1)
        with pytest.raises(ValueError):
            PacketTable().append_row(0.0, pair, 40, -1, b"", 1)

    def test_as_table_passes_tables_through(self):
        table = PacketTable()
        assert as_table(table) is table


# ---------------------------------------------------------------------------
# Cross-representation replay equivalence (incl. hole-punching field mode)
# ---------------------------------------------------------------------------


def replay_fingerprint(result):
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "filter_stats": router.filter.stats.as_dict(),
        "core_stats": router.filter.core.stats.as_dict(),
        "blocked": dict(router.blocklist._blocked),
        "suppressed": router.blocklist.suppressed_packets,
    }


@given(packet_lists, st.sampled_from([FieldMode.STRICT, FieldMode.HOLE_PUNCHING]))
@settings(max_examples=50, deadline=None)
def test_replay_equivalent_across_representations(packets, field_mode):
    packets = sorted(packets, key=lambda p: p.timestamp)

    def run(trace):
        flt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 12, vectors=3, hashes=2,
                               rotate_interval=5.0, field_mode=field_mode)
        )
        return replay_fingerprint(replay(trace, flt, use_blocklist=True))

    assert run(PacketTable.from_packets(packets)) == run(list(packets))


class TestColumnBuffers:
    """Zero-copy view tables: from_column_buffers over exported buffers."""

    def sample(self, rows=8):
        table = PacketTable()
        pair = SocketPair(IPPROTO_TCP, 0x0A010005, 4000, 0x5BADCAFE, 80)
        for i in range(rows):
            table.append_row(float(i), pair, 100 + i, 0x10,
                             b"x" * (i % 3), i % 2 == 0)
        return table

    def view_of(self, table):
        columns = {
            name: memoryview(bytes(view))
            for name, _, view in table.column_buffers()
        }
        return PacketTable.from_column_buffers(
            columns, table.pairs, table.payloads
        )

    def test_view_reproduces_every_column(self):
        table = self.sample()
        view = self.view_of(table)
        assert len(view) == len(table)
        for name, _ in PacketTable.COLUMNS:
            assert list(getattr(view, name)) == list(getattr(table, name))
        for position in range(len(table)):
            assert view.pair(position) == table.pair(position)

    def test_view_is_read_only(self):
        view = self.view_of(self.sample())
        with pytest.raises((TypeError, AttributeError, BufferError)):
            view.append_packet(self.sample().packet(0))

    def test_materialize_restores_mutability(self):
        table = self.sample()
        materialized = self.view_of(table).materialize()
        materialized.append_packet(table.packet(0))
        assert len(materialized) == len(table) + 1

    def test_view_pickles_by_materializing(self):
        view = self.view_of(self.sample())
        clone = pickle.loads(pickle.dumps(view))
        assert list(clone.timestamps) == list(view.timestamps)
        assert list(clone.pair_ids) == list(view.pair_ids)

    def test_missing_column_rejected(self):
        table = self.sample()
        columns = {
            name: memoryview(bytes(view))
            for name, _, view in table.column_buffers()
        }
        del columns["sizes"]
        with pytest.raises(ValueError, match="sizes"):
            PacketTable.from_column_buffers(
                columns, table.pairs, table.payloads
            )

    def test_ragged_columns_rejected(self):
        table = self.sample()
        columns = {
            name: memoryview(bytes(view))
            for name, _, view in table.column_buffers()
        }
        columns["flags"] = columns["flags"][:-4]
        with pytest.raises(ValueError):
            PacketTable.from_column_buffers(
                columns, table.pairs, table.payloads
            )
