"""Tests for wire-format encode/decode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.headers import (
    HeaderError,
    IPv4Header,
    TCPFlags,
    decode_packet,
    encode_packet,
)
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP, internet_checksum, parse_ipv4
from repro.net.packet import SocketPair

from tests.conftest import tcp_pair, udp_pair


class TestEncodeDecodeTCP:
    def test_roundtrip_pair(self):
        pair = tcp_pair()
        packet = decode_packet(encode_packet(pair, flags=TCPFlags.SYN))
        assert packet.pair == pair
        assert packet.is_syn

    def test_roundtrip_payload(self):
        data = encode_packet(tcp_pair(), payload=b"GET / HTTP/1.1\r\n")
        assert decode_packet(data).payload == b"GET / HTTP/1.1\r\n"

    def test_roundtrip_flags(self):
        for flags in (TCPFlags.SYN, TCPFlags.FIN | TCPFlags.ACK, TCPFlags.RST):
            packet = decode_packet(encode_packet(tcp_pair(), flags=flags))
            assert packet.flags == flags

    def test_wire_size(self):
        data = encode_packet(tcp_pair(), payload=b"x" * 10)
        assert len(data) == 20 + 20 + 10
        assert decode_packet(data).size == 50

    def test_pad_to(self):
        data = encode_packet(tcp_pair(), payload=b"abc", pad_to=100)
        packet = decode_packet(data)
        assert len(packet.payload) == 100
        assert packet.payload.startswith(b"abc")

    def test_ip_checksum_valid(self):
        data = encode_packet(tcp_pair())
        assert internet_checksum(data[:20]) == 0

    def test_checksum_verification_accepts_good(self):
        data = encode_packet(tcp_pair())
        decode_packet(data, verify_checksums=True)

    def test_checksum_verification_rejects_corrupt(self):
        data = bytearray(encode_packet(tcp_pair()))
        data[15] ^= 0xFF  # flip a bit in the destination address
        with pytest.raises(HeaderError):
            decode_packet(bytes(data), verify_checksums=True)

    def test_timestamp_passthrough(self):
        packet = decode_packet(encode_packet(tcp_pair()), timestamp=12.5)
        assert packet.timestamp == 12.5


class TestEncodeDecodeUDP:
    def test_roundtrip(self):
        pair = udp_pair()
        packet = decode_packet(encode_packet(pair, payload=b"query"))
        assert packet.pair == pair
        assert packet.payload == b"query"

    def test_udp_length_respected(self):
        data = encode_packet(udp_pair(), payload=b"abcdef")
        assert len(data) == 20 + 8 + 6

    def test_udp_no_flags(self):
        assert decode_packet(encode_packet(udp_pair())).flags == 0


class TestMalformedInput:
    def test_truncated_ip(self):
        with pytest.raises(HeaderError):
            decode_packet(b"\x45\x00\x00")

    def test_wrong_version(self):
        data = bytearray(encode_packet(tcp_pair()))
        data[0] = (6 << 4) | 5
        with pytest.raises(HeaderError):
            decode_packet(bytes(data))

    def test_bad_ihl(self):
        data = bytearray(encode_packet(tcp_pair()))
        data[0] = (4 << 4) | 2  # IHL below minimum
        with pytest.raises(HeaderError):
            decode_packet(bytes(data))

    def test_truncated_tcp(self):
        pair = tcp_pair()
        data = encode_packet(pair)[:30]  # cut inside the TCP header
        # total_length still claims 40, so the TCP parse sees 10 bytes.
        with pytest.raises(HeaderError):
            decode_packet(data)

    def test_empty(self):
        with pytest.raises(HeaderError):
            decode_packet(b"")


class TestIPv4Header:
    def test_encode_length(self):
        header = IPv4Header(1, 2, IPPROTO_TCP, 40).encode()
        assert len(header) == 20

    def test_self_checksumming(self):
        header = IPv4Header(parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.2"),
                            IPPROTO_UDP, 28).encode()
        assert internet_checksum(header) == 0


@given(
    src=st.integers(min_value=0, max_value=2 ** 32 - 1),
    sport=st.integers(min_value=0, max_value=65535),
    dst=st.integers(min_value=0, max_value=2 ** 32 - 1),
    dport=st.integers(min_value=0, max_value=65535),
    proto=st.sampled_from([IPPROTO_TCP, IPPROTO_UDP]),
    payload=st.binary(max_size=64),
)
@settings(max_examples=200)
def test_roundtrip_property(src, sport, dst, dport, proto, payload):
    pair = SocketPair(proto, src, sport, dst, dport)
    packet = decode_packet(encode_packet(pair, payload=payload), verify_checksums=True)
    assert packet.pair == pair
    assert packet.payload == payload
