"""Tests for the shared shard lifecycle layer (repro.shard.lifecycle)."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.hashing import FNV64_OFFSET
from repro.filters.base import SnapshotUnsupported, Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.shard.lifecycle import (
    DefaultLaneFilter,
    MemberLane,
    WorkerPool,
    combine_lane_fingerprints,
)

from tests.conftest import in_packet, out_packet


def make_filter():
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 10, vectors=3, hashes=2,
                           rotate_interval=5.0)
    )


class TestMemberLane:
    def test_launch_without_isolation_shares_member(self):
        member = make_filter()
        lane = MemberLane(0, member)
        lane.launch()
        assert lane.filter is member
        lane.stop()
        assert lane.filter is None

    def test_isolation_deep_copies(self):
        member = make_filter()
        with MemberLane(0, member, isolate=True) as lane:
            assert lane.filter is not member
            lane.filter.process(out_packet())
            assert lane.filter.stats.total == 1
            assert member.stats.total == 0

    def test_ping_reports_status_and_packets(self):
        lane = MemberLane(2, make_filter())
        assert lane.ping() == {"lane": 2, "status": "down", "packets": 0}
        lane.launch()
        lane.filter.process(out_packet())
        assert lane.ping()["status"] == "up"
        assert lane.ping()["packets"] == 1

    def test_snapshot_restore_round_trip(self):
        lane = MemberLane(0, make_filter())
        lane.launch()
        lane.filter.process(out_packet(t=1.0))
        state = lane.snapshot_state()
        lane.restore_state(state)
        lane.launch()
        # The marked connection's return packet still passes.
        assert lane.filter.decide(in_packet(t=1.5)) is Verdict.PASS

    def test_launch_is_idempotent(self):
        lane = MemberLane(0, make_filter(), isolate=True)
        lane.launch()
        isolated = lane.filter
        lane.launch()
        assert lane.filter is isolated


def _square(value):
    return value * value


class TestWorkerPool:
    def test_map_and_lifecycle(self):
        pool = WorkerPool(2)
        with pool:
            assert pool.ping()["status"] == "up"
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.ping()["status"] == "down"

    def test_map_before_launch_raises(self):
        with pytest.raises(RuntimeError):
            WorkerPool(2).map(_square, [1])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_snapshot_unsupported(self):
        with pytest.raises(SnapshotUnsupported):
            WorkerPool(1).snapshot_state()


class TestDefaultLaneFilter:
    def test_returns_configured_verdict(self):
        assert DefaultLaneFilter(Verdict.PASS).decide(in_packet()) is Verdict.PASS
        assert DefaultLaneFilter(Verdict.DROP).decide(in_packet()) is Verdict.DROP


class TestCombineLaneFingerprints:
    def test_order_independent(self):
        fingerprints = {0: 0x1234, 1: 0xABCD, -1: 0x9999}
        shuffled = {-1: 0x9999, 1: 0xABCD, 0: 0x1234}
        assert (combine_lane_fingerprints(fingerprints)
                == combine_lane_fingerprints(shuffled))

    def test_lane_keyed(self):
        # Two lanes with swapped streams must not collide.
        assert (combine_lane_fingerprints({0: 0x1234, 1: 0xABCD})
                != combine_lane_fingerprints({0: 0xABCD, 1: 0x1234}))

    def test_empty_lanes_contribute_nothing(self):
        with_idle = {0: 0x1234, 1: FNV64_OFFSET, 2: FNV64_OFFSET}
        assert (combine_lane_fingerprints(with_idle)
                == combine_lane_fingerprints({0: 0x1234}))
        assert combine_lane_fingerprints({}) == 0

    def test_grouping_invariant(self):
        # Partial combinations sum to the full combination (mod 2^64) —
        # what lets the fleet fold shard and default-lane fingerprints
        # in any aggregation order.
        full = combine_lane_fingerprints({0: 7, 1: 11, 2: 13})
        partial = (combine_lane_fingerprints({0: 7})
                   + combine_lane_fingerprints({1: 11, 2: 13}))
        assert full == partial & ((1 << 64) - 1)
