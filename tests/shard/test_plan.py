"""Tests for shard plans (repro.shard.plan): keyings, partitioning,
spec round trips."""

import pytest

from repro.net.inet import parse_ipv4
from repro.net.packet import Direction
from repro.net.table import PacketTable
from repro.shard.plan import (
    HashShardPlan,
    ShardPlan,
    SubnetShardPlan,
    plan_from_spec,
)
from repro.workload import TraceConfig, TraceGenerator

from tests.conftest import in_packet, out_packet, tcp_pair

NETWORK = parse_ipv4("10.1.0.0")


def trace_table(duration=8.0, rate=6.0, seed=11):
    return TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).table()


class TestSubnetShardPlan:
    def test_from_cidr_layout(self):
        plan = SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=2)
        assert plan.lanes == 4
        assert [plan.label(i) for i in range(4)] == [
            "10.1.0.0/18", "10.1.64.0/18", "10.1.128.0/18", "10.1.192.0/18",
        ]

    def test_from_cidr_rejects_overflow(self):
        with pytest.raises(ValueError):
            SubnetShardPlan.from_cidr(NETWORK, 31, shard_bits=2)
        with pytest.raises(ValueError):
            SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=0)

    def test_lane_of_and_transit(self):
        plan = SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=2)
        assert plan.lane_of(parse_ipv4("10.1.0.5")) == 0
        assert plan.lane_of(parse_ipv4("10.1.200.9")) == 3
        assert plan.lane_of(parse_ipv4("192.0.2.1")) == -1

    def test_first_match_wins_with_overlap(self):
        # More-specific /24 listed first claims its addresses; the
        # covering /16 takes the rest.
        plan = SubnetShardPlan([
            (parse_ipv4("10.1.7.0"), 24),
            (NETWORK, 16),
        ])
        assert plan.lane_of(parse_ipv4("10.1.7.9")) == 0
        assert plan.lane_of(parse_ipv4("10.1.8.9")) == 1

    def test_route_cache_eviction_keeps_answers_right(self):
        plan = SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=2,
                                         route_cache_size=4)
        addresses = [parse_ipv4(f"10.1.{i * 40}.1") for i in range(6)]
        expected = [plan.scan(address) for address in addresses]
        # Two passes churn the 4-entry FIFO cache past its bound.
        for _ in range(2):
            assert [plan.lane_of(a) for a in addresses] == expected
        assert len(plan._route_cache) <= 4

    def test_inner_address_orientation(self):
        pair = tcp_pair()
        assert ShardPlan.inner_address(out_packet(pair)) == pair.src_addr
        inbound = in_packet()
        assert ShardPlan.inner_address(inbound) == inbound.pair.dst_addr

    def test_spec_round_trip(self):
        plan = SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=2)
        rebuilt = plan_from_spec(plan.as_spec())
        assert isinstance(rebuilt, SubnetShardPlan)
        assert rebuilt.subnets == plan.subnets


class TestHashShardPlan:
    def test_routes_everything(self):
        plan = HashShardPlan(5, seed=3)
        for i in range(50):
            lane = plan.lane_of(parse_ipv4(f"10.{i}.{i * 3 % 256}.7"))
            assert 0 <= lane < 5

    def test_subnet_granularity(self):
        # Addresses sharing a /24 land on the same lane by construction.
        plan = HashShardPlan(4, subnet_prefix=24, seed=1)
        assert (plan.lane_of(parse_ipv4("10.1.5.1"))
                == plan.lane_of(parse_ipv4("10.1.5.200")))

    def test_consistent_hashing_moves_few_subnets(self):
        subnets = [parse_ipv4(f"10.{i // 256}.{i % 256}.0")
                   for i in range(512)]
        before = HashShardPlan(4, seed=9)
        after = HashShardPlan(5, seed=9)
        moved = sum(1 for s in subnets
                    if before.lane_of(s) != after.lane_of(s))
        # Consistent hashing remaps ~1/lanes of the keys, not ~all of
        # them (a modulo keying would remap ~4/5 here).
        assert moved / len(subnets) < 0.5

    def test_spec_round_trip(self):
        plan = HashShardPlan(3, subnet_prefix=20, replicas=16, seed=42)
        rebuilt = plan_from_spec(plan.as_spec())
        assert isinstance(rebuilt, HashShardPlan)
        addresses = [parse_ipv4(f"10.9.{i}.1") for i in range(64)]
        assert ([plan.lane_of(a) for a in addresses]
                == [rebuilt.lane_of(a) for a in addresses])

    def test_validation(self):
        with pytest.raises(ValueError):
            HashShardPlan(0)
        with pytest.raises(ValueError):
            HashShardPlan(2, subnet_prefix=40)
        with pytest.raises(ValueError):
            HashShardPlan(2, replicas=0)


def test_plan_from_spec_rejects_unknown_keying():
    with pytest.raises(ValueError, match="keying"):
        plan_from_spec({"keying": "geo"})


@pytest.mark.parametrize("plan", [
    SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=2),
    HashShardPlan(3, seed=5),
])
def test_partition_table_matches_partition_packets(plan):
    table = trace_table()
    lane_tables, default_table = plan.partition_table(table)
    lane_lists, default_list = plan.partition_packets(table.to_packets())

    def rows(packets):
        return [(p.timestamp, p.pair, p.direction, p.size) for p in packets]

    assert len(lane_tables) == plan.lanes
    for lane_table, lane_list in zip(lane_tables, lane_lists):
        assert rows(lane_table.to_packets()) == rows(lane_list)
    assert rows(default_table.to_packets()) == rows(default_list)
    total = sum(len(t) for t in lane_tables) + len(default_table)
    assert total == len(table)


def test_partition_keeps_connections_whole():
    plan = SubnetShardPlan.from_cidr(NETWORK, 16, shard_bits=2)
    table = trace_table()
    lane_tables, default_table = plan.partition_table(table)
    owners = {}
    for lane, sub in enumerate(lane_tables + [default_table]):
        for packet in sub.to_packets():
            key = packet.pair.canonical
            assert owners.setdefault(key, lane) == lane


def test_empty_table_partitions_empty():
    plan = HashShardPlan(3)
    lanes, default_table = plan.partition_table(PacketTable())
    assert all(len(t) == 0 for t in lanes)
    assert len(default_table) == 0
