"""Property tests for the shard merge arm: statistics folding must be
associative and commutative.

Every shard mechanism — the parallel workers, the sharded-filter lanes,
the fleet daemons — folds per-lane statistics with ``merge``, and the
exactness story depends on the fold being independent of lane order and
aggregation grouping: merging three shards as ``(a+b)+c``, ``a+(b+c)``
or ``c+(a+b)`` must produce identical state.  Hypothesis drives
randomized per-shard observation streams (at least three shards) through
:class:`~repro.filters.base.FilterStats`,
:class:`~repro.core.bitmap_filter.BitmapFilterStats`,
:class:`~repro.sim.metrics.ThroughputSeries` and
:class:`~repro.sim.metrics.DropRateSampler` and checks both laws on the
serialized end state.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.bitmap_filter import BitmapFilterStats  # noqa: E402
from repro.filters.base import FilterStats, Verdict  # noqa: E402
from repro.sim.metrics import DropRateSampler, ThroughputSeries  # noqa: E402

from tests.conftest import in_packet, out_packet  # noqa: E402

# Each shard's stream: (is_outbound, passed, timestamp, size) events.
shard_events = st.lists(
    st.tuples(
        st.booleans(),
        st.booleans(),
        st.floats(min_value=0.0, max_value=60.0),
        st.integers(min_value=40, max_value=1500),
    ),
    max_size=30,
)

# At least three shards, so grouping (not just swapping) is exercised.
fleets = st.lists(shard_events, min_size=3, max_size=5)


def filter_stats_of(events):
    stats = FilterStats()
    for is_outbound, passed, timestamp, size in events:
        packet = (out_packet(t=timestamp, size=size) if is_outbound
                  else in_packet(t=timestamp, size=size))
        stats.account(packet, Verdict.PASS if passed else Verdict.DROP)
    return stats


def throughput_of(events, interval):
    series = ThroughputSeries(interval=interval)
    for is_outbound, passed, timestamp, size in events:
        if not passed:
            continue
        series.record(out_packet(t=timestamp, size=size) if is_outbound
                      else in_packet(t=timestamp, size=size))
    return series


def sampler_of(events, window):
    sampler = DropRateSampler(window=window)
    for is_outbound, passed, timestamp, _size in events:
        if is_outbound:
            continue
        sampler.record(timestamp, dropped=not passed)
    return sampler


def bitmap_stats_of(events):
    stats = BitmapFilterStats()
    for is_outbound, passed, _timestamp, _size in events:
        if is_outbound:
            stats.outbound_marked += 1
        elif passed:
            stats.inbound_hits += 1
        else:
            stats.inbound_misses += 1
            stats.inbound_dropped += 1
    return stats


def assert_merge_laws(build, freeze):
    """Check commutativity and associativity of in-place merge over
    ``build()``-produced shard records, comparing ``freeze(state)``."""

    def fold(order, grouping):
        # grouping picks how many items the first partial fold takes.
        items = [build(i) for i in order]
        left = items[0]
        for item in items[1:grouping]:
            left.merge(item)
        right = items[grouping] if grouping < len(items) else None
        if right is not None:
            for item in items[grouping + 1:]:
                right.merge(item)
            left.merge(right)
        return freeze(left)

    reference = fold(build.order, grouping=1)
    for order in (list(reversed(build.order)),
                  build.order[1:] + build.order[:1]):
        for grouping in (1, 2, len(build.order) - 1):
            assert fold(order, grouping) == reference


def make_builder(shards, factory):
    def build(index):
        return factory(shards[index])

    build.order = list(range(len(shards)))
    return build


@settings(max_examples=40, deadline=None)
@given(fleets)
def test_filter_stats_merge_laws(shards):
    assert_merge_laws(
        make_builder(shards, filter_stats_of),
        freeze=lambda stats: stats.snapshot(),
    )


@settings(max_examples=40, deadline=None)
@given(fleets)
def test_bitmap_stats_merge_laws(shards):
    assert_merge_laws(
        make_builder(shards, bitmap_stats_of),
        freeze=lambda stats: stats.as_dict(),
    )


@settings(max_examples=40, deadline=None)
@given(fleets, st.sampled_from([0.5, 1.0, 2.0]))
def test_throughput_series_merge_laws(shards, interval):
    assert_merge_laws(
        make_builder(shards, lambda events: throughput_of(events, interval)),
        freeze=lambda series: series.snapshot(),
    )


@settings(max_examples=40, deadline=None)
@given(fleets, st.sampled_from([1.0, 5.0, 10.0]))
def test_drop_rate_sampler_merge_laws(shards, window):
    assert_merge_laws(
        make_builder(shards, lambda events: sampler_of(events, window)),
        freeze=lambda sampler: sampler.snapshot(),
    )


@settings(max_examples=20, deadline=None)
@given(fleets)
def test_merge_matches_single_stream(shards):
    """Merging per-shard stats equals accounting the concatenated
    stream into one record — the partitioned-replay exactness claim."""
    merged = FilterStats()
    for events in shards:
        merged.merge(filter_stats_of(events))
    single = filter_stats_of([e for events in shards for e in events])
    assert merged.snapshot() == single.snapshot()


def test_merge_rejects_mismatched_binning():
    with pytest.raises(ValueError):
        ThroughputSeries(interval=1.0).merge(ThroughputSeries(interval=2.0))
    with pytest.raises(ValueError):
        DropRateSampler(window=5.0).merge(DropRateSampler(window=10.0))
