"""The parallel materialization path's byte-identity contract.

``iter_tables(workers=N)`` must emit *exactly* the serial chunk stream —
same column bytes, same shared interning pools, same chunk boundaries —
for every worker count, on both merge paths.  Alongside it: the
utilization accounting (:class:`GenerationStats`), the throttled
:class:`ProgressReporter`, and the materialization-size warnings.
"""

import io

import pytest

import repro.net.table as table_mod
import repro.workload.generator as generator_mod
from repro.workload.generator import TraceConfig, TraceGenerator, generate_trace
from repro.workload.parallel import GenerationStats, parallel_tables
from repro.workload.progress import ProgressReporter, _format_seconds

CONFIGS = [
    TraceConfig(duration=30.0, connection_rate=6.0, seed=7),
    TraceConfig(duration=45.0, connection_rate=4.0, seed=42),
]


def column_bytes(chunk):
    return (
        chunk.timestamps.tobytes(),
        chunk.sizes.tobytes(),
        chunk.flags.tobytes(),
        chunk.outbound.tobytes(),
        chunk.pair_ids.tobytes(),
        chunk.payload_ids.tobytes(),
    )


def stream_signature(chunks):
    """Everything the identity contract covers: per-chunk column bytes
    plus the shared pools' exact contents and order."""
    chunks = list(chunks)
    columns = [column_bytes(chunk) for chunk in chunks]
    if chunks:
        pairs = [tuple(pair) for pair in chunks[-1].pairs]
        payloads = list(chunks[-1].payloads)
    else:
        pairs, payloads = [], []
    return columns, pairs, payloads


@pytest.fixture(params=["numpy", "stdlib"])
def merge_path(request, monkeypatch):
    if request.param == "numpy" and not table_mod.HAVE_NUMPY:
        pytest.skip("numpy not installed")
    monkeypatch.setattr(
        table_mod, "_use_numpy", request.param == "numpy" and table_mod.HAVE_NUMPY
    )
    return request.param


class TestParallelByteIdentity:
    @pytest.mark.parametrize("config", CONFIGS, ids=["seed7", "seed42"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_chunk_stream_identical(self, config, workers, merge_path):
        serial = stream_signature(
            TraceGenerator(config).iter_tables(chunk_size=1024)
        )
        parallel = stream_signature(
            TraceGenerator(config).iter_tables(chunk_size=1024, workers=workers)
        )
        assert parallel == serial

    def test_one_shot_table_identical(self, merge_path):
        serial = TraceGenerator(CONFIGS[0]).table()
        parallel = TraceGenerator(CONFIGS[0]).table(workers=2)
        assert len(parallel) == len(serial)
        assert column_bytes(parallel) == column_bytes(serial)
        assert [tuple(pair) for pair in parallel.pairs] == [
            tuple(pair) for pair in serial.pairs
        ]
        assert list(parallel.payloads) == list(serial.payloads)

    def test_chunk_size_bounds_hold(self):
        chunks = list(
            TraceGenerator(CONFIGS[0]).iter_tables(chunk_size=777, workers=2)
        )
        assert len(chunks) > 1
        assert all(len(chunk) <= 777 for chunk in chunks)
        # All chunks spawn from one pool: interned ids stay valid
        # across the stream.
        assert all(chunk.pairs is chunks[0].pairs for chunk in chunks[1:])

    def test_batch_size_does_not_affect_output(self):
        generator = TraceGenerator(CONFIGS[0])
        baseline = stream_signature(generator.iter_tables(chunk_size=512))
        for batch_size in (1, 7, 1000):
            got = stream_signature(
                parallel_tables(
                    TraceGenerator(CONFIGS[0]), chunk_size=512, workers=2,
                    batch_size=batch_size,
                )
            )
            assert got == baseline

    def test_workers_one_falls_through_to_serial(self):
        serial = stream_signature(TraceGenerator(CONFIGS[0]).iter_tables())
        fallthrough = stream_signature(
            parallel_tables(TraceGenerator(CONFIGS[0]), workers=1)
        )
        assert fallthrough == serial

    def test_empty_trace(self):
        # Seeded so the first Poisson arrival lands past the horizon:
        # zero specs, zero chunks, an empty table.
        config = TraceConfig(duration=0.01, connection_rate=0.01, seed=1)
        assert list(TraceGenerator(config).iter_tables(workers=2)) == list(
            TraceGenerator(config).iter_tables()
        )
        assert len(TraceGenerator(config).table(workers=2)) == 0

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            list(TraceGenerator(CONFIGS[0]).iter_tables(workers=0))

    def test_early_abandon_terminates_cleanly(self):
        stream = TraceGenerator(CONFIGS[0]).iter_tables(chunk_size=64, workers=2)
        first = next(stream)
        assert len(first) == 64
        stream.close()  # must not hang on queued batches


class TestGeneratePacketsParity:
    def test_generate_trace_parallel_matches_serial(self):
        config = TraceConfig(duration=10.0, connection_rate=4.0, seed=9)
        serial = generate_trace(config)
        parallel = generate_trace(config, workers=2)
        assert [
            (p.timestamp, p.pair, p.size, p.flags, p.payload, p.direction)
            for p in parallel
        ] == [
            (p.timestamp, p.pair, p.size, p.flags, p.payload, p.direction)
            for p in serial
        ]


class TestGenerationStats:
    def test_populated_by_parallel_run(self):
        stats = GenerationStats()
        table = TraceGenerator(CONFIGS[0]).table(workers=2, stats=stats)
        assert stats.workers == 2
        assert stats.batches >= 1
        assert stats.rows == len(table)
        assert stats.busy_s > 0.0
        assert stats.wall_s > 0.0
        assert 0.0 < stats.utilization()

    def test_utilization_degenerate_cases(self):
        assert GenerationStats().utilization() == 0.0
        assert GenerationStats(workers=4, wall_s=0.0).utilization() == 0.0


class _FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestProgressReporter:
    def make(self, **kwargs):
        clock = _FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            "gen", interval=2.0, stream=stream, clock=clock, **kwargs
        )
        return reporter, clock, stream

    def test_throttles_to_one_line_per_interval(self):
        reporter, clock, stream = self.make()
        clock.t = 1.0
        reporter.update(10)
        assert stream.getvalue() == ""  # inside the first interval
        clock.t = 2.5
        reporter.update(50)
        clock.t = 3.0
        reporter.update(60)  # deadline moved to 4.5: suppressed
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "gen: 50 packets" in lines[0]
        assert "20 pkt/s" in lines[0]  # 50 packets / 2.5 s

    def test_eta_from_trace_time(self):
        reporter, clock, stream = self.make(duration=100.0)
        clock.t = 2.5
        reporter.update(50, trace_time=25.0)
        line = stream.getvalue()
        assert "trace 25/100s" in line
        # elapsed 2.5 s covered 25 of 100 trace seconds -> 7.5 s left.
        assert "ETA 8s" in line

    def test_finish_summarizes_long_runs_only(self):
        reporter, clock, stream = self.make()
        clock.t = 2.5
        reporter.update(50)
        clock.t = 5.0
        reporter.finish()
        assert "done — 50 packets" in stream.getvalue().splitlines()[-1]

    def test_short_runs_stay_silent(self):
        reporter, clock, stream = self.make()
        clock.t = 1.0
        reporter.update(1000)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_format_seconds(self):
        assert _format_seconds(5.4) == "5s"
        assert _format_seconds(250) == "4m10s"
        assert _format_seconds(7320) == "2h02m"
        assert _format_seconds(-3.0) == "0s"


class TestMaterializeWarnings:
    def test_packet_list_warns_past_threshold(self, monkeypatch):
        monkeypatch.setattr(generator_mod, "MATERIALIZE_WARNING_THRESHOLD", 100)
        with pytest.warns(UserWarning, match="packet_list"):
            packets = TraceGenerator(CONFIGS[0]).packet_list()
        assert len(packets) > 100  # warning did not truncate the trace

    def test_generate_trace_parallel_warns_past_threshold(self, monkeypatch):
        monkeypatch.setattr(generator_mod, "MATERIALIZE_WARNING_THRESHOLD", 100)
        config = TraceConfig(duration=10.0, connection_rate=4.0, seed=9)
        with pytest.warns(UserWarning, match="generate_trace"):
            generate_trace(config, workers=2)

    def test_small_traces_stay_quiet(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            TraceGenerator(
                TraceConfig(duration=5.0, connection_rate=2.0, seed=3)
            ).packet_list()
