"""Tests for topology: client network, address space, port allocation."""

import random

import pytest

from repro.net.inet import parse_ipv4
from repro.workload.topology import AddressSpace, ClientNetwork, HostModel, PortAllocator


class TestClientNetwork:
    def test_clients_inside_network(self):
        network = ClientNetwork("10.1.0.0", 16, hosts=50)
        assert len(network) == 50
        assert all(network.contains(addr) for addr in network.clients)

    def test_distinct_addresses(self):
        network = ClientNetwork(hosts=100)
        assert len(set(network.clients)) == 100

    def test_random_client_deterministic(self):
        network = ClientNetwork(hosts=10)
        assert network.random_client(random.Random(1)) == network.random_client(
            random.Random(1)
        )

    def test_too_many_hosts_rejected(self):
        with pytest.raises(ValueError):
            ClientNetwork("10.1.0.0", 30, hosts=100)

    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError):
            ClientNetwork(hosts=0)


class TestAddressSpace:
    def test_remotes_outside_client_network(self):
        network = ClientNetwork("10.1.0.0", 16)
        space = AddressSpace(network, seed=1)
        for _ in range(500):
            addr = space.random_remote()
            assert not network.contains(addr)
            assert (addr >> 24) not in (10, 127)

    def test_sticky_pool_stable(self):
        space = AddressSpace(ClientNetwork(), seed=1)
        first = space.sticky_peers("swarm", 10)
        second = space.sticky_peers("swarm", 10)
        assert first == second

    def test_sticky_pools_per_category(self):
        space = AddressSpace(ClientNetwork(), seed=1)
        assert space.sticky_peers("a", 5) != space.sticky_peers("b", 5)

    def test_pool_grows_on_demand(self):
        space = AddressSpace(ClientNetwork(), seed=1)
        small = space.sticky_peers("c", 3)
        large = space.sticky_peers("c", 8)
        assert len(large) == 8

    def test_count_validation(self):
        with pytest.raises(ValueError):
            AddressSpace(ClientNetwork()).sticky_peers("x", 0)


class TestPortAllocator:
    def test_fresh_allocation_sequential(self):
        allocator = PortAllocator(low=1024, high=1030)
        assert [allocator.allocate(0.0) for _ in range(3)] == [1024, 1025, 1026]

    def test_release_and_reuse_after_timeout(self):
        allocator = PortAllocator(low=1024, high=1025, reuse_timeout=60.0)
        a = allocator.allocate(0.0)
        b = allocator.allocate(0.0)
        allocator.release(a, now=10.0)
        # Fresh range exhausted; the released port becomes eligible at 70.
        assert allocator.allocate(100.0) == a

    def test_early_reuse_when_starved(self):
        allocator = PortAllocator(low=1024, high=1024, reuse_timeout=60.0)
        a = allocator.allocate(0.0)
        allocator.release(a, now=1.0)
        # Not yet eligible, but nothing else is available.
        assert allocator.allocate(5.0) == a

    def test_exhaustion_raises(self):
        allocator = PortAllocator(low=1024, high=1024)
        allocator.allocate(0.0)
        with pytest.raises(RuntimeError):
            allocator.allocate(1.0)

    def test_release_validation(self):
        allocator = PortAllocator(low=1024, high=2048)
        with pytest.raises(ValueError):
            allocator.release(80, now=0.0)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            PortAllocator(low=5000, high=1024)

    def test_fresh_remaining(self):
        allocator = PortAllocator(low=1024, high=1028)
        assert allocator.fresh_remaining == 5
        allocator.allocate(0.0)
        assert allocator.fresh_remaining == 4

    def test_oldest_released_reused_first(self):
        allocator = PortAllocator(low=1024, high=1025, reuse_timeout=10.0)
        a = allocator.allocate(0.0)
        b = allocator.allocate(0.0)
        allocator.release(b, now=1.0)
        allocator.release(a, now=5.0)
        assert allocator.allocate(100.0) == b


class TestHostModel:
    def test_reuse_timeout_from_common_values(self):
        host = HostModel(parse_ipv4("10.1.0.5"), random.Random(4))
        assert host.ports.reuse_timeout in PortAllocator.COMMON_TIMEOUTS

    def test_listen_ports_dict(self):
        host = HostModel(parse_ipv4("10.1.0.5"), random.Random(4))
        host.listen_ports["bittorrent"] = 6881
        assert host.listen_ports["bittorrent"] == 6881
