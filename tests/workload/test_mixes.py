"""Tests for the preset traffic mixes."""

import pytest

from repro.net.packet import Direction
from repro.workload.apps import Initiator
from repro.workload.generator import TraceGenerator
from repro.workload.mixes import (
    ALL_PRESETS,
    BALANCED,
    CAMPUS_2007,
    P2P_SATURATED,
    WEB_ENTERPRISE,
    preset_by_name,
)


class TestPresets:
    def test_all_mixes_sum_to_one(self):
        for preset in ALL_PRESETS:
            assert sum(preset.app_mix.values()) == pytest.approx(1.0, abs=0.01), preset.name

    def test_all_mixes_reference_real_apps(self):
        from repro.workload.apps import APP_FACTORIES

        for preset in ALL_PRESETS:
            assert set(preset.app_mix) <= set(APP_FACTORIES), preset.name

    def test_configs_are_valid(self):
        for preset in ALL_PRESETS:
            config = preset.config(duration=5.0, base_rate=4.0)
            assert config.connection_rate > 0

    def test_lookup_by_name(self):
        assert preset_by_name("campus-2007") is CAMPUS_2007
        with pytest.raises(KeyError):
            preset_by_name("nope")

    def test_campus_matches_default(self):
        from repro.workload.calibrate import DEFAULT_APP_MIX

        assert CAMPUS_2007.app_mix == DEFAULT_APP_MIX


class TestMixCharacter:
    """Each preset must actually produce its advertised regime."""

    def _inbound_initiated_fraction(self, preset, seed=6):
        generator = TraceGenerator(preset.config(duration=40.0, base_rate=10.0, seed=seed))
        generator.packet_list()
        specs = generator.specs()
        remote = sum(1 for s in specs if s.initiator is Initiator.REMOTE)
        return remote / len(specs)

    def test_web_enterprise_mostly_client_initiated(self):
        assert self._inbound_initiated_fraction(WEB_ENTERPRISE) < 0.10

    def test_p2p_saturated_heavily_remote_initiated(self):
        assert self._inbound_initiated_fraction(P2P_SATURATED) > 0.20

    def test_balanced_in_between(self):
        web = self._inbound_initiated_fraction(WEB_ENTERPRISE)
        p2p = self._inbound_initiated_fraction(P2P_SATURATED)
        mid = self._inbound_initiated_fraction(BALANCED)
        assert web < mid < p2p

    def test_web_enterprise_upload_light(self):
        generator = TraceGenerator(WEB_ENTERPRISE.config(duration=40.0, base_rate=10.0, seed=6))
        packets = generator.packet_list()
        upload = sum(p.size for p in packets if p.direction is Direction.OUTBOUND)
        total = sum(p.size for p in packets)
        assert upload / total < 0.5  # download-dominated

    def test_p2p_saturated_upload_heavy(self):
        generator = TraceGenerator(P2P_SATURATED.config(duration=40.0, base_rate=10.0, seed=6))
        packets = generator.packet_list()
        upload = sum(p.size for p in packets if p.direction is Direction.OUTBOUND)
        total = sum(p.size for p in packets)
        assert upload / total > 0.7
