"""Tests for the trace generator."""

import pytest

from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction
from repro.net.pcap import read_pcap
from repro.net.headers import decode_packet
from repro.workload.generator import TraceConfig, TraceGenerator, generate_trace


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(duration=0)
        with pytest.raises(ValueError):
            TraceConfig(connection_rate=0)
        with pytest.raises(ValueError):
            TraceConfig(hosts=0)
        with pytest.raises(ValueError):
            TraceConfig(app_mix={})
        with pytest.raises(ValueError):
            TraceConfig(app_mix={"nosuchapp": 1.0})
        with pytest.raises(ValueError):
            TraceConfig(port_reuse_fraction=1.5)


class TestGeneration:
    def test_deterministic_for_seed(self):
        config = TraceConfig(duration=20.0, connection_rate=5.0, seed=3)
        a = TraceGenerator(config).packet_list()
        b = TraceGenerator(config).packet_list()
        assert len(a) == len(b)
        assert all(
            (x.timestamp, x.pair, x.size, x.flags) == (y.timestamp, y.pair, y.size, y.flags)
            for x, y in zip(a, b)
        )

    def test_different_seeds_differ(self):
        a = generate_trace(TraceConfig(duration=20.0, connection_rate=5.0, seed=1))
        b = generate_trace(TraceConfig(duration=20.0, connection_rate=5.0, seed=2))
        assert len(a) != len(b) or any(
            x.pair != y.pair for x, y in zip(a, b)
        )

    def test_timestamps_nondecreasing(self, small_trace):
        times = [p.timestamp for p in small_trace]
        assert times == sorted(times)

    def test_every_packet_has_direction(self, small_trace):
        assert all(p.direction is not None for p in small_trace)

    def test_directions_consistent_with_topology(self, small_trace):
        config = TraceConfig()
        from repro.net.inet import in_network, parse_ipv4

        net = parse_ipv4(config.network)
        for packet in small_trace[:2000]:
            inside = in_network(packet.pair.src_addr, net, config.prefix_len)
            expected = Direction.OUTBOUND if inside else Direction.INBOUND
            assert packet.direction is expected

    def test_specs_sorted_by_start(self, small_trace_specs):
        starts = [spec.start for spec in small_trace_specs]
        assert starts == sorted(starts)

    def test_arrival_count_tracks_rate(self):
        config = TraceConfig(duration=100.0, connection_rate=10.0, seed=8)
        generator = TraceGenerator(config)
        # FTP contributes a second spec per arrival and reconnects add a
        # few more, so the count slightly exceeds rate × duration.
        assert len(generator.specs()) == pytest.approx(1000, rel=0.15)

    def test_port_reuse_reconnects_share_five_tuple(self):
        config = TraceConfig(duration=400.0, connection_rate=10.0, seed=8,
                             port_reuse_fraction=0.5)
        specs = TraceGenerator(config).specs()
        tcp = [s for s in specs if s.protocol == IPPROTO_TCP]
        pairs = {}
        reused = 0
        for spec in tcp:
            key = spec.pair_from_client
            if key in pairs:
                reused += 1
            pairs[key] = spec
        assert reused > 0


class TestPcapExport:
    def test_write_and_decode(self, tmp_path):
        config = TraceConfig(duration=5.0, connection_rate=4.0, seed=5)
        generator = TraceGenerator(config)
        path = str(tmp_path / "trace.pcap")
        written = generator.write_pcap(path)
        records = read_pcap(path)
        assert written == len(records) > 0
        in_memory = TraceGenerator(config).packet_list()
        for record, expected in zip(records[:200], in_memory[:200]):
            decoded = decode_packet(record.data, record.timestamp)
            assert decoded.pair == expected.pair
            assert decoded.size == expected.size
            assert decoded.flags == expected.flags
            assert decoded.timestamp == pytest.approx(expected.timestamp, abs=1e-5)

    def test_snaplen_headers_only(self, tmp_path):
        config = TraceConfig(duration=3.0, connection_rate=4.0, seed=5)
        path = str(tmp_path / "headers.pcap")
        TraceGenerator(config).write_pcap(path, snaplen=64)
        records = read_pcap(path)
        assert all(len(record.data) <= 64 for record in records)
        # orig_len still reflects the wire size.
        assert any(record.orig_len > 64 for record in records)


class TestGeneratorProperties:
    """Hypothesis sweeps over small configurations: structural invariants
    must hold for any seed and any (reasonable) shape."""

    def test_invariants_across_seeds_and_rates(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(seed=st.integers(min_value=0, max_value=10_000),
               rate=st.floats(min_value=1.0, max_value=10.0))
        @settings(max_examples=15, deadline=None)
        def check(seed, rate):
            config = TraceConfig(duration=6.0, connection_rate=rate, seed=seed)
            generator = TraceGenerator(config)
            packets = generator.packet_list()
            times = [p.timestamp for p in packets]
            assert times == sorted(times)
            assert all(p.direction is not None for p in packets)
            assert all(p.size >= 28 for p in packets)  # >= IP + UDP headers
            specs = generator.specs()
            assert all(0 < s.client_port <= 65535 for s in specs)
            assert all(0 < s.remote_port <= 65535 for s in specs)

        check()
