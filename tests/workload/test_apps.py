"""Tests for per-application connection models and packet expansion."""

import random

import pytest

from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP, parse_ipv4
from repro.net.packet import Direction
from repro.workload import apps
from repro.workload.apps import (
    APP_FACTORIES,
    ConnectionSpec,
    Initiator,
    connection_packets,
)
from repro.workload.topology import AddressSpace, ClientNetwork, HostModel


@pytest.fixture
def env():
    rng = random.Random(31)
    network = ClientNetwork("10.1.0.0", 16, hosts=10)
    space = AddressSpace(network, seed=31)
    host = HostModel(network.clients[0], rng)
    return rng, host, space


def expand(spec, seed=5):
    return connection_packets(spec, random.Random(seed))


class TestSpecValidation:
    def base_kwargs(self):
        return dict(
            app="http", start=0.0, protocol=IPPROTO_TCP,
            client_addr=parse_ipv4("10.1.0.5"), client_port=1024,
            remote_addr=parse_ipv4("9.9.9.9"), remote_port=80,
            initiator=Initiator.CLIENT,
        )

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            ConnectionSpec(duration=0.0, **self.base_kwargs())

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            ConnectionSpec(bytes_client_to_remote=-1, **self.base_kwargs())

    def test_pair_orientation(self):
        spec = ConnectionSpec(**self.base_kwargs())
        pair = spec.pair_from_client
        assert pair.src_addr == spec.client_addr
        assert pair.dst_port == 80


class TestTcpExpansion:
    def spec(self, initiator=Initiator.CLIENT, **overrides):
        kwargs = dict(
            app="bittorrent", start=10.0, protocol=IPPROTO_TCP,
            client_addr=parse_ipv4("10.1.0.5"), client_port=2000,
            remote_addr=parse_ipv4("9.9.9.9"), remote_port=6881,
            initiator=initiator, duration=20.0, rtt=0.05,
            request_payload=b"\x13BitTorrent protocol" + b"\x00" * 28,
            bytes_client_to_remote=50_000,
        )
        kwargs.update(overrides)
        return ConnectionSpec(**kwargs)

    def test_sorted_by_time(self):
        packets = expand(self.spec())
        times = [p.timestamp for p in packets]
        assert times == sorted(times)

    def test_starts_with_syn_from_initiator(self):
        packets = expand(self.spec())
        assert packets[0].is_syn
        assert packets[0].direction is Direction.OUTBOUND
        assert packets[0].timestamp == 10.0

    def test_remote_initiated_syn_is_inbound(self):
        packets = expand(self.spec(initiator=Initiator.REMOTE))
        assert packets[0].is_syn
        assert packets[0].direction is Direction.INBOUND

    def test_handshake_order(self):
        packets = expand(self.spec())
        assert packets[1].is_synack
        assert packets[1].direction is Direction.INBOUND

    def test_lifetime_matches_duration(self):
        spec = self.spec()
        packets = expand(spec)
        fins = [p for p in packets if p.is_fin or p.is_rst]
        assert fins
        assert fins[0].timestamp == pytest.approx(spec.end, abs=0.5)

    def test_bulk_bytes_delivered(self):
        spec = self.spec()
        packets = expand(spec)
        outbound_payload = sum(
            p.size - 40 for p in packets if p.direction is Direction.OUTBOUND
        )
        assert outbound_payload >= spec.bytes_client_to_remote

    def test_bidirectional(self):
        packets = expand(self.spec())
        directions = {p.direction for p in packets}
        assert directions == {Direction.OUTBOUND, Direction.INBOUND}

    def test_abortive_close_uses_rst(self):
        packets = expand(self.spec(abortive_close=True))
        assert any(p.is_rst for p in packets)
        assert not any(p.is_fin for p in packets)

    def test_payload_on_first_data_packet(self):
        packets = expand(self.spec())
        with_payload = [p for p in packets if p.payload]
        assert with_payload[0].payload.startswith(b"\x13BitTorrent protocol")

    def test_all_packets_within_reasonable_window(self):
        spec = self.spec()
        packets = expand(spec)
        assert all(spec.start <= p.timestamp <= spec.end + 1.0 for p in packets)


class TestUdpExpansion:
    def spec(self, **overrides):
        kwargs = dict(
            app="dns", start=5.0, protocol=IPPROTO_UDP,
            client_addr=parse_ipv4("10.1.0.5"), client_port=40000,
            remote_addr=parse_ipv4("9.9.9.9"), remote_port=53,
            initiator=Initiator.CLIENT, duration=0.5,
            request_payload=b"\x01\x02query",
            udp_exchanges=3,
        )
        kwargs.update(overrides)
        return ConnectionSpec(**kwargs)

    def test_exchange_count(self):
        packets = expand(self.spec())
        assert len(packets) == 6  # 3 rounds × (request + response)

    def test_alternating_directions(self):
        packets = expand(self.spec(udp_exchanges=1))
        assert packets[0].direction is Direction.OUTBOUND
        assert packets[1].direction is Direction.INBOUND

    def test_no_tcp_flags(self):
        assert all(p.flags == 0 for p in expand(self.spec()))

    def test_first_round_carries_payload(self):
        packets = expand(self.spec())
        assert packets[0].payload == b"\x01\x02query"


class TestFactories:
    def test_all_factories_produce_valid_specs(self, env):
        rng, host, space = env
        for name, factory in APP_FACTORIES.items():
            for _ in range(20):
                for spec in factory(rng, host, space, start=100.0):
                    assert spec.start >= 100.0
                    assert 0 < spec.client_port <= 65535
                    assert 0 < spec.remote_port <= 65535
                    assert spec.client_addr == host.addr
                    packets = connection_packets(spec, rng)
                    assert packets
                    times = [p.timestamp for p in packets]
                    assert times == sorted(times)

    def test_ftp_session_has_control_and_data(self, env):
        rng, host, space = env
        specs = apps.make_ftp(rng, host, space, start=0.0)
        assert len(specs) == 2
        control, data = specs
        assert control.remote_port == 21
        assert control.app == "ftp"
        assert data.app == "ftp-data"

    def test_ftp_control_announces_data_endpoint(self, env):
        rng, host, space = env
        for _ in range(10):
            control, data = apps.make_ftp(rng, host, space, start=0.0)
            script_blob = b"".join(m.payload for m in control.script)
            from repro.analyzer.classifier import parse_ftp_endpoints

            endpoints = parse_ftp_endpoints(script_blob)
            assert len(endpoints) == 1
            addr, port = endpoints[0]
            if data.initiator is Initiator.CLIENT:  # PASV
                assert (addr, port) == (data.remote_addr, data.remote_port)
            else:  # active PORT
                assert (addr, port) == (data.client_addr, data.client_port)

    def test_bittorrent_mixes_udp_and_tcp(self, env):
        rng, host, space = env
        protocols = set()
        for _ in range(200):
            for spec in apps.make_bittorrent(rng, host, space, 0.0):
                protocols.add(spec.protocol)
        assert protocols == {IPPROTO_TCP, IPPROTO_UDP}

    def test_p2p_serving_connections_are_remote_initiated(self, env):
        rng, host, space = env
        initiators = set()
        for _ in range(300):
            for spec in apps.make_bittorrent(rng, host, space, 0.0):
                if spec.protocol == IPPROTO_TCP:
                    initiators.add(spec.initiator)
        assert initiators == {Initiator.CLIENT, Initiator.REMOTE}

    def test_unknown_payloads_defeat_patterns(self, env):
        from repro.analyzer.patterns import match_payload

        rng, host, space = env
        misclassified = 0
        total = 0
        for _ in range(300):
            for spec in apps.make_unknown(rng, host, space, 0.0):
                total += 1
                if match_payload(spec.request_payload) is not None:
                    misclassified += 1
        # The loose L7 edonkey pattern catches a tiny fraction of random
        # payloads (~2 %), as it does in reality.
        assert misclassified / total < 0.08

    def test_dns_uses_port_53(self, env):
        rng, host, space = env
        [spec] = apps.make_dns(rng, host, space, 0.0)
        assert spec.remote_port == 53
        assert spec.protocol == IPPROTO_UDP

    def test_http_targets_web_ports(self, env):
        rng, host, space = env
        ports = set()
        for _ in range(100):
            [spec] = apps.make_http(rng, host, space, 0.0)
            ports.add(spec.remote_port)
        assert ports <= {80, 8080, 3128, 443}

    def test_stable_listen_port_per_host(self, env):
        rng, host, space = env
        ports = set()
        for _ in range(100):
            for spec in apps.make_bittorrent(rng, host, space, 0.0):
                if spec.protocol == IPPROTO_TCP and spec.initiator is Initiator.REMOTE:
                    ports.add(spec.client_port)
        assert len(ports) == 1
