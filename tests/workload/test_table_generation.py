"""The generator's columnar emission contract.

``TraceGenerator.iter_tables`` / ``table()`` must produce *exactly* the
stream ``packets()`` produces — same rows, same order, same field values
— for every chunk size, on both the numpy-accelerated and the pure-stdlib
merge paths.  The chunks must share one interning pool so per-flow state
carries across them, and bounded ``chunk_size`` must actually bound rows
per chunk.
"""

import pytest

import repro.net.table as table_mod
from repro.workload.generator import TraceConfig, TraceGenerator

CONFIGS = [
    TraceConfig(duration=30.0, connection_rate=6.0, seed=7),
    TraceConfig(duration=45.0, connection_rate=4.0, seed=42),
]


def fields(packets):
    return [
        (p.timestamp, p.pair, p.size, p.flags, p.payload, p.direction)
        for p in packets
    ]


@pytest.fixture(params=["numpy", "stdlib"])
def merge_path(request, monkeypatch):
    if request.param == "numpy" and not table_mod.HAVE_NUMPY:
        pytest.skip("numpy not installed")
    monkeypatch.setattr(
        table_mod, "_use_numpy", request.param == "numpy" and table_mod.HAVE_NUMPY
    )
    return request.param


class TestStreamEquivalence:
    @pytest.mark.parametrize("config", CONFIGS, ids=["seed7", "seed42"])
    def test_table_matches_packets(self, config, merge_path):
        reference = fields(TraceGenerator(config).packets())
        table = TraceGenerator(config).table()
        assert fields(table.to_packets()) == reference

    @pytest.mark.parametrize("chunk_size", [1, 97, 1024, None])
    def test_chunks_concatenate_to_packets(self, chunk_size, merge_path):
        config = CONFIGS[0]
        reference = fields(TraceGenerator(config).packets())
        got = []
        for chunk in TraceGenerator(config).iter_tables(chunk_size=chunk_size):
            if chunk_size is not None:
                assert len(chunk) <= chunk_size
            got.extend(fields(chunk.to_packets()))
        assert got == reference

    def test_chunks_share_one_interning_pool(self):
        chunks = list(TraceGenerator(CONFIGS[0]).iter_tables(chunk_size=512))
        assert len(chunks) > 1
        first = chunks[0]
        for chunk in chunks[1:]:
            assert chunk.pairs is first.pairs
            assert chunk.payloads is first.payloads

    def test_timestamps_nondecreasing_within_and_across_chunks(self):
        previous = float("-inf")
        for chunk in TraceGenerator(CONFIGS[0]).iter_tables(chunk_size=256):
            for timestamp in chunk.timestamps:
                assert timestamp >= previous
                previous = timestamp


COLUMNS = ("timestamps", "sizes", "flags", "outbound", "pair_ids", "payload_ids")


class TestChunkingByteIdentity:
    """Chunk boundaries are presentation only: concatenating any chunk
    stream reproduces the one-shot ``table()`` byte for byte — columns
    *and* interning pools.  Prime chunk sizes force boundaries to
    straddle connection row-runs; 65536 exercises the flush floor."""

    @pytest.mark.parametrize("config", CONFIGS, ids=["seed7", "seed42"])
    @pytest.mark.parametrize("chunk_size", [1, 13, 97, 311, 1024, 65536])
    def test_concat_equals_one_shot(self, config, chunk_size, merge_path):
        one_shot = TraceGenerator(config).table()
        chunks = list(TraceGenerator(config).iter_tables(chunk_size=chunk_size))
        for column in COLUMNS:
            assert b"".join(
                getattr(chunk, column).tobytes() for chunk in chunks
            ) == getattr(one_shot, column).tobytes(), column
        pool = chunks[-1]
        assert list(pool.pairs) == list(one_shot.pairs)
        assert list(pool.payloads) == list(one_shot.payloads)

    @pytest.mark.parametrize("chunk_size", [311, 4096])
    def test_parallel_chunking_matches_serial_one_shot(self, chunk_size,
                                                       merge_path):
        one_shot = TraceGenerator(CONFIGS[1]).table()
        chunks = list(
            TraceGenerator(CONFIGS[1]).iter_tables(chunk_size=chunk_size,
                                                   workers=2)
        )
        for column in COLUMNS:
            assert b"".join(
                getattr(chunk, column).tobytes() for chunk in chunks
            ) == getattr(one_shot, column).tobytes(), column


class TestNumpyStdlibIdentity:
    """The acceleration path is an optimization, never a behavior change."""

    @pytest.mark.skipif(not table_mod.HAVE_NUMPY, reason="numpy not installed")
    @pytest.mark.parametrize("chunk_size", [257, None])
    def test_bit_identical_chunks(self, monkeypatch, chunk_size):
        def emit(use_numpy):
            monkeypatch.setattr(table_mod, "_use_numpy", use_numpy)
            return [
                (
                    chunk.timestamps.tobytes(),
                    chunk.sizes.tobytes(),
                    chunk.flags.tobytes(),
                    chunk.outbound.tobytes(),
                    chunk.pair_ids.tobytes(),
                    chunk.payload_ids.tobytes(),
                )
                for chunk in TraceGenerator(CONFIGS[0]).iter_tables(
                    chunk_size=chunk_size
                )
            ]

        assert emit(True) == emit(False)
