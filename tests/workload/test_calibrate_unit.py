"""Unit tests for the calibration measurement helpers (crafted inputs)."""

import pytest

from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import Direction, Packet
from repro.workload.apps import ConnectionSpec, Initiator
from repro.workload.calibrate import TraceMeasurement, measure_specs

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR


def spec(protocol=IPPROTO_TCP, app="bittorrent", initiator=Initiator.CLIENT,
         sport=3000, duration=10.0):
    return ConnectionSpec(
        app=app, start=0.0, protocol=protocol,
        client_addr=CLIENT_ADDR, client_port=sport,
        remote_addr=REMOTE_ADDR, remote_port=6881,
        initiator=initiator, duration=duration,
    )


def packet(spec_obj, outbound=True, size=1000, t=1.0):
    pair = spec_obj.pair_from_client
    if not outbound:
        pair = pair.inverse
    return Packet(t, pair, size=size,
                  direction=Direction.OUTBOUND if outbound else Direction.INBOUND)


class TestMeasureSpecs:
    def test_counts_protocols(self):
        specs = [spec(sport=1), spec(IPPROTO_UDP, sport=2), spec(IPPROTO_UDP, sport=3)]
        measurement = measure_specs(specs, [])
        assert measurement.tcp_connections == 1
        assert measurement.udp_connections == 2
        assert measurement.tcp_connection_fraction == pytest.approx(1 / 3)

    def test_byte_attribution(self):
        a = spec(sport=1, app="bittorrent")
        b = spec(sport=2, app="http")
        packets = [packet(a, size=300), packet(b, size=700)]
        measurement = measure_specs([a, b], packets)
        assert measurement.byte_share["bittorrent"] == pytest.approx(0.3)
        assert measurement.byte_share["http"] == pytest.approx(0.7)

    def test_upload_on_inbound_connections(self):
        serving = spec(sport=1, initiator=Initiator.REMOTE)
        leeching = spec(sport=2, initiator=Initiator.CLIENT)
        packets = [
            packet(serving, outbound=True, size=800),
            packet(leeching, outbound=True, size=200),
            packet(leeching, outbound=False, size=500),
        ]
        measurement = measure_specs([serving, leeching], packets)
        assert measurement.upload_bytes == 1000
        assert measurement.download_bytes == 500
        assert measurement.upload_on_inbound_fraction == pytest.approx(0.8)

    def test_lifetimes_tcp_only(self):
        specs = [spec(sport=1, duration=10.0), spec(IPPROTO_UDP, sport=2, duration=99.0)]
        measurement = measure_specs(specs, [])
        assert measurement.mean_lifetime == pytest.approx(10.0)

    def test_duration_from_packets(self):
        a = spec(sport=1)
        packets = [packet(a, t=2.0), packet(a, t=12.0)]
        measurement = measure_specs([a], packets)
        assert measurement.duration == pytest.approx(10.0)
        assert measurement.mean_throughput_mbps == pytest.approx(2000 * 8 / 10 / 1e6)

    def test_empty_measurement_defaults(self):
        measurement = TraceMeasurement()
        assert measurement.tcp_connection_fraction == 0.0
        assert measurement.upload_byte_fraction == 0.0
        assert measurement.upload_on_inbound_fraction == 0.0
        assert measurement.mean_throughput_mbps == 0.0
