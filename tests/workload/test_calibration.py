"""Calibration of the synthetic trace against the paper's aggregates.

These bands are deliberately generous: a 2-minute scaled-down trace has
real sampling noise, and the paper's numbers come from 7.5 hours.  The
*shape* is what must hold (see DESIGN.md).
"""

import pytest

from repro.workload.calibrate import (
    DEFAULT_APP_MIX,
    PAPER_TARGETS,
    measure_specs,
    share_error,
    table2_group,
)
from repro.workload.generator import TraceConfig, TraceGenerator


@pytest.fixture(scope="module")
def measured():
    generator = TraceGenerator(TraceConfig(duration=120.0, connection_rate=15.0, seed=2))
    packets = generator.packets()
    return measure_specs(generator.specs(), packets)


class TestProtocolMix:
    def test_tcp_connection_fraction(self, measured):
        # Paper: 29.8 % TCP / 70.1 % UDP.
        assert measured.tcp_connection_fraction == pytest.approx(
            PAPER_TARGETS.tcp_connection_fraction, abs=0.08
        )

    def test_tcp_byte_fraction(self, measured):
        # Paper: 99.5 % of bytes on TCP.
        assert measured.tcp_byte_fraction > 0.97

    def test_connection_shares_near_table2(self, measured):
        assert share_error(measured.connection_share, PAPER_TARGETS.connection_share) < 0.06

    def test_byte_shares_near_table2(self, measured):
        assert share_error(measured.byte_share, PAPER_TARGETS.byte_share) < 0.13

    def test_p2p_dominates_bytes(self, measured):
        p2p = sum(
            measured.byte_share.get(group, 0.0)
            for group in ("bittorrent", "edonkey", "gnutella", "unknown")
        )
        assert p2p > 0.75  # paper: 90 %


class TestDirectionality:
    def test_mostly_upload(self, measured):
        # Paper: 89.8 % upload.
        assert 0.75 <= measured.upload_byte_fraction <= 0.97

    def test_upload_rides_inbound_connections(self, measured):
        # Paper: 80 % of outbound bytes on inbound-initiated connections.
        assert 0.70 <= measured.upload_on_inbound_fraction <= 0.95


class TestLifetimes:
    def test_mean_lifetime(self, measured):
        assert 30.0 <= measured.mean_lifetime <= 70.0  # paper 45.84 s

    def test_q90(self, measured):
        assert measured.lifetime_quantiles[0.9] <= 46.0

    def test_q95(self, measured):
        assert measured.lifetime_quantiles[0.95] <= 260.0


class TestMixDefinition:
    def test_mix_sums_to_one(self):
        assert sum(DEFAULT_APP_MIX.values()) == pytest.approx(1.0, abs=0.01)

    def test_table2_grouping(self):
        assert table2_group("bittorrent") == "bittorrent"
        assert table2_group("dns") == "others"
        assert table2_group("ftp-data") == "others"
        assert table2_group("unknown") == "unknown"

    def test_share_error_helper(self):
        assert share_error({"a": 0.5}, {"a": 0.4}) == pytest.approx(0.1)
        assert share_error({"a": 0.5}, {"b": 0.5}) == pytest.approx(0.5)
