"""Tests for the workload distributions."""

import random

import pytest

from repro.workload.distributions import (
    bounded_pareto,
    connection_lifetime,
    diurnal_rate,
    lognormal,
    out_in_delay,
    p2p_listen_port,
    poisson_arrivals,
    split_bytes,
    weighted_mix,
    zipf_choice,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestBoundedPareto:
    def test_within_bounds(self, rng):
        for _ in range(1000):
            value = bounded_pareto(rng, alpha=1.5, low=10.0, high=100.0)
            assert 10.0 <= value <= 100.0

    def test_heavy_head(self, rng):
        samples = [bounded_pareto(rng, 1.5, 1.0, 1000.0) for _ in range(5000)]
        below_ten = sum(1 for s in samples if s < 10.0) / len(samples)
        assert below_ten > 0.9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bounded_pareto(rng, 1.5, 10.0, 10.0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, 0.0, 1.0, 10.0)


class TestConnectionLifetime:
    """The Figure 4 quantile targets."""

    def test_q90_under_45s(self, rng):
        samples = sorted(connection_lifetime(rng) for _ in range(20_000))
        assert samples[int(0.9 * len(samples))] <= 45.0

    def test_q95_under_4min(self, rng):
        samples = sorted(connection_lifetime(rng) for _ in range(20_000))
        assert samples[int(0.95 * len(samples))] <= 241.0

    def test_under_one_percent_over_810s(self, rng):
        samples = [connection_lifetime(rng) for _ in range(20_000)]
        assert sum(1 for s in samples if s > 810.0) / len(samples) < 0.012

    def test_mean_near_paper(self, rng):
        samples = [connection_lifetime(rng) for _ in range(40_000)]
        mean = sum(samples) / len(samples)
        assert 30.0 <= mean <= 70.0  # paper: 45.84 s

    def test_capped_at_six_hours(self, rng):
        assert all(connection_lifetime(rng) <= 21600.0 for _ in range(5000))

    def test_positive(self, rng):
        assert all(connection_lifetime(rng) > 0.0 for _ in range(2000))


class TestOutInDelay:
    def test_q99_under_2_8s(self, rng):
        # The paper: 99 % of out-in delays under 2.8 s.
        samples = sorted(out_in_delay(rng) for _ in range(20_000))
        assert samples[int(0.99 * len(samples))] <= 2.9

    def test_positive(self, rng):
        assert all(out_in_delay(rng) > 0.0 for _ in range(2000))

    def test_mostly_subsecond(self, rng):
        samples = [out_in_delay(rng) for _ in range(5000)]
        assert sum(1 for s in samples if s < 1.0) / len(samples) > 0.85


class TestPorts:
    def test_p2p_random_port_range(self, rng):
        ports = [p2p_listen_port(rng, (), 0.0) for _ in range(1000)]
        assert all(10000 <= port <= 40000 for port in ports)

    def test_well_known_weight(self, rng):
        ports = [p2p_listen_port(rng, (6881,), 1.0) for _ in range(100)]
        assert all(port == 6881 for port in ports)

    def test_mixed(self, rng):
        ports = [p2p_listen_port(rng, (6881,), 0.5) for _ in range(2000)]
        well_known = sum(1 for port in ports if port == 6881)
        assert 0.4 < well_known / len(ports) < 0.6


class TestArrivals:
    def test_rate(self, rng):
        times = poisson_arrivals(rng, rate=10.0, duration=1000.0)
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_within_window(self, rng):
        times = poisson_arrivals(rng, rate=5.0, duration=10.0, start=100.0)
        assert all(100.0 <= t < 110.0 for t in times)

    def test_sorted(self, rng):
        times = poisson_arrivals(rng, rate=20.0, duration=50.0)
        assert times == sorted(times)

    def test_zero_rate(self, rng):
        assert poisson_arrivals(rng, rate=0.0, duration=100.0) == []

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(rng, rate=-1.0, duration=10.0)


class TestSplitBytes:
    def test_total_preserved(self, rng):
        chunks = split_bytes(rng, 100_000, 1200)
        assert sum(chunks) == 100_000

    def test_mss_respected(self, rng):
        assert all(chunk <= 1460 for chunk in split_bytes(rng, 50_000, 1400))

    def test_zero(self, rng):
        assert split_bytes(rng, 0, 1200) == []

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            split_bytes(rng, -1, 1200)


class TestMisc:
    def test_lognormal_median(self, rng):
        samples = sorted(lognormal(rng, median=10.0, sigma=1.0) for _ in range(20_000))
        assert samples[len(samples) // 2] == pytest.approx(10.0, rel=0.1)

    def test_zipf_prefers_head(self, rng):
        picks = [zipf_choice(rng, ["a", "b", "c", "d"]) for _ in range(5000)]
        assert picks.count("a") > picks.count("d")

    def test_zipf_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            zipf_choice(rng, [])

    def test_diurnal_rate_bounds(self):
        for t in range(0, 86400, 3600):
            rate = diurnal_rate(100.0, float(t), amplitude=0.3)
            assert 70.0 <= rate <= 130.0

    def test_weighted_mix(self, rng):
        picks = [weighted_mix(rng, [("x", 9.0), ("y", 1.0)]) for _ in range(5000)]
        assert 0.85 < picks.count("x") / len(picks) < 0.95

    def test_weighted_mix_empty(self, rng):
        with pytest.raises(ValueError):
            weighted_mix(rng, [])
