"""Failure injection: malformed, duplicated, reordered and truncated input.

Network code meets hostile input; every layer must degrade gracefully —
skip, not crash, and keep its accounting consistent.
"""

import random

import pytest

from repro.analyzer.classifier import TrafficAnalyzer
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.spi import SPIFilter
from repro.net.headers import HeaderError, decode_packet, encode_packet
from repro.net.packet import Direction

from tests.conftest import in_packet, out_packet, tcp_pair


@pytest.fixture(scope="module")
def tiny_trace(request):
    small_trace = request.getfixturevalue("small_trace")
    return small_trace[:20_000]


class TestMalformedWireData:
    def test_random_bytes_never_crash_decoder(self):
        rng = random.Random(13)
        decoded = 0
        for _ in range(500):
            blob = bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 80)))
            try:
                decode_packet(blob, verify_checksums=True)
                decoded += 1
            except HeaderError:
                pass
        # With checksum verification, random bytes essentially never form
        # a valid IPv4 packet (the analyzer's discard rule).
        assert decoded < 5

    def test_flipped_bits_rejected_or_parsed(self):
        rng = random.Random(14)
        data = bytearray(encode_packet(tcp_pair(), payload=b"x" * 40))
        for _ in range(200):
            corrupted = bytearray(data)
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
            try:
                decode_packet(bytes(corrupted), verify_checksums=True)
            except HeaderError:
                continue  # rejection is the expected common case

    def test_truncated_capture_snaplen(self):
        # Header-only captures (snaplen 64) still parse headers; payload
        # is simply shorter.
        data = encode_packet(tcp_pair(), payload=b"y" * 500)[:64]
        packet = decode_packet(data)
        assert packet.pair == tcp_pair()
        assert len(packet.payload) <= 24


class TestDuplicatedPackets:
    def test_filters_idempotent_under_duplication(self, tiny_trace):
        """Duplicating every packet must not change any verdict: the
        duplicate of a passed packet passes, of a dropped packet drops."""
        filt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
        )
        for packet in tiny_trace[:5000]:
            first = filt.process(packet)
            second = filt.process(packet)
            assert first is second

    def test_analyzer_counts_duplicates(self, tiny_trace):
        doubled = [p for packet in tiny_trace[:4000] for p in (packet, packet)]
        analyzer = TrafficAnalyzer().analyze(doubled)
        assert analyzer.packets_seen == 8000


class TestReordering:
    def _jitter(self, packets, scale, seed=5):
        rng = random.Random(seed)
        shuffled = [
            (packet.timestamp + rng.uniform(-scale, scale), packet)
            for packet in packets
        ]
        shuffled.sort(key=lambda item: item[0])
        return [packet for _, packet in shuffled]

    def test_bitmap_tolerates_small_reordering(self, tiny_trace):
        """Millisecond-scale reordering (normal in the Internet) must not
        meaningfully change the drop rate."""
        in_order = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
        )
        reordered = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
        )
        for packet in tiny_trace:
            in_order.process(packet)
        for packet in self._jitter(tiny_trace, scale=0.002):
            reordered.process(packet)
        a = in_order.stats.drop_rate(Direction.INBOUND)
        b = reordered.stats.drop_rate(Direction.INBOUND)
        assert abs(a - b) < 0.02

    def test_spi_tolerates_small_reordering(self, tiny_trace):
        spi = SPIFilter(idle_timeout=240.0)
        for packet in self._jitter(tiny_trace, scale=0.002):
            spi.process(packet)
        assert 0.0 <= spi.stats.drop_rate(Direction.INBOUND) < 0.3

    def test_analyzer_survives_gross_reordering(self, tiny_trace):
        """Second-scale reordering degrades measurements but never
        crashes or corrupts flow accounting."""
        analyzer = TrafficAnalyzer().analyze(self._jitter(tiny_trace, scale=2.0))
        assert analyzer.flows
        assert all(flow.packets > 0 for flow in analyzer.flows)


class TestPathologicalStreams:
    def test_syn_flood_constant_memory(self):
        """A spoofed inbound SYN flood: the bitmap filter drops it all in
        constant memory, no state explosion (the DoS-resistance corollary
        of the paper's design)."""
        filt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 16, vectors=4, hashes=3, rotate_interval=5.0)
        )
        rng = random.Random(3)
        before = filt.memory_bytes
        for i in range(20_000):
            packet = in_packet(
                pair=tcp_pair(sport=rng.randint(1024, 65000),
                              dport=rng.randint(1024, 65000)).inverse,
                t=i * 0.0001,
                flags=0x02,
            )
            filt.process(packet)
        assert filt.memory_bytes == before
        assert filt.stats.drop_rate(Direction.INBOUND) > 0.99

    def test_spi_table_grows_under_outbound_flood(self):
        """Contrast: an *outbound* port-scan blows up SPI state — the O(n)
        the paper warns about — while the bitmap stays flat."""
        spi = SPIFilter(idle_timeout=240.0)
        for i in range(5000):
            spi.process(out_packet(pair=tcp_pair(sport=1024 + (i % 60000),
                                                 dport=i % 65535 + 1),
                                   t=i * 0.001))
        assert spi.tracked_flows > 4000

    def test_zero_size_packets(self):
        filt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
        )
        filt.process(out_packet(t=0.0, size=0))
        assert filt.process(in_packet(t=0.1, size=0)).value == "pass"

    def test_identical_timestamps(self):
        filt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3, rotate_interval=5.0)
        )
        for i in range(100):
            filt.process(out_packet(pair=tcp_pair(sport=1024 + i), t=5.0))
        assert filt.core.stats.outbound_marked == 100
