"""Tests for the Table 1 identification patterns."""

import random

import pytest

from repro.analyzer.patterns import (
    MATCH_LIMIT,
    WELL_KNOWN_TCP_PORTS,
    WELL_KNOWN_UDP_PORTS,
    match_payload,
    port_application,
)
from repro.workload import apps


@pytest.fixture
def rng():
    return random.Random(77)


class TestBittorrent:
    def test_handshake(self, rng):
        assert match_payload(apps.bittorrent_handshake(rng)) == "bittorrent"

    def test_handshake_literal(self):
        assert match_payload(b"\x13BitTorrent protocol" + b"\x00" * 48) == "bittorrent"

    def test_dht_query(self, rng):
        assert match_payload(apps.bittorrent_dht_query(rng)) == "bittorrent"

    def test_tracker_scrape_beats_http(self):
        # Tunnelled over HTTP but must classify as bittorrent.
        assert match_payload(b"GET /scrape?info_hash=abc HTTP/1.1\r\n") == "bittorrent"

    def test_tracker_announce(self):
        assert match_payload(b"GET /announce?info_hash=xyz HTTP/1.0\r\n") == "bittorrent"


class TestEdonkey:
    def test_tcp_hello(self, rng):
        assert match_payload(apps.edonkey_hello(rng)) == "edonkey"

    def test_udp_ping(self, rng):
        assert match_payload(apps.edonkey_udp_ping(rng)) == "edonkey"

    def test_literal_frame(self):
        # 0xe3 protocol, 4-byte length, opcode 0x01 (hello).
        frame = b"\xe3\x10\x00\x00\x00\x01" + b"\x00" * 16
        assert match_payload(frame) == "edonkey"

    def test_plain_text_not_edonkey(self):
        assert match_payload(b"hello world, this is text") != "edonkey"


class TestGnutella:
    def test_connect(self):
        assert match_payload(apps.gnutella_connect()) == "gnutella"

    def test_ok_response(self):
        assert match_payload(apps.gnutella_ok()) == "gnutella"

    def test_udp_gnd(self, rng):
        assert match_payload(apps.gnutella_udp(rng)) == "gnutella"

    def test_uri_res_beats_http(self):
        payload = b"GET /uri-res/N2R?urn:sha1:ABCDEF HTTP/1.1\r\n"
        assert match_payload(payload) == "gnutella"

    def test_giv_upload(self):
        assert match_payload(b"GIV 42:abcdef0123456789/file.mp3\n\n") == "gnutella"


class TestFasttrack:
    def test_hash_request(self, rng):
        assert match_payload(apps.fasttrack_get(rng)) == "fasttrack"

    def test_supernode(self):
        assert match_payload(b"GET /.supernode HTTP/1.0") == "fasttrack"


class TestHttpFtp:
    def test_http_get(self, rng):
        assert match_payload(apps.http_get(rng)) == "http"

    def test_http_response(self):
        assert match_payload(apps.http_response()) == "http"

    def test_http_post(self):
        assert match_payload(b"POST /form HTTP/1.1\r\nHost: x\r\n") == "http"

    def test_ftp_banner(self):
        assert match_payload(apps.ftp_banner()) == "ftp"

    def test_ftp_requires_ftp_string(self):
        # An SMTP 220 banner must not classify as FTP.
        assert match_payload(b"220 mail.example.com ESMTP Postfix\r\n") != "ftp"

    def test_ssh_banner(self):
        assert match_payload(b"SSH-2.0-OpenSSH_4.3\r\n") == "ssh"

    def test_smtp_banner(self):
        assert match_payload(b"220 mail.example.com ESMTP Postfix\r\n") == "smtp"

    def test_imap_greeting(self):
        assert match_payload(b"* OK IMAP4rev1 server ready\r\n") == "imap"


class TestMatcherMechanics:
    def test_empty_stream(self):
        assert match_payload(b"") is None

    def test_unmatched_text(self):
        assert match_payload(b"just some random text here") is None

    def test_match_anchored_at_start(self):
        # Patterns are start-anchored: mid-stream occurrences don't match.
        assert match_payload(b"xxxx\x13BitTorrent protocol") is None

    def test_match_limit_bounds_work(self):
        long_stream = b"A" * (MATCH_LIMIT + 100) + b"\x13BitTorrent protocol"
        assert match_payload(long_stream) is None

    def test_case_insensitive(self):
        assert match_payload(b"get / http/1.1\r\n") == "http"
        assert match_payload(b"GNUTELLA CONNECT/0.6\r\n") == "gnutella"


class TestPortFallback:
    def test_tcp_http_ports(self):
        for port in (80, 8080, 3128, 443):
            assert port_application(True, 0, port) == "http"

    def test_tcp_ftp(self):
        assert port_application(True, 0, 21) == "ftp"
        assert port_application(True, 0, 20) == "ftp-data"

    def test_tcp_p2p_ports(self):
        assert port_application(True, 0, 4662) == "edonkey"
        assert port_application(True, 0, 6881) == "bittorrent"
        assert port_application(True, 0, 6346) == "gnutella"

    def test_tcp_unknown_port(self):
        assert port_application(True, 0, 23456) is None

    def test_udp_either_port(self):
        assert port_application(False, 53, 40000) == "dns"
        assert port_application(False, 40000, 53) == "dns"
        assert port_application(False, 4672, 31000) == "edonkey"

    def test_udp_unknown(self):
        assert port_application(False, 30000, 31000) is None

    def test_tables_disjoint_semantics(self):
        # TCP table must include the web/ftp ports; UDP must include DNS.
        assert 80 in WELL_KNOWN_TCP_PORTS
        assert 53 in WELL_KNOWN_UDP_PORTS
