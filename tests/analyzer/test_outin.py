"""Tests for out-in packet delay measurement (section 3.3 procedure)."""

import pytest

from repro.analyzer.outin import OutInDelayMeter

from tests.conftest import in_packet, out_packet, tcp_pair


class TestBasicMeasurement:
    def test_basic_delay(self):
        meter = OutInDelayMeter()
        meter.observe(out_packet(t=1.0))
        delay = meter.observe(in_packet(t=1.25))
        assert delay == pytest.approx(0.25)
        assert meter.delays == [pytest.approx(0.25)]

    def test_inbound_without_prior_outbound(self):
        meter = OutInDelayMeter()
        assert meter.observe(in_packet(t=1.0)) is None
        assert not meter.delays

    def test_outbound_refreshes_timestamp(self):
        meter = OutInDelayMeter()
        meter.observe(out_packet(t=1.0))
        meter.observe(out_packet(t=2.0))
        assert meter.observe(in_packet(t=2.1)) == pytest.approx(0.1)

    def test_different_pairs_independent(self):
        meter = OutInDelayMeter()
        meter.observe(out_packet(pair=tcp_pair(sport=1000), t=1.0))
        assert meter.observe(in_packet(pair=tcp_pair(sport=2000).inverse, t=1.5)) is None

    def test_repeated_inbound_measures_each_time(self):
        # Step 2 reads t0 without deleting: a burst of inbound packets all
        # measure against the last outbound packet.
        meter = OutInDelayMeter()
        meter.observe(out_packet(t=1.0))
        meter.observe(in_packet(t=1.1))
        meter.observe(in_packet(t=1.2))
        assert len(meter.delays) == 2


class TestExpiry:
    def test_expired_entry_not_measured(self):
        meter = OutInDelayMeter(expiry=600.0)
        meter.observe(out_packet(t=0.0))
        assert meter.observe(in_packet(t=700.0)) is None

    def test_port_reuse_artifact_within_expiry(self):
        # A reused five-tuple within T_e yields a bogus large 'delay' equal
        # to the reuse gap — the Figure 5-a peaks.
        meter = OutInDelayMeter(expiry=600.0)
        meter.observe(out_packet(t=0.0))
        delay = meter.observe(in_packet(t=120.3))
        assert delay == pytest.approx(120.3)

    def test_short_expiry_suppresses_artifact(self):
        meter = OutInDelayMeter(expiry=20.0)
        meter.observe(out_packet(t=0.0))
        assert meter.observe(in_packet(t=120.3)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            OutInDelayMeter(expiry=0.0)


class TestReporting:
    def fill(self):
        meter = OutInDelayMeter()
        for i in range(100):
            meter.observe(out_packet(pair=tcp_pair(sport=1000 + i), t=float(i)))
            meter.observe(
                in_packet(pair=tcp_pair(sport=1000 + i).inverse, t=i + (i + 1) / 100.0)
            )
        return meter

    def test_quantile(self):
        meter = self.fill()
        assert meter.quantile(0.5) == pytest.approx(0.51, abs=0.02)
        assert meter.quantile(0.99) == pytest.approx(1.0, abs=0.02)

    def test_cdf_at(self):
        meter = self.fill()
        assert meter.cdf_at(0.5) == pytest.approx(0.5, abs=0.02)
        assert meter.cdf_at(10.0) == 1.0

    def test_histogram(self):
        meter = self.fill()
        histogram = meter.histogram(bin_width=0.25)
        assert sum(count for _, count in histogram) == 100
        assert histogram[0][0] == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            self.fill().quantile(1.5)
        with pytest.raises(ValueError):
            OutInDelayMeter().quantile(0.5)

    def test_len(self):
        assert len(self.fill()) == 100

    def test_direction_required(self):
        from repro.net.packet import Packet

        meter = OutInDelayMeter()
        with pytest.raises(ValueError):
            meter.observe(Packet(0.0, tcp_pair(), 40))
