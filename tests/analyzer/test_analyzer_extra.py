"""Additional analyzer behaviours: edge cases the main suites skip."""

from repro.analyzer.classifier import ClassifierStats, ConnectionClassifier, TrafficAnalyzer
from repro.net.flows import ConnectionTable
from repro.net.headers import TCPFlags

from tests.conftest import in_packet, out_packet, tcp_pair, udp_pair


class Harness:
    def __init__(self):
        self.table = ConnectionTable()
        self.classifier = ConnectionClassifier()

    def feed(self, packet):
        record = self.table.observe(packet)
        self.classifier.observe(packet, record)
        return record

    def finish(self):
        self.table.flush()
        self.classifier.finalize(self.table)
        return self.table.finished


class TestMidStreamCapture:
    def test_mid_stream_tcp_falls_back_to_ports(self):
        """A connection captured mid-stream (no SYN seen) cannot be
        payload-matched, only port-matched — the paper's SYN rule."""
        harness = Harness()
        pair = tcp_pair(dport=80)
        harness.feed(out_packet(pair=pair, t=0.0, flags=TCPFlags.ACK,
                                payload=b"GET / HTTP/1.1\r\n"))
        flows = harness.finish()
        assert flows[0].application == "http"  # via port 80, not payload

    def test_mid_stream_unknown_port_is_unknown(self):
        harness = Harness()
        pair = tcp_pair(dport=23999)
        harness.feed(out_packet(pair=pair, t=0.0, flags=TCPFlags.ACK,
                                payload=b"GET / HTTP/1.1\r\n"))
        flows = harness.finish()
        assert flows[0].application == "unknown"


class TestClassifierStats:
    def test_stats_accumulate(self):
        harness = Harness()
        pair = tcp_pair(dport=8000)
        harness.feed(out_packet(pair=pair, t=0.0, flags=TCPFlags.SYN))
        harness.feed(out_packet(pair=pair, t=0.1,
                                payload=b"GET / HTTP/1.1\r\nHost: x\r\n"))
        harness.finish()
        stats = harness.classifier.stats
        assert stats.payload_identified >= 1

    def test_stats_as_dict(self):
        stats = ClassifierStats(payload_identified=3, unidentified=2)
        data = stats.as_dict()
        assert data["payload"] == 3
        assert data["unknown"] == 2


class TestUdpClassification:
    def test_udp_second_datagram_can_identify(self):
        """UDP payloads are matched per datagram — a later identifiable
        datagram classifies a so-far-unknown connection."""
        harness = Harness()
        pair = udp_pair(dport=31000)
        harness.feed(out_packet(pair=pair, t=0.0, payload=b"\x00" * 30))
        record = harness.feed(
            out_packet(pair=pair, t=0.2, payload=b"GND\x02" + b"\x01" * 10)
        )
        assert record.application == "gnutella"

    def test_udp_inbound_first(self):
        harness = Harness()
        pair = udp_pair(dport=6881).inverse
        record = harness.feed(in_packet(pair=pair, t=0.0,
                                        payload=b"d1:ad2:id20:" + b"A" * 20))
        assert record.application == "bittorrent"


class TestAnalyzerConfigs:
    def test_outin_tracking_optional(self, small_trace):
        analyzer = TrafficAnalyzer(track_outin=False)
        for packet in small_trace[:2000]:
            analyzer.observe(packet)
        assert analyzer.outin is None

    def test_bytes_accounted(self, small_trace):
        analyzer = TrafficAnalyzer().analyze(small_trace[:1000])
        assert analyzer.bytes_seen == sum(p.size for p in small_trace[:1000])

    def test_flows_property_after_finalize(self, small_trace):
        analyzer = TrafficAnalyzer().analyze(small_trace[:5000])
        assert analyzer.flows == analyzer.table.finished
