"""Tests for Table 2 / Figures 2-5 report builders."""

import pytest

from repro.analyzer.classifier import TrafficAnalyzer
from repro.analyzer.report import (
    CLASS_ALL,
    CLASS_NON_P2P,
    CLASS_P2P,
    CLASS_UNKNOWN,
    cdf_value,
    lifetime_report,
    port_cdf,
    protocol_distribution,
    utilization_summary,
)
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP


@pytest.fixture(scope="module")
def analyzed(request):
    small_trace = request.getfixturevalue("small_trace")
    return TrafficAnalyzer().analyze(small_trace)


class TestProtocolDistribution:
    def test_shares_sum_to_one(self, analyzed):
        rows = protocol_distribution(analyzed.flows)
        assert sum(row.connection_share for row in rows) == pytest.approx(1.0)
        assert sum(row.byte_share for row in rows) == pytest.approx(1.0)

    def test_table2_groups_present(self, analyzed):
        groups = {row.protocol for row in protocol_distribution(analyzed.flows)}
        assert {"bittorrent", "edonkey", "unknown"} <= groups

    def test_empty_flows(self):
        assert protocol_distribution([]) == []

    def test_rows_sorted_by_bytes(self, analyzed):
        rows = protocol_distribution(analyzed.flows)
        assert [row.bytes for row in rows] == sorted(
            (row.bytes for row in rows), reverse=True
        )


class TestPortCdf:
    def test_classes_present(self, analyzed):
        cdf = port_cdf(analyzed.flows, protocol=IPPROTO_TCP)
        assert CLASS_ALL in cdf
        assert CLASS_P2P in cdf

    def test_cdf_monotone_and_bounded(self, analyzed):
        for points in port_cdf(analyzed.flows, protocol=IPPROTO_TCP).values():
            fractions = [fraction for _, fraction in points]
            assert fractions == sorted(fractions)
            assert fractions[-1] == pytest.approx(1.0)
            ports = [port for port, _ in points]
            assert ports == sorted(ports)

    def test_p2p_ports_are_high(self, analyzed):
        # "a great deal of random ports between 10000 and 40000": the P2P
        # class has much more mass above 10000 than the non-P2P class.
        cdf = port_cdf(analyzed.flows, protocol=IPPROTO_TCP)
        p2p_low = cdf_value(cdf[CLASS_P2P], 9999)
        non_p2p_low = cdf_value(cdf[CLASS_NON_P2P], 9999)
        assert non_p2p_low > 0.9  # well-known service ports dominate
        assert p2p_low < 0.6

    def test_unknown_resembles_p2p(self, analyzed):
        cdf = port_cdf(analyzed.flows, protocol=IPPROTO_TCP)
        if CLASS_UNKNOWN in cdf:
            assert cdf_value(cdf[CLASS_UNKNOWN], 9999) < 0.6

    def test_udp_counts_both_ports(self, analyzed):
        cdf = port_cdf(analyzed.flows, protocol=IPPROTO_UDP)
        udp_flows = [f for f in analyzed.flows if f.pair.protocol == IPPROTO_UDP]
        # ALL class has 2 samples per flow; the final cumulative count must
        # reflect every flow twice.  (CDF normalizes, so check sample count
        # indirectly via distinct values being <= 2 * flows.)
        assert len(cdf[CLASS_ALL]) <= 2 * len(udp_flows)

    def test_cdf_value_before_first_point(self, analyzed):
        cdf = port_cdf(analyzed.flows, protocol=IPPROTO_TCP)
        assert cdf_value(cdf[CLASS_ALL], -1) == 0.0


class TestLifetimeReport:
    def test_report_shape(self, analyzed):
        report = lifetime_report(analyzed.flows)
        assert report.count > 0
        assert report.mean > 0
        assert 0.9 in report.quantiles
        assert report.histogram

    def test_quantiles_monotone(self, analyzed):
        report = lifetime_report(analyzed.flows)
        values = [report.quantiles[q] for q in sorted(report.quantiles)]
        assert values == sorted(values)

    def test_histogram_truncated(self, analyzed):
        report = lifetime_report(analyzed.flows, max_lifetime=100.0)
        assert all(start <= 100.0 for start, _ in report.histogram)

    def test_no_tcp_flows_raises(self):
        with pytest.raises(ValueError):
            lifetime_report([])


class TestUtilizationSummary:
    def test_shares(self, analyzed, small_trace):
        from repro.net.packet import Direction

        upload = sum(p.size for p in small_trace if p.direction is Direction.OUTBOUND)
        duration = small_trace[-1].timestamp - small_trace[0].timestamp
        summary = utilization_summary(analyzed.flows, duration, upload)
        assert summary.tcp_connection_share + summary.udp_connection_share == pytest.approx(1.0)
        assert 0.9 < summary.tcp_byte_share <= 1.0
        assert 0.5 < summary.upload_byte_share < 1.0
        assert summary.mean_throughput_mbps > 0

    def test_validation(self, analyzed):
        with pytest.raises(ValueError):
            utilization_summary(analyzed.flows, 0.0, 10)
        with pytest.raises(ValueError):
            utilization_summary([], 10.0, 10)
