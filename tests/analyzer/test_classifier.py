"""Tests for the two-stage connection classifier."""

from repro.analyzer.classifier import (
    MAX_TCP_DATA_PACKETS,
    ConnectionClassifier,
    TrafficAnalyzer,
    parse_ftp_endpoints,
)
from repro.net.flows import ConnectionTable
from repro.net.headers import TCPFlags
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import SocketPair
from repro.workload import apps

from tests.conftest import (
    CLIENT_ADDR,
    REMOTE_ADDR,
    in_packet,
    out_packet,
    tcp_pair,
    udp_pair,
)


class Harness:
    """Feed packets through table+classifier like the analyzer does."""

    def __init__(self):
        self.table = ConnectionTable()
        self.classifier = ConnectionClassifier()

    def feed(self, packet):
        record = self.table.observe(packet)
        self.classifier.observe(packet, record)
        return record

    def finish(self):
        self.table.flush()
        self.classifier.finalize(self.table)
        return self.table.finished


def tcp_handshake(harness, pair, t=0.0):
    harness.feed(out_packet(pair=pair, t=t, flags=TCPFlags.SYN))
    harness.feed(in_packet(pair=pair.inverse, t=t + 0.01,
                           flags=TCPFlags.SYN | TCPFlags.ACK))
    harness.feed(out_packet(pair=pair, t=t + 0.02, flags=TCPFlags.ACK))


class TestPayloadIdentification:
    def test_http_by_request(self):
        harness = Harness()
        pair = tcp_pair(dport=8000)  # non-well-known: payload must decide
        tcp_handshake(harness, pair)
        record = harness.feed(
            out_packet(pair=pair, t=0.1, payload=b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
        )
        assert record.application == "http"

    def test_ftp_by_server_banner(self):
        # The identifying payload comes from the *responder* stream.
        harness = Harness()
        pair = tcp_pair(dport=2121)
        tcp_handshake(harness, pair)
        record = harness.feed(in_packet(pair=pair.inverse, t=0.1, payload=apps.ftp_banner()))
        assert record.application == "ftp"

    def test_udp_each_datagram_examined(self):
        harness = Harness()
        pair = udp_pair(dport=30000)
        harness.feed(out_packet(pair=pair, t=0.0, payload=b"\x00" * 8))
        record = harness.feed(
            out_packet(pair=pair, t=0.1, payload=b"d1:ad2:id20:" + b"A" * 20)
        )
        assert record.application == "bittorrent"

    def test_tcp_without_syn_not_payload_matched(self):
        # "we only examine TCP connections with an explicitly TCP-SYN packet"
        harness = Harness()
        pair = tcp_pair(dport=9000)
        record = harness.feed(
            out_packet(pair=pair, t=0.0, flags=TCPFlags.ACK,
                       payload=b"GET / HTTP/1.1\r\n")
        )
        assert record.application != "http"

    def test_stream_concatenation_across_packets(self):
        # The pattern spans two data packets: only the concatenated stream
        # matches.
        harness = Harness()
        pair = tcp_pair(dport=9000)
        tcp_handshake(harness, pair)
        harness.feed(out_packet(pair=pair, t=0.1, payload=b"GET /index.html"))
        record = harness.feed(out_packet(pair=pair, t=0.2, payload=b" HTTP/1.1\r\n"))
        assert record.application == "http"

    def test_concatenation_limit_four_packets(self):
        harness = Harness()
        pair = tcp_pair(dport=9000)
        tcp_handshake(harness, pair)
        for i in range(MAX_TCP_DATA_PACKETS):
            harness.feed(out_packet(pair=pair, t=0.1 + i * 0.1, payload=b"junk"))
        # The 5th data packet would match, but is beyond the limit.
        record = harness.feed(
            out_packet(pair=pair, t=1.0, payload=b"\x13BitTorrent protocol")
        )
        assert record.application != "bittorrent"


class TestPortFallback:
    def test_tcp_port_fallback_at_close(self):
        harness = Harness()
        pair = tcp_pair(dport=80)
        tcp_handshake(harness, pair)
        harness.feed(out_packet(pair=pair, t=1.0, flags=TCPFlags.FIN | TCPFlags.ACK))
        flows = harness.finish()
        assert flows[0].application == "http"

    def test_udp_port_fallback(self):
        harness = Harness()
        harness.feed(out_packet(pair=udp_pair(dport=53), payload=b"\x12\x34"))
        flows = harness.finish()
        assert flows[0].application == "dns"

    def test_unknown_when_nothing_matches(self):
        harness = Harness()
        pair = tcp_pair(dport=23456)
        tcp_handshake(harness, pair)
        harness.feed(out_packet(pair=pair, t=0.1, payload=b"\x99\x88\x77" * 10))
        flows = harness.finish()
        assert flows[0].application == "unknown"

    def test_payload_beats_port(self):
        # BitTorrent handshake on port 80 is bittorrent, not http.
        harness = Harness()
        pair = tcp_pair(dport=80)
        tcp_handshake(harness, pair)
        record = harness.feed(
            out_packet(pair=pair, t=0.1, payload=b"\x13BitTorrent protocol" + b"\x00" * 20)
        )
        assert record.application == "bittorrent"


class TestP2PEndpointPropagation:
    def test_future_connections_to_same_endpoint(self):
        harness = Harness()
        first = tcp_pair(sport=4001, dport=31337)
        tcp_handshake(harness, first)
        record = harness.feed(
            out_packet(pair=first, t=0.1,
                       payload=b"\x13BitTorrent protocol" + b"\x00" * 20)
        )
        assert record.application == "bittorrent"
        # A later connection from a different client port to B:y, carrying
        # no identifiable payload, inherits the classification immediately.
        second = tcp_pair(sport=4999, dport=31337)
        record2 = harness.feed(out_packet(pair=second, t=5.0, flags=TCPFlags.SYN))
        assert record2.application == "bittorrent"
        assert harness.classifier.stats.endpoint_identified == 1

    def test_non_p2p_not_propagated(self):
        harness = Harness()
        first = tcp_pair(sport=4001, dport=8888)
        tcp_handshake(harness, first)
        harness.feed(out_packet(pair=first, t=0.1, payload=b"GET / HTTP/1.1\r\n"))
        second = tcp_pair(sport=4999, dport=8888)
        record = harness.feed(out_packet(pair=second, t=5.0, flags=TCPFlags.SYN))
        assert record.application is None  # undecided until payload/ports


class TestFTPDataTracking:
    def test_pasv_data_connection_identified(self):
        harness = Harness()
        control = tcp_pair(sport=3000, dport=21)
        tcp_handshake(harness, control)
        harness.feed(in_packet(pair=control.inverse, t=0.1, payload=apps.ftp_banner()))
        # Server announces passive endpoint 203.0.113.7:19,137 -> port 5001.
        pasv = b"227 Entering Passive Mode (203,0,113,7,19,137)\r\n"
        harness.feed(in_packet(pair=control.inverse, t=0.2, payload=pasv))
        data_pair = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 3100, REMOTE_ADDR, 19 * 256 + 137)
        record = harness.feed(out_packet(pair=data_pair, t=0.5, flags=TCPFlags.SYN))
        assert record.application == "ftp-data"

    def test_port_command_data_connection_identified(self):
        harness = Harness()
        control = tcp_pair(sport=3000, dport=21)
        tcp_handshake(harness, control)
        harness.feed(in_packet(pair=control.inverse, t=0.1, payload=apps.ftp_banner()))
        port_cmd = b"PORT 10,1,0,5,15,177\r\n"  # client announces 10.1.0.5:4017
        harness.feed(out_packet(pair=control, t=0.2, payload=port_cmd))
        data_pair = SocketPair(IPPROTO_TCP, REMOTE_ADDR, 20, CLIENT_ADDR, 15 * 256 + 177)
        record = harness.feed(in_packet(pair=data_pair, t=0.5, flags=TCPFlags.SYN))
        assert record.application == "ftp-data"

    def test_expected_endpoint_consumed_once(self):
        harness = Harness()
        control = tcp_pair(sport=3000, dport=21)
        tcp_handshake(harness, control)
        harness.feed(in_packet(pair=control.inverse, t=0.1, payload=apps.ftp_banner()))
        harness.feed(in_packet(pair=control.inverse, t=0.2,
                               payload=b"227 Entering Passive Mode (203,0,113,7,19,137)\r\n"))
        endpoint_port = 19 * 256 + 137
        first = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 3100, REMOTE_ADDR, endpoint_port)
        harness.feed(out_packet(pair=first, t=0.5, flags=TCPFlags.SYN))
        # A second, unrelated connection to the same endpoint is NOT
        # automatically ftp-data.
        second = SocketPair(IPPROTO_TCP, CLIENT_ADDR, 3200, REMOTE_ADDR, endpoint_port)
        record = harness.feed(out_packet(pair=second, t=9.0, flags=TCPFlags.SYN))
        assert record.application != "ftp-data"


class TestParseFtpEndpoints:
    def test_port_command(self):
        [(addr, port)] = parse_ftp_endpoints(b"PORT 10,1,0,5,19,137\r\n")
        assert addr == (10 << 24) | (1 << 16) | 5
        assert port == 19 * 256 + 137

    def test_pasv_reply(self):
        [(addr, port)] = parse_ftp_endpoints(
            b"227 Entering Passive Mode (192,168,1,2,4,1).\r\n"
        )
        assert port == 4 * 256 + 1

    def test_rejects_overflowing_octets(self):
        assert parse_ftp_endpoints(b"PORT 999,1,0,5,19,137\r\n") == []

    def test_rejects_port_zero(self):
        assert parse_ftp_endpoints(b"PORT 10,1,0,5,0,0\r\n") == []

    def test_no_match(self):
        assert parse_ftp_endpoints(b"RETR file.iso\r\n") == []

    def test_multiple_commands(self):
        payload = b"PORT 10,0,0,1,1,1\r\nPORT 10,0,0,1,2,2\r\n"
        assert len(parse_ftp_endpoints(payload)) == 2


class TestTrafficAnalyzer:
    def test_end_to_end_counts(self, small_trace):
        analyzer = TrafficAnalyzer().analyze(small_trace)
        assert analyzer.packets_seen == len(small_trace)
        assert analyzer.flows
        assert all(flow.application is not None for flow in analyzer.flows)

    def test_classification_accuracy_against_ground_truth(
        self, small_trace, small_trace_specs
    ):
        analyzer = TrafficAnalyzer().analyze(small_trace)
        truth = {spec.pair_from_client.canonical: spec.app for spec in small_trace_specs}
        total = 0
        correct = 0
        for flow in analyzer.flows:
            expected = truth.get(flow.pair.canonical)
            if expected is None:
                continue
            total += 1
            got = flow.application
            if expected in ("smtp", "ssh", "imap", "other"):
                matched = got in ("smtp", "ssh", "imap", "pop3")
            else:
                matched = got == expected
            if matched:
                correct += 1
        assert total > 100
        # Payload prefixes identify the overwhelming majority; encrypted
        # 'unknown' traffic classifies as unknown by construction.
        assert correct / total > 0.9
