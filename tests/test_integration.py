"""End-to-end integration: generate → pcap → analyze → filter → report.

These tests cross every subsystem boundary the benchmarks rely on.
"""

from repro import (
    BitmapFilterConfig,
    BitmapPacketFilter,
    Direction,
    DropController,
    SPIFilter,
)
from repro.analyzer import TrafficAnalyzer, port_cdf, protocol_distribution
from repro.analyzer.report import CLASS_P2P
from repro.net.headers import decode_packet
from repro.net.inet import IPPROTO_TCP
from repro.net.pcap import read_pcap
from repro.sim.replay import compare_drop_rates, replay
from repro.workload import TraceConfig, TraceGenerator


class TestPcapPipeline:
    def test_trace_survives_disk_roundtrip_through_analyzer(self, tmp_path):
        """Write a trace to pcap, parse it back with the header codecs,
        re-derive directions, and confirm the analyzer sees the same
        protocol mix as it does on the in-memory trace."""
        from repro.net.inet import in_network, parse_ipv4
        from repro.net.packet import Direction as Dir

        config = TraceConfig(duration=20.0, connection_rate=8.0, seed=11)
        generator = TraceGenerator(config)
        path = str(tmp_path / "trace.pcap")
        generator.write_pcap(path)

        net = parse_ipv4(config.network)
        packets = []
        for record in read_pcap(path):
            packet = decode_packet(record.data, record.timestamp, verify_checksums=True)
            inside = in_network(packet.pair.src_addr, net, config.prefix_len)
            packet.direction = Dir.OUTBOUND if inside else Dir.INBOUND
            packets.append(packet)

        from_disk = TrafficAnalyzer().analyze(packets)
        in_memory = TrafficAnalyzer().analyze(TraceGenerator(config).packet_list())
        disk_rows = {r.protocol: r.connections for r in protocol_distribution(from_disk.flows)}
        memory_rows = {r.protocol: r.connections for r in protocol_distribution(in_memory.flows)}
        assert disk_rows == memory_rows


class TestAnalyzerOverTrace:
    def test_unknown_class_port_profile(self, small_trace):
        analyzer = TrafficAnalyzer().analyze(small_trace)
        cdf = port_cdf(analyzer.flows, protocol=IPPROTO_TCP)
        assert CLASS_P2P in cdf

    def test_outin_delays_measured(self, small_trace):
        analyzer = TrafficAnalyzer().analyze(small_trace)
        assert len(analyzer.outin) > 1000
        # The section 3.3 shape: almost everything is fast.
        assert analyzer.outin.cdf_at(2.8) > 0.95


class TestFilteringOverTrace:
    def test_spi_vs_bitmap_window_scatter_near_identity(self, small_trace):
        from repro.sim.metrics import least_squares_slope

        comparison = compare_drop_rates(
            small_trace,
            {
                "spi": SPIFilter(idle_timeout=240.0),
                "bitmap": BitmapPacketFilter(
                    BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                                       rotate_interval=5.0)
                ),
            },
        )
        active = [(x, y) for x, y in comparison.points if x > 0 or y > 0]
        if active:
            slope = least_squares_slope(active)
            assert 0.7 < slope < 1.3  # the Figure 8 gray line has slope 1.0

    def test_memory_constant_vs_spi_growth(self, small_trace):
        """The paper's core claim: SPI state grows with flow count, the
        bitmap filter's footprint does not."""
        spi = SPIFilter(idle_timeout=240.0)
        bitmap = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)
        )
        before = bitmap.memory_bytes
        peak_flows = 0
        for packet in small_trace:
            spi.process(packet)
            bitmap.process(packet)
            peak_flows = max(peak_flows, spi.tracked_flows)
        assert peak_flows > 100
        assert bitmap.memory_bytes == before

    def test_hole_punching_admits_more_than_strict(self, small_trace):
        from repro.core.bitmap_filter import FieldMode

        strict = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                               rotate_interval=5.0, field_mode=FieldMode.STRICT)
        )
        punching = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                               rotate_interval=5.0, field_mode=FieldMode.HOLE_PUNCHING)
        )
        for packet in small_trace:
            strict.process(packet)
            punching.process(packet)
        assert punching.stats.drop_rate(Direction.INBOUND) <= strict.stats.drop_rate(
            Direction.INBOUND
        )

    def test_red_limiting_tracks_thresholds(self, small_trace):
        unfiltered = replay(small_trace, BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.never_drop(),
        ), use_blocklist=False)
        baseline = unfiltered.passed.mean_mbps(Direction.OUTBOUND)

        tight = replay(small_trace, BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(baseline * 0.1, baseline * 0.2),
        ), use_blocklist=True)
        loose = replay(small_trace, BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(baseline * 0.6, baseline * 1.2),
        ), use_blocklist=True)
        tight_mean = tight.passed.mean_mbps(Direction.OUTBOUND)
        loose_mean = loose.passed.mean_mbps(Direction.OUTBOUND)
        assert tight_mean < loose_mean <= baseline + 1e-9


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_surface(self):
        filt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(low_mbps=50, high_mbps=100),
        )
        assert filt.memory_bytes == 512 * 1024

    def test_recommend_parameters_exported(self):
        from repro import recommend_parameters

        rec = recommend_parameters(15_000, target_p=0.05)
        assert rec.memory_bytes > 0
