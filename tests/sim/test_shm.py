"""Tests for the shared-memory lane transport (repro.sim.shm)."""

import pickle

import pytest

pytest.importorskip("multiprocessing.shared_memory")

from repro.net.table import PacketTable, as_table
from repro.sim.shm import SharedTableArena, ShmLane, attach_lane
from repro.workload import TraceConfig, TraceGenerator


def lane_tables(seed=5, lanes=2):
    """Pool-sharing lane tables, the partition_table output shape."""
    table = as_table(TraceGenerator(
        TraceConfig(duration=12.0, connection_rate=5.0, seed=seed)
    ).iter_tables(256))
    step = max(len(table) // lanes, 1)
    return table, [
        (i, table.slice(i * step,
                        len(table) if i == lanes - 1 else (i + 1) * step))
        for i in range(lanes)
    ]


class TestArenaRoundtrip:
    def test_publish_attach_reproduces_every_lane(self):
        _, lanes = lane_tables()
        arena = SharedTableArena.publish(lanes)
        try:
            for (lane, source), ref in zip(lanes, arena.lanes):
                assert ref.lane == lane
                assert ref.rows == len(source)
                attachment = attach_lane(ref)
                try:
                    view = attachment.table
                    assert list(view.timestamps) == list(source.timestamps)
                    assert list(view.sizes) == list(source.sizes)
                    assert list(view.pair_ids) == list(source.pair_ids)
                    for position in range(len(source)):
                        assert view.pair(position) == source.pair(position)
                finally:
                    attachment.close()
        finally:
            arena.dispose()

    def test_lane_refs_are_small_and_pickle_safe(self):
        table, lanes = lane_tables()
        arena = SharedTableArena.publish(lanes)
        try:
            for ref in arena.lanes:
                blob = pickle.dumps(ref)
                # The whole point: a lane ref crosses the pipe in bytes,
                # not megabytes.
                assert len(blob) < 1024
                assert isinstance(pickle.loads(blob), ShmLane)
            assert arena.nbytes > len(table)  # columns live in the segment
        finally:
            arena.dispose()

    def test_view_table_slices_and_pickles(self):
        _, lanes = lane_tables()
        arena = SharedTableArena.publish(lanes)
        try:
            attachment = attach_lane(arena.lanes[0])
            try:
                view = attachment.table
                window = view.slice(1, min(5, len(view)))
                assert len(window) == min(5, len(view)) - 1
                # Pickling a view table materializes its columns — a
                # round-trip must not carry dangling segment references.
                clone = pickle.loads(pickle.dumps(view))
                assert list(clone.timestamps) == list(view.timestamps)
            finally:
                attachment.close()
        finally:
            arena.dispose()


class TestArenaValidation:
    def test_rejects_disjoint_pools(self):
        table, _ = lane_tables()
        stranger = PacketTable()
        with pytest.raises(ValueError, match="share one interned pool"):
            SharedTableArena.publish([(0, table), (1, stranger)])

    def test_rejects_empty_publish(self):
        with pytest.raises(ValueError, match="nothing to publish"):
            SharedTableArena.publish([])

    def test_dispose_is_idempotent(self):
        _, lanes = lane_tables()
        arena = SharedTableArena.publish(lanes)
        arena.dispose()
        arena.dispose()

    def test_row_count_mismatch_detected(self):
        _, lanes = lane_tables()
        arena = SharedTableArena.publish(lanes)
        try:
            ref = arena.lanes[0]
            bogus = ShmLane(
                shm_name=ref.shm_name, lane=ref.lane, rows=ref.rows + 7,
                columns=ref.columns, pair_span=ref.pair_span,
                payload_span=ref.payload_span,
            )
            with pytest.raises(ValueError, match="dispatch said"):
                attach_lane(bogus)
        finally:
            arena.dispose()
