"""Tests for the unified replay engine: backend dispatch and equivalence.

Two contracts under test.  First, :func:`repro.sim.pipeline.select_backend`
maps every coherent ``(batched, workers, scheduler)`` combination onto
exactly one backend and *raises* on the incoherent ones — no silent mode
downgrades.  Second, every backend is bit-identical: same verdicts, same
statistics, same RNG consumption as the sequential reference loop.
"""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.chain import FilterChain
from repro.filters.counting import CountingBitmapFilter
from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter
from repro.filters.sharded import ShardedFilter
from repro.filters.spi import SPIFilter
from repro.net.inet import parse_ipv4
from repro.sim.engine import EventScheduler
from repro.sim.parallel import ParallelReplayResult
from repro.sim.pipeline import (
    BatchedBackend,
    ParallelBackend,
    ReplayResult,
    SequentialBackend,
    select_backend,
)
from repro.sim.replay import compare_drop_rates, replay
from repro.workload import TraceConfig, TraceGenerator

BASE = parse_ipv4("10.1.0.0")


def trace(seed, duration=25.0, rate=6.0):
    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    return TraceGenerator(config).packet_list()


def make_sharded(shard_count=4, size=2 ** 14):
    prefix = 24 + shard_count.bit_length() - 1
    step = 1 << (32 - prefix)
    return ShardedFilter([
        (BASE + i * step, prefix,
         BitmapPacketFilter(BitmapFilterConfig(size=size, vectors=4, hashes=3,
                                               rotate_interval=5.0)))
        for i in range(shard_count)
    ])


def fingerprint(result):
    """Everything two backends must agree on, byte for byte."""
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "duration": result.duration,
        "filter_stats": router.filter.stats.as_dict(),
        "offered_bins": router.offered._bins,
        "passed_bins": router.passed._bins,
        "drop_packets": router.inbound_drops._packets,
        "drop_dropped": router.inbound_drops._dropped,
        "blocked": (None if router.blocklist is None
                    else dict(router.blocklist._blocked)),
        "suppressed": (0 if router.blocklist is None
                       else router.blocklist.suppressed_packets),
    }


class TestDispatchMatrix:
    """select_backend's table, row by row."""

    def test_default_is_sequential(self):
        assert isinstance(select_backend(), SequentialBackend)

    def test_batched_none_and_false_are_sequential(self):
        assert isinstance(select_backend(batched=None), SequentialBackend)
        assert isinstance(select_backend(batched=False), SequentialBackend)

    def test_batched_true_is_batched(self):
        backend = select_backend(batched=True)
        assert isinstance(backend, BatchedBackend)
        assert backend.chunk_size is None

    def test_batched_with_chunk_size(self):
        assert select_backend(batched=True, chunk_size=512).chunk_size == 512

    def test_batched_with_scheduler_is_coherent(self):
        """The old silent downgrade is gone: batched + scheduler stays
        batched, with event-boundary chunking."""
        backend = select_backend(batched=True, scheduler=EventScheduler())
        assert isinstance(backend, BatchedBackend)

    def test_workers_default_to_batched_lanes(self):
        backend = select_backend(workers=4)
        assert isinstance(backend, ParallelBackend)
        assert backend.workers == 4
        assert backend.lane_batched is True

    def test_workers_with_batched_false_get_sequential_lanes(self):
        """The old silent upgrade is gone: batched=False is honored in
        parallel lanes."""
        backend = select_backend(batched=False, workers=2)
        assert isinstance(backend, ParallelBackend)
        assert backend.lane_batched is False

    def test_workers_below_one_raise(self):
        with pytest.raises(ValueError, match="workers"):
            select_backend(workers=0)
        with pytest.raises(ValueError, match="workers"):
            replay(trace(1), SPIFilter(), workers=0)

    def test_workers_with_scheduler_raise(self):
        with pytest.raises(ValueError, match="scheduler"):
            select_backend(workers=2, scheduler=EventScheduler())
        with pytest.raises(ValueError, match="scheduler"):
            replay(trace(1), make_sharded(), workers=2,
                   scheduler=EventScheduler())

    def test_workers_with_chunk_size_raise(self):
        with pytest.raises(ValueError, match="chunk_size"):
            select_backend(workers=2, chunk_size=64)

    def test_chunk_size_without_batched_raises(self):
        with pytest.raises(ValueError, match="chunk_size"):
            select_backend(chunk_size=64)
        with pytest.raises(ValueError, match="chunk_size"):
            replay(trace(1), SPIFilter(), chunk_size=64)

    def test_bad_chunk_size_raises(self):
        with pytest.raises(ValueError, match="chunk_size"):
            BatchedBackend(chunk_size=0)

    def test_explicit_backend_excludes_knobs(self):
        packets = trace(1)
        with pytest.raises(ValueError, match="not both"):
            replay(packets, SPIFilter(), backend=SequentialBackend(),
                   batched=True)
        with pytest.raises(ValueError, match="not both"):
            replay(packets, make_sharded(), backend=SequentialBackend(),
                   workers=2)
        with pytest.raises(ValueError, match="not both"):
            replay(packets, SPIFilter(), backend=BatchedBackend(),
                   chunk_size=64)

    def test_explicit_backend_is_used(self):
        packets = trace(1)
        by_knob = replay(packets, SPIFilter(), batched=True)
        by_backend = replay(packets, SPIFilter(), backend=BatchedBackend())
        assert fingerprint(by_backend) == fingerprint(by_knob)

    def test_describe_labels(self):
        assert select_backend().describe() == "sequential"
        assert select_backend(batched=True).describe() == "batched"
        assert select_backend(workers=3).describe() == "parallel x3"


class TestBackendEquivalence:
    """Sequential × batched × parallel over the same sharded filter."""

    @pytest.mark.parametrize("seed", [2, 19])
    def test_all_backends_agree(self, seed):
        packets = trace(seed)
        reference = fingerprint(
            replay(packets, make_sharded(), use_blocklist=True, batched=False))
        batched = fingerprint(
            replay(packets, make_sharded(), use_blocklist=True, batched=True))
        assert batched == reference
        for workers in (2, 4):
            parallel = fingerprint(
                replay(packets, make_sharded(), use_blocklist=True,
                       workers=workers))
            assert parallel == reference

    def test_sequential_parallel_lanes_agree(self):
        """workers>1 with batched=False replays each lane per-packet and
        still merges to the identical result."""
        packets = trace(5)
        reference = fingerprint(
            replay(packets, make_sharded(), use_blocklist=True))
        sequential_lanes = fingerprint(
            replay(packets, make_sharded(), use_blocklist=True,
                   workers=2, batched=False))
        assert sequential_lanes == reference

    def test_chunked_batching_agrees(self):
        packets = trace(7)
        whole = fingerprint(
            replay(packets, make_sharded(), use_blocklist=True, batched=True))
        for chunk_size in (1, 64, 1000, len(packets) + 10):
            chunked = fingerprint(
                replay(packets, make_sharded(), use_blocklist=True,
                       batched=True, chunk_size=chunk_size))
            assert chunked == whole


GENERIC_FILTERS = {
    "spi": lambda: SPIFilter(idle_timeout=120.0),
    "counting": lambda: CountingBitmapFilter(
        BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                           rotate_interval=5.0)),
    "token-bucket": lambda: TokenBucketFilter(rate_mbps=0.5),
    "red-policer": lambda: RedPolicerFilter.mbps(low_mbps=0.2, high_mbps=0.8),
    "chain": lambda: FilterChain([SPIFilter(idle_timeout=120.0),
                                  TokenBucketFilter(rate_mbps=0.5)]),
}


class TestGenericBatchProtocol:
    """The default PacketFilter.process_batch and the router's generic
    stage-split must match the per-packet loop for every filter —
    including RNG-consuming ones, where order of draws is the contract."""

    @pytest.mark.parametrize("name", sorted(GENERIC_FILTERS))
    def test_batched_equals_sequential_without_blocklist(self, name):
        packets = trace(4)
        make = GENERIC_FILTERS[name]
        sequential = replay(packets, make(), use_blocklist=False)
        batched = replay(packets, make(), use_blocklist=False, batched=True)
        assert fingerprint(batched) == fingerprint(sequential)

    @pytest.mark.parametrize("name", sorted(GENERIC_FILTERS))
    def test_batched_equals_sequential_with_blocklist(self, name):
        """With a blocklist the batched backend falls back to the
        per-packet loop for non-bitmap filters (suppression must
        interleave with verdicts) — still identical, just not fused."""
        packets = trace(4)
        make = GENERIC_FILTERS[name]
        sequential = replay(packets, make(), use_blocklist=True)
        batched = replay(packets, make(), use_blocklist=True, batched=True)
        assert fingerprint(batched) == fingerprint(sequential)

    def test_filter_process_batch_verdicts_match(self):
        """PacketFilter.process_batch directly: verdicts in order plus
        identical member statistics."""
        packets = trace(6)
        for name, make in sorted(GENERIC_FILTERS.items()):
            loop_filter, batch_filter = make(), make()
            expected = [loop_filter.process(p) for p in packets]
            got = batch_filter.process_batch(packets)
            assert got == expected, name
            assert batch_filter.stats.as_dict() == loop_filter.stats.as_dict()

    def test_sharded_process_batch_matches_loop(self):
        """ShardedFilter.process_batch partitions then batches per shard;
        member stats, unrouted counts and route cache all line up."""
        packets = trace(8)
        loop_filter, batch_filter = make_sharded(), make_sharded()
        expected = [loop_filter.process(p) for p in packets]
        got = batch_filter.process_batch(packets)
        assert got == expected
        assert batch_filter.stats.as_dict() == loop_filter.stats.as_dict()
        assert batch_filter.shard_stats() == loop_filter.shard_stats()
        assert batch_filter.unrouted_packets == loop_filter.unrouted_packets


class TestSchedulerChunking:
    """batched=True + scheduler: event-boundary chunking, not a downgrade."""

    def probe_log(self, packets, **replay_kwargs):
        flt = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                               rotate_interval=5.0))
        scheduler = EventScheduler()
        samples = []
        # The probe observes live filter state: it only matches across
        # backends if events fire at exactly the per-packet moments.
        scheduler.every(2.0, lambda when: samples.append(
            (when, flt.stats.total, flt.stats.as_dict()["dropped_inbound"])))
        result = replay(packets, flt, scheduler=scheduler, **replay_kwargs)
        return samples, scheduler, fingerprint(result)

    def test_probes_fire_at_per_packet_moments(self):
        packets = trace(12)
        seq_samples, seq_sched, seq_print = self.probe_log(packets)
        bat_samples, bat_sched, bat_print = self.probe_log(packets,
                                                           batched=True)
        assert bat_samples == seq_samples
        assert len(bat_samples) > 5
        assert bat_sched.fired == seq_sched.fired
        assert bat_sched.now == seq_sched.now
        assert bat_print == seq_print

    def test_chunk_size_composes_with_scheduler(self):
        packets = trace(12)
        seq_samples, _, seq_print = self.probe_log(packets)
        chunk_samples, _, chunk_print = self.probe_log(packets, batched=True,
                                                       chunk_size=100)
        assert chunk_samples == seq_samples
        assert chunk_print == seq_print


class TestCompareDropRatesPassthrough:
    def make_filters(self):
        return {
            "spi": SPIFilter(idle_timeout=240.0),
            "bitmap": BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                                   rotate_interval=5.0)),
        }

    def test_batched_passthrough_identical(self):
        packets = trace(15)
        reference = compare_drop_rates(packets, self.make_filters())
        batched = compare_drop_rates(packets, self.make_filters(),
                                     batched=True)
        assert batched.points == reference.points
        for name in ("spi", "bitmap"):
            assert batched.overall(name) == reference.overall(name)

    def test_workers_passthrough_identical(self):
        packets = trace(15)
        filters = {"a": make_sharded(), "b": make_sharded(size=2 ** 12)}
        reference = compare_drop_rates(packets, filters)
        parallel = compare_drop_rates(
            packets, {"a": make_sharded(), "b": make_sharded(size=2 ** 12)},
            workers=2)
        assert parallel.points == reference.points
        for name in ("a", "b"):
            assert parallel.overall(name) == reference.overall(name)


class TestCompareDropRatesFactory:
    """The bounded-memory path: a callable trace factory replays each
    filter from a fresh chunk stream, never materializing one table."""

    def make_filters(self):
        return {
            "spi": SPIFilter(idle_timeout=240.0),
            "bitmap": BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                                   rotate_interval=5.0)),
        }

    def test_factory_matches_materialized(self):
        config = TraceConfig(duration=25.0, connection_rate=6.0, seed=15)
        table = TraceGenerator(config).table()
        reference = compare_drop_rates(table, self.make_filters(),
                                       batched=True)
        streamed = compare_drop_rates(
            lambda: TraceGenerator(config).iter_tables(chunk_size=512),
            self.make_filters(), batched=True,
        )
        assert streamed.points == reference.points
        for name in ("spi", "bitmap"):
            assert streamed.overall(name) == reference.overall(name)
        # The factory path never materializes: no trace_s is charged.
        assert streamed.timings["trace_s"] == 0.0

    def test_timings_cover_every_filter(self):
        comparison = compare_drop_rates(trace(15), self.make_filters())
        assert set(comparison.timings["replay_s"]) == {"spi", "bitmap"}
        assert all(value >= 0.0
                   for value in comparison.timings["replay_s"].values())
        assert comparison.timings["trace_s"] == 0.0  # list passed through


class TestUnifiedResultShape:
    def test_parallel_result_is_replay_result(self):
        """The pre-unification result split is gone: one class, aliased."""
        assert ParallelReplayResult is ReplayResult

    def test_single_process_shape(self):
        result = replay(trace(1), SPIFilter())
        assert result.workers == 1
        assert result.lanes == []
        assert result.lane_packet_counts() == {}

    def test_parallel_shape(self):
        result = replay(trace(1), make_sharded(), workers=2)
        assert result.workers == 2
        assert result.lanes
        counts = result.lane_packet_counts()
        assert sum(counts.values()) == result.packets
