"""Cross-representation replay equivalence.

One trace, two representations (``List[Packet]`` vs the columnar
:class:`~repro.net.table.PacketTable`), three execution backends
(sequential, batched, multiprocess-parallel): every combination must
produce identical verdicts, filter statistics, throughput bins, drop
windows and blocklists, with numpy present or absent.  These tests are
the acceptance gate for the columnar packet plane.
"""

import pytest

import repro.net.table as table_mod
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.sharded import ShardedFilter
from repro.filters.spi import SPIFilter
from repro.net.inet import parse_ipv4
from repro.net.table import PacketTable
from repro.sim.parallel import parallel_replay
from repro.sim.replay import compare_drop_rates, replay
from repro.workload.generator import TraceConfig, TraceGenerator

BASE = parse_ipv4("10.1.0.0")


def make_filter(size=2 ** 14):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=size, vectors=4, hashes=3, rotate_interval=5.0)
    )


def make_sharded(shard_count=2, size=2 ** 13):
    prefix = 24 + shard_count.bit_length() - 1
    step = 1 << (32 - prefix)
    return ShardedFilter([
        (BASE + i * step, prefix, make_filter(size))
        for i in range(shard_count)
    ])


def fingerprint(result):
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "duration": result.duration,
        "filter_stats": router.filter.stats.as_dict(),
        "offered_bins": router.offered._bins,
        "passed_bins": router.passed._bins,
        "drop_packets": router.inbound_drops._packets,
        "drop_dropped": router.inbound_drops._dropped,
        "blocked": (None if router.blocklist is None
                    else dict(router.blocklist._blocked)),
        "suppressed": (0 if router.blocklist is None
                       else router.blocklist.suppressed_packets),
    }


@pytest.fixture(scope="module")
def traces():
    """The same trace in both representations, per seed."""
    out = {}
    for seed in (7, 42):
        config = TraceConfig(duration=25.0, connection_rate=6.0, seed=seed)
        out[seed] = (
            TraceGenerator(config).packet_list(),
            TraceGenerator(config).table(),
        )
    return out


@pytest.fixture(params=["numpy", "stdlib"])
def merge_path(request, monkeypatch):
    if request.param == "numpy" and not table_mod.HAVE_NUMPY:
        pytest.skip("numpy not installed")
    monkeypatch.setattr(
        table_mod, "_use_numpy", request.param == "numpy" and table_mod.HAVE_NUMPY
    )
    return request.param


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [7, 42])
    @pytest.mark.parametrize("batched", [False, True],
                             ids=["sequential", "batched"])
    def test_single_process(self, traces, merge_path, seed, batched):
        packets, table = traces[seed]
        reference = fingerprint(
            replay(packets, make_filter(), use_blocklist=True, batched=batched)
        )
        got = fingerprint(
            replay(table, make_filter(), use_blocklist=True, batched=batched)
        )
        assert got == reference

    @pytest.mark.parametrize("seed", [7])
    def test_parallel_backend(self, traces, merge_path, seed):
        packets, table = traces[seed]
        reference = fingerprint(
            parallel_replay(packets, make_sharded(), workers=2)
        )
        got = fingerprint(parallel_replay(table, make_sharded(), workers=2))
        assert got == reference

    def test_parallel_table_matches_single_process_sharded(self, traces):
        packets, table = traces[7]
        single = fingerprint(replay(packets, make_sharded(), use_blocklist=True))
        parallel = fingerprint(parallel_replay(table, make_sharded(), workers=2))
        assert parallel == single


class TestStreamedInput:
    """iter_tables chunks feed every backend without materializing."""

    @pytest.mark.parametrize("batched", [False, True],
                             ids=["sequential", "batched"])
    @pytest.mark.parametrize("chunk_size", [97, 2048])
    def test_chunked_stream(self, traces, merge_path, batched, chunk_size):
        packets, _ = traces[7]
        config = TraceConfig(duration=25.0, connection_rate=6.0, seed=7)
        reference = fingerprint(
            replay(packets, make_filter(), use_blocklist=True, batched=batched)
        )
        stream = TraceGenerator(config).iter_tables(chunk_size=chunk_size)
        got = fingerprint(
            replay(stream, make_filter(), use_blocklist=True, batched=batched)
        )
        assert got == reference

    def test_explicit_chunk_size_argument(self, traces):
        packets, table = traces[7]
        reference = fingerprint(
            replay(packets, make_filter(), use_blocklist=True, batched=True)
        )
        got = fingerprint(
            replay(table, make_filter(), use_blocklist=True, batched=True,
                   chunk_size=501)
        )
        assert got == reference


class TestCompareDropRates:
    def test_table_matches_list(self, traces, merge_path):
        packets, table = traces[7]

        def run(trace):
            comparison = compare_drop_rates(
                trace,
                {"spi": SPIFilter(idle_timeout=240.0), "bitmap": make_filter()},
                batched=True,
            )
            return comparison.points, {
                name: comparison.overall(name) for name in ("spi", "bitmap")
            }

        assert run(table) == run(packets)


class TestFromPacketsTables:
    """Tables built by columnarizing objects replay identically too."""

    def test_from_packets_round_trip_replay(self, traces, merge_path):
        packets, _ = traces[42]
        reference = fingerprint(
            replay(packets, make_filter(), use_blocklist=True, batched=True)
        )
        got = fingerprint(
            replay(PacketTable.from_packets(packets), make_filter(),
                   use_blocklist=True, batched=True)
        )
        assert got == reference
