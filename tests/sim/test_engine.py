"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import EventScheduler


class TestOneShot:
    def test_fires_at_time(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(5.0, fired.append)
        assert scheduler.advance_to(4.9) == 0
        assert scheduler.advance_to(5.0) == 1
        assert fired == [5.0]

    def test_fires_once(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(1.0, fired.append)
        scheduler.advance_to(10.0)
        scheduler.advance_to(20.0)
        assert fired == [1.0]

    def test_ordering(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(3.0, lambda t: fired.append(("b", t)))
        scheduler.at(1.0, lambda t: fired.append(("a", t)))
        scheduler.advance_to(5.0)
        assert fired == [("a", 1.0), ("b", 3.0)]

    def test_same_time_fifo(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.at(1.0, lambda t: fired.append("first"))
        scheduler.at(1.0, lambda t: fired.append("second"))
        scheduler.advance_to(1.0)
        assert fired == ["first", "second"]


class TestPeriodic:
    def test_fires_every_interval(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.every(2.0, fired.append)
        scheduler.advance_to(7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_custom_start(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.every(5.0, fired.append, start=1.0)
        scheduler.advance_to(12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            EventScheduler().every(0.0, lambda t: None)

    def test_callback_can_schedule(self):
        scheduler = EventScheduler()
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                scheduler.at(t + 1.0, chain)

        scheduler.at(0.5, chain)
        scheduler.advance_to(10.0)
        assert fired == [0.5, 1.5, 2.5]


class TestClock:
    def test_now_advances(self):
        scheduler = EventScheduler()
        scheduler.advance_to(5.0)
        assert scheduler.now == 5.0

    def test_time_never_goes_back(self):
        scheduler = EventScheduler()
        scheduler.advance_to(5.0)
        scheduler.advance_to(3.0)
        assert scheduler.now == 5.0

    def test_pending_count(self):
        scheduler = EventScheduler()
        scheduler.at(1.0, lambda t: None)
        scheduler.every(1.0, lambda t: None)
        assert scheduler.pending() == 2

    def test_fired_counter(self):
        scheduler = EventScheduler()
        scheduler.every(1.0, lambda t: None)
        scheduler.advance_to(5.0)
        assert scheduler.fired == 5
