"""Tests for replay measurement series."""

import pytest

from repro.net.packet import Direction
from repro.sim.metrics import (
    DropRateSampler,
    ThroughputSeries,
    least_squares_slope,
    scatter_points,
)

from tests.conftest import in_packet, out_packet


class TestThroughputSeries:
    def test_binning(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.5, size=1250))
        series.record(out_packet(t=0.9, size=1250))
        series.record(out_packet(t=1.5, size=2500))
        points = series.series_mbps(Direction.OUTBOUND)
        assert points[0] == (0.0, pytest.approx(0.02))
        assert points[1] == (1.0, pytest.approx(0.02))

    def test_directions_separate(self):
        series = ThroughputSeries()
        series.record(out_packet(t=0.0, size=1000))
        series.record(in_packet(t=0.0, size=500))
        assert series.total_bytes(Direction.OUTBOUND) == 1000
        assert series.total_bytes(Direction.INBOUND) == 500

    def test_mean_over_span(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.0, size=1250))
        series.record(out_packet(t=9.5, size=1250))
        # 2500 bytes over 10 intervals = 2 kbps.
        assert series.mean_mbps(Direction.OUTBOUND) == pytest.approx(0.002)

    def test_peak(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.0, size=125))
        series.record(out_packet(t=5.0, size=1_250_000))
        assert series.peak_mbps(Direction.OUTBOUND) == pytest.approx(10.0)

    def test_quantile(self):
        series = ThroughputSeries(interval=1.0)
        for i in range(10):
            series.record(out_packet(t=float(i), size=(i + 1) * 125))
        median = series.quantile_mbps(Direction.OUTBOUND, 0.5)
        assert median == pytest.approx(0.006, abs=0.002)

    def test_empty(self):
        series = ThroughputSeries()
        assert series.mean_mbps(Direction.OUTBOUND) == 0.0
        assert series.peak_mbps(Direction.INBOUND) == 0.0
        assert series.quantile_mbps(Direction.OUTBOUND, 0.9) == 0.0

    def test_direction_required(self):
        from repro.net.packet import Packet

        from tests.conftest import tcp_pair

        with pytest.raises(ValueError):
            ThroughputSeries().record(Packet(0.0, tcp_pair(), 40))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputSeries(interval=0.0)


class TestDropRateSampler:
    def test_per_window_rates(self):
        sampler = DropRateSampler(window=10.0)
        for i in range(8):
            sampler.record(1.0 + i, dropped=False)
        for i in range(2):
            sampler.record(5.0 + i, dropped=True)
        [sample] = sampler.samples()
        assert sample.packets == 10
        assert sample.dropped == 2
        assert sample.drop_rate == pytest.approx(0.2)

    def test_multiple_windows(self):
        sampler = DropRateSampler(window=10.0)
        sampler.record(5.0, dropped=True)
        sampler.record(15.0, dropped=False)
        samples = sampler.samples()
        assert len(samples) == 2
        assert samples[0].window_start == 0.0
        assert samples[1].window_start == 10.0

    def test_overall(self):
        sampler = DropRateSampler()
        sampler.record(0.0, True)
        sampler.record(1.0, False)
        sampler.record(2.0, False)
        assert sampler.overall_drop_rate() == pytest.approx(1 / 3)

    def test_empty_overall(self):
        assert DropRateSampler().overall_drop_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DropRateSampler(window=0.0)


class TestScatter:
    def test_paired_windows(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        for t in (1.0, 2.0, 11.0, 12.0):
            a.record(t, dropped=t < 10)
            b.record(t, dropped=False)
        points = scatter_points(a, b)
        assert points == [(1.0, 0.0), (0.0, 0.0)]

    def test_slope_of_identity(self):
        points = [(0.1, 0.1), (0.2, 0.2), (0.5, 0.5)]
        assert least_squares_slope(points) == pytest.approx(1.0)

    def test_slope_scaled(self):
        points = [(0.1, 0.2), (0.2, 0.4)]
        assert least_squares_slope(points) == pytest.approx(2.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            least_squares_slope([(0.0, 0.1)])


class TestScatterMinPackets:
    def test_thin_windows_filtered(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        # Window 0: busy (30 packets); window 1: two stragglers.
        for i in range(30):
            a.record(float(i % 10), dropped=False)
            b.record(float(i % 10), dropped=False)
        for t in (11.0, 12.0):
            a.record(t, dropped=True)
            b.record(t, dropped=False)
        assert len(scatter_points(a, b, min_packets=1)) == 2
        assert len(scatter_points(a, b, min_packets=10)) == 1

    def test_min_packets_uses_both_samplers(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        for i in range(20):
            a.record(float(i % 10), dropped=False)
        b.record(1.0, dropped=False)  # only one packet on b's side
        assert scatter_points(a, b, min_packets=5) == []
