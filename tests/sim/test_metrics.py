"""Tests for replay measurement series."""

import pytest

from repro.net.packet import Direction
from repro.sim.metrics import (
    DropRateSampler,
    ThroughputSeries,
    least_squares_slope,
    scatter_points,
)

from tests.conftest import in_packet, out_packet


class TestThroughputSeries:
    def test_binning(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.5, size=1250))
        series.record(out_packet(t=0.9, size=1250))
        series.record(out_packet(t=1.5, size=2500))
        points = series.series_mbps(Direction.OUTBOUND)
        assert points[0] == (0.0, pytest.approx(0.02))
        assert points[1] == (1.0, pytest.approx(0.02))

    def test_directions_separate(self):
        series = ThroughputSeries()
        series.record(out_packet(t=0.0, size=1000))
        series.record(in_packet(t=0.0, size=500))
        assert series.total_bytes(Direction.OUTBOUND) == 1000
        assert series.total_bytes(Direction.INBOUND) == 500

    def test_mean_over_span(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.0, size=1250))
        series.record(out_packet(t=9.5, size=1250))
        # 2500 bytes over 10 intervals = 2 kbps.
        assert series.mean_mbps(Direction.OUTBOUND) == pytest.approx(0.002)

    def test_peak(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.0, size=125))
        series.record(out_packet(t=5.0, size=1_250_000))
        assert series.peak_mbps(Direction.OUTBOUND) == pytest.approx(10.0)

    def test_quantile(self):
        series = ThroughputSeries(interval=1.0)
        for i in range(10):
            series.record(out_packet(t=float(i), size=(i + 1) * 125))
        median = series.quantile_mbps(Direction.OUTBOUND, 0.5)
        assert median == pytest.approx(0.006, abs=0.002)

    def test_empty(self):
        series = ThroughputSeries()
        assert series.mean_mbps(Direction.OUTBOUND) == 0.0
        assert series.peak_mbps(Direction.INBOUND) == 0.0
        assert series.quantile_mbps(Direction.OUTBOUND, 0.9) == 0.0

    def test_mean_counts_empty_bins_in_span(self):
        """Regression: a bursty trace's silent intervals must dilute the
        mean — 2500 bytes over a 10-interval span is 2 kbps even though
        only two intervals carried traffic."""
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.5, size=1250))
        series.record(out_packet(t=9.5, size=1250))
        assert series.mean_mbps(Direction.OUTBOUND) == pytest.approx(0.002)

    def test_quantile_counts_empty_bins_in_span(self):
        """Regression: quantiles must see zero-traffic intervals between
        the first and last busy bin.  Two busy intervals in a 10-interval
        span mean the median rate is 0, not the busy-bin rate — the old
        code sorted only non-empty bins and reported 0.01 Mbps."""
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.5, size=1250))
        series.record(out_packet(t=9.5, size=1250))
        assert series.quantile_mbps(Direction.OUTBOUND, 0.5) == 0.0
        # The busy bins still dominate the top of the distribution.
        assert series.quantile_mbps(Direction.OUTBOUND, 0.95) == pytest.approx(0.01)
        assert series.quantile_mbps(Direction.OUTBOUND, 1.0) == pytest.approx(0.01)

    def test_span_rates_dense(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.0, size=125))
        series.record(out_packet(t=3.0, size=250))
        rates = series.span_rates_mbps(Direction.OUTBOUND)
        assert rates == pytest.approx([0.001, 0.0, 0.0, 0.002])
        assert series.span_rates_mbps(Direction.INBOUND) == []

    def test_direction_required(self):
        from repro.net.packet import Packet

        from tests.conftest import tcp_pair

        with pytest.raises(ValueError):
            ThroughputSeries().record(Packet(0.0, tcp_pair(), 40))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputSeries(interval=0.0)


class TestSparseWallClockSpans:
    """Live services feed these series *wall-clock* time: hours of idle,
    restart gaps of days.  Span statistics must count the silent
    intervals without materializing them — a billion-interval gap is one
    subtraction, not a billion-entry list."""

    def test_mean_across_restart_gap(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.5, size=1250))
        # The service comes back ~32 years of epoch seconds later; the
        # old span_rates-based mean would build a ~1e9-entry list here.
        series.record(out_packet(t=1.0e9 + 0.5, size=1250))
        span = series.span_intervals(Direction.OUTBOUND)
        assert span == 1_000_000_001
        expected = 2500 * 8.0 / 1e6 / span
        assert series.mean_mbps(Direction.OUTBOUND) == pytest.approx(expected)

    def test_quantile_across_restart_gap(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=0.5, size=1250))
        series.record(out_packet(t=1.0e9 + 0.5, size=2500))
        # Nearly the whole span is silent: every quantile below the very
        # top is exactly zero, and the top is the busiest bin.
        assert series.quantile_mbps(Direction.OUTBOUND, 0.5) == 0.0
        assert series.quantile_mbps(Direction.OUTBOUND, 0.999999) == 0.0
        assert series.quantile_mbps(Direction.OUTBOUND, 1.0) == pytest.approx(0.02)

    def test_quantile_matches_dense_reference(self):
        """The arithmetic zero-counting quantile must agree with the
        materialize-and-sort reference on a dense-enough series."""
        series = ThroughputSeries(interval=1.0)
        sizes = [125, 0, 250, 0, 0, 625, 125, 0, 375, 500]
        for i, size in enumerate(sizes):
            if size:
                series.record(out_packet(t=float(i), size=size))
        rates = sorted(series.span_rates_mbps(Direction.OUTBOUND))
        span = len(rates)
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0):
            rank = min(span - 1, int(q * span))
            assert series.quantile_mbps(Direction.OUTBOUND, q) == pytest.approx(
                rates[rank]
            ), q

    def test_single_bin_span(self):
        series = ThroughputSeries(interval=1.0)
        series.record(out_packet(t=1234567.5, size=1250))
        assert series.span_intervals(Direction.OUTBOUND) == 1
        assert series.mean_mbps(Direction.OUTBOUND) == pytest.approx(0.01)
        assert series.quantile_mbps(Direction.OUTBOUND, 0.0) == pytest.approx(0.01)

    def test_sampler_unaffected_by_gaps(self):
        """Drop windows are keyed sparsely; a restart gap adds no
        phantom windows and leaves the aggregate rate a pure count."""
        sampler = DropRateSampler(window=10.0)
        sampler.record(5.0, dropped=True)
        sampler.record(1.0e9 + 5.0, dropped=False)
        samples = sampler.samples()
        assert len(samples) == 2
        assert sampler.overall_drop_rate() == pytest.approx(0.5)


class TestMergeAPI:
    """The metrics-merge layer the multiprocess replay engine rides on."""

    def test_series_merge_sums_shared_bins(self):
        a = ThroughputSeries(interval=1.0)
        b = ThroughputSeries(interval=1.0)
        a.record(out_packet(t=0.5, size=100))
        a.record(in_packet(t=2.5, size=50))
        b.record(out_packet(t=0.7, size=300))
        b.record(out_packet(t=5.1, size=40))
        merged = a + b
        assert merged._bins[Direction.OUTBOUND] == {0: 400, 5: 40}
        assert merged._bins[Direction.INBOUND] == {2: 50}
        assert merged.total_bytes(Direction.OUTBOUND) == 440
        # The operands are untouched by +.
        assert a.total_bytes(Direction.OUTBOUND) == 100

    def test_series_merge_in_place_chains(self):
        a = ThroughputSeries()
        b = ThroughputSeries()
        b.record(out_packet(t=1.0, size=10))
        assert a.merge(b) is a
        assert a.total_bytes(Direction.OUTBOUND) == 10

    def test_series_interval_mismatch(self):
        with pytest.raises(ValueError):
            ThroughputSeries(interval=1.0).merge(ThroughputSeries(interval=2.0))

    def test_sampler_merge(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        a.record(1.0, dropped=True)
        a.record(2.0, dropped=False)
        b.record(3.0, dropped=True)
        b.record(15.0, dropped=False)
        merged = a + b
        samples = merged.samples()
        assert samples[0].packets == 3 and samples[0].dropped == 2
        assert samples[1].packets == 1 and samples[1].dropped == 0
        assert merged.overall_drop_rate() == pytest.approx(0.5)

    def test_sampler_window_mismatch(self):
        with pytest.raises(ValueError):
            DropRateSampler(window=10.0).merge(DropRateSampler(window=5.0))

    def test_filter_stats_merge(self):
        from repro.filters.base import FilterStats, Verdict

        a = FilterStats()
        b = FilterStats()
        a.account(out_packet(size=100), Verdict.PASS)
        b.account(out_packet(size=50), Verdict.PASS)
        b.account(in_packet(size=25), Verdict.DROP)
        merged = a + b
        assert merged.passed[Direction.OUTBOUND] == 2
        assert merged.passed_bytes[Direction.OUTBOUND] == 150
        assert merged.dropped[Direction.INBOUND] == 1
        assert merged.total == 3
        assert a.total == 1  # operands untouched

    def test_bitmap_stats_merge(self):
        from repro.core.bitmap_filter import BitmapFilterStats

        a = BitmapFilterStats(outbound_marked=3, inbound_hits=2, rotations=1)
        b = BitmapFilterStats(inbound_misses=4, inbound_dropped=2, rotations=2)
        merged = a + b
        assert merged.as_dict() == {
            "outbound_marked": 3,
            "inbound_hits": 2,
            "inbound_misses": 4,
            "inbound_dropped": 2,
            "rotations": 3,
        }


class TestDropRateSampler:
    def test_per_window_rates(self):
        sampler = DropRateSampler(window=10.0)
        for i in range(8):
            sampler.record(1.0 + i, dropped=False)
        for i in range(2):
            sampler.record(5.0 + i, dropped=True)
        [sample] = sampler.samples()
        assert sample.packets == 10
        assert sample.dropped == 2
        assert sample.drop_rate == pytest.approx(0.2)

    def test_multiple_windows(self):
        sampler = DropRateSampler(window=10.0)
        sampler.record(5.0, dropped=True)
        sampler.record(15.0, dropped=False)
        samples = sampler.samples()
        assert len(samples) == 2
        assert samples[0].window_start == 0.0
        assert samples[1].window_start == 10.0

    def test_overall(self):
        sampler = DropRateSampler()
        sampler.record(0.0, True)
        sampler.record(1.0, False)
        sampler.record(2.0, False)
        assert sampler.overall_drop_rate() == pytest.approx(1 / 3)

    def test_empty_overall(self):
        assert DropRateSampler().overall_drop_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DropRateSampler(window=0.0)


class TestScatter:
    def test_paired_windows(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        for t in (1.0, 2.0, 11.0, 12.0):
            a.record(t, dropped=t < 10)
            b.record(t, dropped=False)
        points = scatter_points(a, b)
        assert points == [(1.0, 0.0), (0.0, 0.0)]

    def test_slope_of_identity(self):
        points = [(0.1, 0.1), (0.2, 0.2), (0.5, 0.5)]
        assert least_squares_slope(points) == pytest.approx(1.0)

    def test_slope_scaled(self):
        points = [(0.1, 0.2), (0.2, 0.4)]
        assert least_squares_slope(points) == pytest.approx(2.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            least_squares_slope([(0.0, 0.1)])


class TestScatterMinPackets:
    def test_thin_windows_filtered(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        # Window 0: busy (30 packets); window 1: two stragglers.
        for i in range(30):
            a.record(float(i % 10), dropped=False)
            b.record(float(i % 10), dropped=False)
        for t in (11.0, 12.0):
            a.record(t, dropped=True)
            b.record(t, dropped=False)
        assert len(scatter_points(a, b, min_packets=1)) == 2
        assert len(scatter_points(a, b, min_packets=10)) == 1

    def test_min_packets_uses_both_samplers(self):
        a = DropRateSampler(window=10.0)
        b = DropRateSampler(window=10.0)
        for i in range(20):
            a.record(float(i % 10), dropped=False)
        b.record(1.0, dropped=False)  # only one packet on b's side
        assert scatter_points(a, b, min_packets=5) == []
