"""Tests for the edge router and replay harness."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import AcceptAllFilter, Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.blocklist import BlockedConnectionStore
from repro.filters.naive import NaiveTimerFilter
from repro.filters.policy import DropController
from repro.filters.spi import SPIFilter
from repro.net.packet import Direction
from repro.sim.engine import EventScheduler
from repro.sim.replay import compare_drop_rates, replay
from repro.sim.router import EdgeRouter

from tests.conftest import in_packet, out_packet, tcp_pair


class TestEdgeRouter:
    def test_passed_traffic_accounted(self):
        router = EdgeRouter(AcceptAllFilter())
        router.forward(out_packet(t=0.0, size=1000))
        assert router.passed.total_bytes(Direction.OUTBOUND) == 1000
        assert router.offered.total_bytes(Direction.OUTBOUND) == 1000

    def test_dropped_traffic_not_in_passed(self):
        router = EdgeRouter(NaiveTimerFilter())
        router.forward(in_packet(t=0.0, size=500))
        assert router.passed.total_bytes(Direction.INBOUND) == 0
        assert router.offered.total_bytes(Direction.INBOUND) == 500

    def test_blocklist_persists_drops(self):
        router = EdgeRouter(NaiveTimerFilter(), blocklist=BlockedConnectionStore())
        assert router.forward(in_packet(t=0.0)) is Verdict.DROP
        # Even the outbound reply direction of the blocked σ is suppressed.
        assert router.forward(out_packet(t=0.1)) is Verdict.DROP
        assert router.blocklist.suppressed_packets == 1

    def test_without_blocklist_outbound_reopens(self):
        router = EdgeRouter(NaiveTimerFilter(), blocklist=None)
        router.forward(in_packet(t=0.0))
        assert router.forward(out_packet(t=0.1)) is Verdict.PASS
        assert router.forward(in_packet(t=0.2)) is Verdict.PASS

    def test_drop_rate(self):
        router = EdgeRouter(NaiveTimerFilter())
        router.forward(out_packet(t=0.0))
        router.forward(in_packet(t=0.1))  # pass (state)
        router.forward(in_packet(pair=tcp_pair(sport=9).inverse, t=0.2))  # drop
        assert router.drop_rate == pytest.approx(0.5)

    def test_direction_required(self):
        from repro.net.packet import Packet

        router = EdgeRouter(AcceptAllFilter())
        with pytest.raises(ValueError):
            router.forward(Packet(0.0, tcp_pair(), 40))


class TestReplay:
    def test_counts(self, small_trace):
        result = replay(small_trace, AcceptAllFilter(), use_blocklist=False)
        assert result.packets == len(small_trace)
        assert result.inbound_dropped == 0
        assert result.inbound_drop_rate == 0.0
        assert result.duration > 0

    def test_scheduler_driven(self, small_trace):
        scheduler = EventScheduler()
        samples = []
        scheduler.every(10.0, samples.append)
        replay(small_trace[:20000], AcceptAllFilter(), scheduler=scheduler)
        assert len(samples) >= 2

    def test_bitmap_low_drop_rate_on_benign_replay(self, small_trace):
        """Figure 8 regime: pure positive-listing drop rates are small
        single-digit percentages on a realistic client-network trace."""
        result = replay(
            small_trace,
            BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                                   rotate_interval=5.0)
            ),
            use_blocklist=False,
        )
        assert 0.0 < result.inbound_drop_rate < 0.25

    def test_empty_trace(self):
        result = replay([], AcceptAllFilter())
        assert result.packets == 0
        assert result.duration == 0.0


class TestCompareDropRates:
    def test_fig8_shape(self, small_trace):
        comparison = compare_drop_rates(
            small_trace,
            {
                "spi": SPIFilter(idle_timeout=240.0),
                "bitmap": BitmapPacketFilter(
                    BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                                       rotate_interval=5.0)
                ),
            },
        )
        assert comparison.points
        spi_rate = comparison.overall("spi")
        bitmap_rate = comparison.overall("bitmap")
        # Close rates; SPI >= bitmap - epsilon (SPI drops more precisely).
        assert abs(spi_rate - bitmap_rate) < 0.05

    def test_requires_two_filters(self, small_trace):
        with pytest.raises(ValueError):
            compare_drop_rates(small_trace[:10], {"only": AcceptAllFilter()})


class TestThroughputLimiting:
    def test_uplink_bounded_when_filtering(self, small_trace):
        """Figure 9 in miniature: with RED thresholds well below the
        offered uplink load, the passed uplink throughput must come out
        meaningfully below the unfiltered replay's."""
        unfiltered = replay(small_trace, AcceptAllFilter(), use_blocklist=False)
        offered_mean = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
        low = offered_mean * 0.2
        high = offered_mean * 0.4
        filtered = replay(
            small_trace,
            BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                                   rotate_interval=5.0),
                drop_controller=DropController.red_mbps(low_mbps=low, high_mbps=high),
            ),
            use_blocklist=True,
        )
        limited_mean = filtered.passed.mean_mbps(Direction.OUTBOUND)
        assert limited_mean < offered_mean * 0.9
