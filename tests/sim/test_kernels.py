"""Kernel-vs-generic equivalence matrix for the filter-kernel registry.

Every registered kernel (:mod:`repro.sim.kernels`) must be bit-identical
to the sequential per-packet reference — same verdict fingerprints, same
filter statistics, same blocklist contents, same RNG end-state — across
backends (sequential / batched / parallel workers 2 and 4), transports
(pickle / shm) and seeds.  Registration is by exact type: subclasses
with overridden hooks must fall back to the generic path and keep their
overrides honored.
"""

import random

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.chain import FilterChain
from repro.filters.counting import CountingBitmapFilter
from repro.filters.policy import DropController
from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter
from repro.filters.sharded import ShardedFilter
from repro.filters.spi import SPIFilter
from repro.net.inet import parse_ipv4
from repro.sim.fastpath import supports_fastpath
from repro.sim.kernels import KERNELS, kernel_for
from repro.sim.parallel import parallel_replay
from repro.sim.replay import replay
from repro.workload import TraceConfig, TraceGenerator

BASE = parse_ipv4("10.1.0.0")

SMALL_CONFIG = BitmapFilterConfig(
    size=2 ** 12, vectors=4, hashes=3, rotate_interval=5.0
)


def trace(seed, duration=25.0, rate=6.0):
    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    return TraceGenerator(config).packet_list()


def red():
    # A fractional-P_d controller: always_drop never consumes RNG
    # (P_d = 1 short-circuits), so equivalence must be pinned where the
    # guarded draw actually runs.
    return DropController.red_mbps(0.2, 0.8)


FILTER_FACTORIES = {
    "spi": lambda: SPIFilter(drop_controller=red(), rng=random.Random(7)),
    "counting-bitmap": lambda: CountingBitmapFilter(
        SMALL_CONFIG, drop_controller=red(), rng=random.Random(7)
    ),
    "token-bucket": lambda: TokenBucketFilter(rate_mbps=0.5),
    "red-policer": lambda: RedPolicerFilter.mbps(0.2, 0.8, rng=random.Random(7)),
    "chain": lambda: FilterChain([
        SPIFilter(drop_controller=red(), rng=random.Random(3)),
        TokenBucketFilter(rate_mbps=0.5),
        RedPolicerFilter.mbps(0.2, 0.8, rng=random.Random(5)),
    ]),
    "bitmap": lambda: BitmapPacketFilter(SMALL_CONFIG),
}


def filter_rng_states(flt):
    """Every RNG the filter tree owns, in a fixed order."""
    if isinstance(flt, FilterChain):
        return [state for member in flt.filters
                for state in filter_rng_states(member)]
    holder = getattr(flt, "core", flt)
    rng = getattr(holder, "_rng", None)
    return [] if rng is None else [rng.getstate()]


def fingerprint(result):
    """Everything two runs must agree on, byte for byte."""
    router = result.router
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "verdict_fingerprint": result.fingerprint,
        "filter_stats": router.filter.stats.as_dict(),
        "offered_bins": router.offered._bins,
        "passed_bins": router.passed._bins,
        "drop_packets": router.inbound_drops._packets,
        "drop_dropped": router.inbound_drops._dropped,
        "blocked": (None if router.blocklist is None
                    else dict(router.blocklist._blocked)),
        "suppressed": (0 if router.blocklist is None
                       else router.blocklist.suppressed_packets),
    }


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_every_shipped_filter_is_registered(self, name):
        flt = FILTER_FACTORIES[name]()
        assert kernel_for(flt) is not None
        assert supports_fastpath(flt)

    @pytest.mark.parametrize("base_name", sorted(FILTER_FACTORIES))
    def test_subclasses_are_not_registered(self, base_name):
        base = type(FILTER_FACTORIES[base_name]())
        subclass = type("Sub" + base.__name__, (base,), {})
        assert subclass not in KERNELS
        instance = subclass.__new__(subclass)  # state doesn't matter here
        assert kernel_for(instance) is None
        assert not supports_fastpath(instance)

    def test_registry_keys_are_exact_types(self):
        for registered in (SPIFilter, CountingBitmapFilter, TokenBucketFilter,
                           RedPolicerFilter, FilterChain, BitmapPacketFilter):
            assert registered in KERNELS

    def test_subclass_override_is_honored_in_batched_replay(self):
        # A subclass flipping decide() to PASS-everything must keep that
        # behavior under batched replay — the fused SPI kernel would
        # ignore the override, so the generic path has to run.
        from repro.filters.base import Verdict

        class PassEverythingSPI(SPIFilter):
            def decide(self, packet):
                return Verdict.PASS

        packets = trace(5)
        result = replay(packets, PassEverythingSPI(), batched=True,
                        use_blocklist=True)
        assert result.inbound_dropped == 0
        strict = replay(packets, SPIFilter(), batched=True, use_blocklist=True)
        assert strict.inbound_dropped > 0  # sanity: the base would drop


class TestSequentialVsBatched:
    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("use_blocklist", [False, True])
    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_bit_identical(self, name, use_blocklist, seed):
        make = FILTER_FACTORIES[name]
        packets = trace(seed)
        sequential = replay(list(packets), make(), use_blocklist=use_blocklist,
                            record_fingerprint=True)
        batched = replay(list(packets), make(), use_blocklist=use_blocklist,
                         batched=True, record_fingerprint=True)
        chunked = replay(list(packets), make(), use_blocklist=use_blocklist,
                         batched=True, chunk_size=256, record_fingerprint=True)
        reference = fingerprint(sequential)
        assert fingerprint(batched) == reference
        assert fingerprint(chunked) == reference
        rng_reference = filter_rng_states(sequential.router.filter)
        assert filter_rng_states(batched.router.filter) == rng_reference
        assert filter_rng_states(chunked.router.filter) == rng_reference

    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_member_stats_match_for_chain(self, name):
        if name != "chain":
            pytest.skip("chain-only assertion")
        packets = trace(3)
        sequential = replay(list(packets), FILTER_FACTORIES[name](),
                            use_blocklist=False)
        batched = replay(list(packets), FILTER_FACTORIES[name](),
                         use_blocklist=False, batched=True)
        seq_members = [s.as_dict() for s in sequential.router.filter.member_stats()]
        bat_members = [s.as_dict() for s in batched.router.filter.member_stats()]
        assert seq_members == bat_members


class TestRngConsumption:
    """The per-filter draw forms, pinned (and reproduced by the kernels).

    SPI and the RED policer guard the draw with ``probability > 0.0`` —
    a no-drop phase must not consume from the stream.  The counting
    filter's historical form draws on every miss regardless; the kernels
    reproduce each form draw-for-draw rather than normalizing them.
    """

    def run_both(self, make):
        packets = trace(4)
        sequential = replay(list(packets), make(), use_blocklist=False)
        batched = replay(list(packets), make(), use_blocklist=False,
                         batched=True)
        return sequential.router.filter, batched.router.filter

    def test_spi_zero_probability_consumes_no_draws(self):
        pristine = random.Random(7).getstate()
        for flt in self.run_both(lambda: SPIFilter(
                drop_controller=DropController.never_drop(),
                rng=random.Random(7))):
            assert flt._rng.getstate() == pristine
            assert flt.stats.dropped_bytes  # it did see traffic

    def test_spi_fractional_probability_consumes_draws(self):
        pristine = random.Random(7).getstate()
        for flt in self.run_both(lambda: SPIFilter(
                drop_controller=red(), rng=random.Random(7))):
            assert flt._rng.getstate() != pristine

    def test_red_policer_below_threshold_consumes_no_draws(self):
        pristine = random.Random(7).getstate()
        # Thresholds far above the trace's offered rate: P_d stays 0.
        for flt in self.run_both(lambda: RedPolicerFilter.mbps(
                1e3, 2e3, rng=random.Random(7))):
            assert flt._rng.getstate() == pristine

    def test_counting_zero_probability_still_draws(self):
        # The unguarded historical form: every miss consumes one draw
        # even at P_d = 0.  Kernels must not "fix" this silently — it
        # would desynchronize RNG streams against recorded runs.
        pristine = random.Random(7).getstate()
        for flt in self.run_both(lambda: CountingBitmapFilter(
                SMALL_CONFIG, drop_controller=DropController.never_drop(),
                rng=random.Random(7))):
            assert flt._rng.getstate() != pristine
            assert flt.stats.as_dict()["dropped_inbound"] == 0

    def test_spi_and_red_guarded_forms_agree(self):
        # Same guard, same consumption count for the same decision points.
        seq_spi, bat_spi = self.run_both(lambda: SPIFilter(
            drop_controller=red(), rng=random.Random(9)))
        assert seq_spi._rng.getstate() == bat_spi._rng.getstate()
        seq_red, bat_red = self.run_both(lambda: RedPolicerFilter.mbps(
            0.2, 0.8, rng=random.Random(9)))
        assert seq_red._rng.getstate() == bat_red._rng.getstate()


def make_sharded(name, shard_count=4):
    prefix = 24 + shard_count.bit_length() - 1
    step = 1 << (32 - prefix)
    return ShardedFilter([
        (BASE + i * step, prefix, FILTER_FACTORIES[name]())
        for i in range(shard_count)
    ])


class TestParallelMatrix:
    """Every kernel × workers {2,4} × transport {pickle,shm} × two seeds."""

    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("name", sorted(FILTER_FACTORIES))
    def test_parallel_matches_single_process(self, name, workers, transport,
                                             seed):
        if transport == "shm":
            pytest.importorskip("multiprocessing.shared_memory")
        packets = trace(seed, duration=12.0)
        single = replay(list(packets), make_sharded(name), use_blocklist=True)
        parallel = parallel_replay(list(packets), make_sharded(name),
                                   workers=workers, transport=transport)
        reference = fingerprint_no_verdicts(single)
        assert fingerprint_no_verdicts(parallel) == reference


def fingerprint_no_verdicts(result):
    document = fingerprint(result)
    document.pop("verdict_fingerprint")  # parallel runs don't record one
    return document
