"""Tests for the closed-loop (feedback) simulator."""

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction
from repro.sim.closedloop import ClosedLoopSimulator
from repro.workload.apps import ConnectionSpec, Initiator

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR


def spec(initiator=Initiator.CLIENT, start=0.0, sport=3000, upload=50_000):
    return ConnectionSpec(
        app="bittorrent",
        start=start,
        protocol=IPPROTO_TCP,
        client_addr=CLIENT_ADDR,
        client_port=sport,
        remote_addr=REMOTE_ADDR,
        remote_port=6881,
        initiator=initiator,
        bytes_client_to_remote=upload,
        duration=10.0,
        rtt=0.05,
    )


def bitmap_filter(drop_controller=None):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 16, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=drop_controller or DropController.always_drop(),
    )


class TestAdmission:
    def test_accept_all_admits_everything(self):
        sim = ClosedLoopSimulator(AcceptAllFilter())
        result = sim.run([spec(sport=3000 + i) for i in range(5)])
        assert result.connections_total == 5
        assert result.connections_admitted == 5
        assert result.connections_refused == 0
        assert result.admission_rate == 1.0

    def test_client_initiated_always_admitted(self):
        # Outbound SYN passes and marks; the SYN-ACK matches.
        sim = ClosedLoopSimulator(bitmap_filter())
        result = sim.run([spec(Initiator.CLIENT, sport=3000 + i) for i in range(5)])
        assert result.connections_admitted == 5

    def test_remote_initiated_refused_under_p1(self):
        sim = ClosedLoopSimulator(bitmap_filter())
        result = sim.run([spec(Initiator.REMOTE, sport=3000 + i) for i in range(5)])
        assert result.connections_refused == 5
        assert result.refused_by_initiator == {"remote": 5}

    def test_refused_connection_sends_no_upload(self):
        sim = ClosedLoopSimulator(bitmap_filter())
        result = sim.run([spec(Initiator.REMOTE, upload=500_000)])
        # Only the refused SYN was offered to the link — the triggered
        # upload never happened.  This is the feedback replay cannot model.
        assert result.passed.total_bytes(Direction.OUTBOUND) == 0
        assert result.offered.total_bytes(Direction.INBOUND) < 200

    def test_admitted_connection_sends_upload(self):
        sim = ClosedLoopSimulator(bitmap_filter(DropController.never_drop()))
        result = sim.run([spec(Initiator.REMOTE, upload=100_000)])
        assert result.connections_admitted == 1
        assert result.passed.total_bytes(Direction.OUTBOUND) >= 100_000


class TestFeedbackBeatsReplay:
    def test_closed_loop_blocks_more_upload_than_replay(self):
        """The paper's 'can perform better in a real network' claim."""
        from repro.sim.replay import replay
        from repro.workload.apps import connection_packets
        import random

        specs = [spec(Initiator.REMOTE, start=float(i), sport=3000 + i, upload=200_000)
                 for i in range(10)]

        # Open-loop: replay the fixed packet stream with blocklist.
        packets = sorted(
            (p for i, s in enumerate(specs) for p in connection_packets(s, random.Random(i))),
            key=lambda p: p.timestamp,
        )
        open_loop = replay(packets, bitmap_filter(), use_blocklist=True)
        # Closed-loop: the same connections with admission feedback.
        closed = ClosedLoopSimulator(bitmap_filter()).run(specs)

        # Open-loop cannot stop the outbound upload packets (they are in
        # the trace and outbound always passes the filter; only the σ
        # blocklist catches some).  Closed-loop stops all of it.
        assert closed.passed.total_bytes(Direction.OUTBOUND) == 0
        assert open_loop.passed.total_bytes(Direction.OUTBOUND) >= 0


class TestRetries:
    def test_retry_reattempts_connection(self):
        sim = ClosedLoopSimulator(
            bitmap_filter(DropController.never_drop()),
            retry_probability=1.0,
            retry_after=5.0,
        )
        # First filter refuses nothing (P_d=0) so retries never trigger.
        result = sim.run([spec(Initiator.REMOTE)])
        assert result.connections_refused == 0

    def test_retry_counted_as_new_attempt(self):
        sim = ClosedLoopSimulator(
            bitmap_filter(), retry_probability=1.0, retry_after=5.0, seed=1
        )
        result = sim.run([spec(Initiator.REMOTE)])
        # Original + its retries all refused (P_d = 1 throughout).
        assert result.connections_refused >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopSimulator(AcceptAllFilter(), admission_window=0)
        with pytest.raises(ValueError):
            ClosedLoopSimulator(AcceptAllFilter(), retry_probability=1.5)
        with pytest.raises(ValueError):
            ClosedLoopSimulator(AcceptAllFilter(), retry_after=0.0)


class TestThresholdMonotonicity:
    def test_tighter_thresholds_admit_less_upload(self, small_trace_specs):
        """The clean monotone sweep that open-loop replay obscures."""
        results = {}
        for scale in (0.2, 1.0, 5.0):
            filt = bitmap_filter(
                DropController.red_mbps(low_mbps=0.05 * scale, high_mbps=0.1 * scale)
            )
            sim = ClosedLoopSimulator(filt)
            results[scale] = sim.run(small_trace_specs).passed.total_bytes(
                Direction.OUTBOUND
            )
        assert results[0.2] <= results[1.0] <= results[5.0]
        assert results[0.2] < results[5.0]


class TestPipelineIntegration:
    """The closed loop now drives the same engine as open-loop replay."""

    def test_result_carries_replay_view(self):
        sim = ClosedLoopSimulator(bitmap_filter())
        specs = [spec(Initiator.CLIENT), spec(Initiator.REMOTE, sport=3001)]
        result = sim.run(specs)
        replay = result.replay
        assert replay is not None
        assert replay.packets == result.packets_sent > 0
        # The result's series ARE the router's series — one accounting.
        assert replay.router.passed is result.passed
        assert replay.router.offered is result.offered
        assert replay.inbound_dropped >= result.connections_refused

    def test_blocklist_off_by_default(self):
        sim = ClosedLoopSimulator(bitmap_filter())
        result = sim.run([spec(Initiator.REMOTE)])
        assert result.replay.router.blocklist is None

    def test_blocklist_opt_in(self):
        sim = ClosedLoopSimulator(bitmap_filter(), use_blocklist=True)
        result = sim.run([spec(Initiator.REMOTE)])
        blocklist = result.replay.router.blocklist
        assert blocklist is not None
        assert len(blocklist) >= 1  # the refused σ is persisted


class TestRefusalTimes:
    def test_refusal_timestamps_surface(self):
        sim = ClosedLoopSimulator(bitmap_filter())
        specs = [spec(Initiator.REMOTE, start=float(i), sport=3000 + i)
                 for i in range(4)]
        result = sim.run(specs)
        assert len(result.refusal_times) == result.connections_refused == 4
        # One refusal per spec, at (or after) each spec's start, in order.
        assert result.refusal_times == sorted(result.refusal_times)
        for when, s in zip(result.refusal_times, specs):
            assert when >= s.start

    def test_no_refusals_no_times(self):
        sim = ClosedLoopSimulator(AcceptAllFilter())
        result = sim.run([spec(Initiator.REMOTE)])
        assert result.refusal_times == []


class TestRetryStreamSeeds:
    """Regression for the additive retry-seed domain (seed + 1_000_000)."""

    def test_retry_stream_is_nested_derive_seed(self):
        from repro.core.hashing import derive_seed
        from repro.sim.closedloop import retry_stream_seed

        assert retry_stream_seed(7, 42, 1) == derive_seed(derive_seed(7, 42), 1)

    def test_retry_stream_never_collides_with_primary_streams(self):
        # The old scheme mapped retry ident i to primary stream i + 1e6 —
        # a guaranteed collision once a workload held a million specs.
        from repro.core.hashing import derive_seed
        from repro.sim.closedloop import retry_stream_seed

        seed = 7
        primary = {derive_seed(seed, index) for index in range(1_000_000,
                                                              1_000_100)}
        retries = {retry_stream_seed(seed, ident, attempt)
                   for ident in range(100) for attempt in (1, 2)}
        assert not primary & retries

    def test_zero_attempt_path_unchanged(self):
        # attempts == 0 must keep the original derive_seed(seed, index)
        # stream so non-retry runs are byte-identical to the seed replays.
        import random as _random

        from repro.core.hashing import derive_seed
        from repro.workload.apps import connection_packets

        s = spec(Initiator.CLIENT)
        sim = ClosedLoopSimulator(AcceptAllFilter())
        result = sim.run([s], seed=9)
        expected = connection_packets(s, _random.Random(derive_seed(9, 0)))
        assert result.packets_sent == len(expected)
