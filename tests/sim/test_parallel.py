"""Tests for the multiprocess sharded replay engine.

The contract under test: ``replay(workers=N)`` / ``parallel_replay``
produce *identical* merged pass/drop counts, throughput-series bins,
drop-rate windows and per-shard statistics to a single-process replay of
the same sharded filter over the same trace, for every worker count.
"""

import random

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.naive import NaiveTimerFilter
from repro.filters.sharded import ShardedFilter
from repro.net.inet import IPPROTO_TCP, parse_ipv4
from repro.net.packet import Direction, Packet, SocketPair
from repro.sim.parallel import (
    DefaultLaneFilter,
    ParallelReplayResult,
    parallel_replay,
)
from repro.sim.replay import replay
from repro.workload import TraceConfig, TraceGenerator

BASE = parse_ipv4("10.1.0.0")


def make_sharded(shard_count=4, size=2 ** 14):
    """Shard the generator's 10.1.0.0/24 host range into equal subnets."""
    prefix = 24 + shard_count.bit_length() - 1
    step = 1 << (32 - prefix)
    return ShardedFilter([
        (BASE + i * step, prefix,
         BitmapPacketFilter(BitmapFilterConfig(size=size, vectors=4, hashes=3,
                                               rotate_interval=5.0)))
        for i in range(shard_count)
    ])


def trace(seed, duration=25.0, rate=6.0):
    config = TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    return TraceGenerator(config).packet_list()


def fingerprint(result):
    """Everything single-process and parallel runs must agree on."""
    router = result.router
    sharded = router.filter
    return {
        "packets": result.packets,
        "inbound_packets": result.inbound_packets,
        "inbound_dropped": result.inbound_dropped,
        "duration": result.duration,
        "filter_stats": sharded.stats.as_dict(),
        "shard_stats": sharded.shard_stats(),
        "unrouted": sharded.unrouted_packets,
        "offered_bins": router.offered._bins,
        "passed_bins": router.passed._bins,
        "drop_packets": router.inbound_drops._packets,
        "drop_dropped": router.inbound_drops._dropped,
        "blocked": (None if router.blocklist is None
                    else dict(router.blocklist._blocked)),
        "suppressed": (0 if router.blocklist is None
                       else router.blocklist.suppressed_packets),
    }


class TestEquivalence:
    """The property the whole engine exists to uphold."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_single_process(self, seed, workers):
        packets = trace(seed)
        single = replay(packets, make_sharded(), use_blocklist=True)
        parallel = parallel_replay(packets, make_sharded(), workers=workers)
        assert fingerprint(parallel) == fingerprint(single)

    def test_replay_workers_entry_point(self):
        packets = trace(3)
        single = replay(packets, make_sharded(), use_blocklist=True)
        parallel = replay(packets, make_sharded(), use_blocklist=True, workers=2)
        assert isinstance(parallel, ParallelReplayResult)
        assert parallel.workers == 2
        assert parallel.lanes  # per-lane records ride along on the result
        assert fingerprint(parallel) == fingerprint(single)

    def test_core_stats_flushed_per_shard(self):
        packets = trace(5)
        single = replay(packets, make_sharded(), use_blocklist=True)
        parallel = parallel_replay(packets, make_sharded(), workers=2)
        for position in range(4):
            expected = single.router.filter.shards[position][2].core.stats
            merged = parallel.router.filter.shards[position][2].core.stats
            assert merged.as_dict() == expected.as_dict()

    def test_no_blocklist(self):
        packets = trace(9)
        single = replay(packets, make_sharded(), use_blocklist=False)
        parallel = parallel_replay(packets, make_sharded(), workers=2,
                                   use_blocklist=False)
        assert fingerprint(parallel) == fingerprint(single)
        assert parallel.router.blocklist is None

    def test_transit_default_lane(self):
        """Packets matching no shard follow default_verdict in both engines."""
        def narrow():
            # Only 10.1.0.0/30 is sharded; most hosts become transit.
            return ShardedFilter(
                [(BASE, 30, BitmapPacketFilter(BitmapFilterConfig(size=2 ** 14)))],
                default_verdict=Verdict.PASS,
            )

        packets = trace(11)
        single = replay(packets, narrow(), use_blocklist=True)
        parallel = parallel_replay(packets, narrow(), workers=2)
        assert fingerprint(parallel) == fingerprint(single)
        assert parallel.router.filter.unrouted_packets > 0

    def test_dropping_default_lane_feeds_blocklist(self):
        def dropping():
            return ShardedFilter(
                [(BASE, 30, BitmapPacketFilter(BitmapFilterConfig(size=2 ** 14)))],
                default_verdict=Verdict.DROP,
            )

        packets = trace(13)
        single = replay(packets, dropping(), use_blocklist=True)
        parallel = parallel_replay(packets, dropping(), workers=2)
        assert fingerprint(parallel) == fingerprint(single)
        assert len(parallel.router.blocklist) > 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_long_span_blocklist_expiry(self, workers):
        """A trace outliving blocklist retention must still merge exactly.

        Expiry is per-connection, but the store's interior GC runs on the
        clock of whatever packets *that store* sees — per-lane stores GC
        at different times than one global store.  End-of-replay
        compaction makes the final table identical: a blocked pair in an
        otherwise-idle lane (stamped t=1, never GC'd by its lane) must
        not survive the merge when a single-process store would have
        collected it.
        """
        remote = parse_ipv4("203.0.113.9")
        host_a = BASE + 2        # shard 0
        host_b = BASE + 2 + 64   # shard 1 of a 4-way /26 split

        def unsolicited(dst, t, dport):
            pair = SocketPair(IPPROTO_TCP, remote, 80, dst, dport)
            return Packet(t, pair, size=100, direction=Direction.INBOUND)

        def outbound(src, t, sport):
            pair = SocketPair(IPPROTO_TCP, src, sport, remote, 80)
            return Packet(t, pair, size=100, direction=Direction.OUTBOUND)

        # Default retention is 3600s: the t=1 block is expired by t=5000,
        # while shard 0's lane sees nothing after t=1 and so never GCs it.
        packets = [
            unsolicited(host_a, 1.0, 4000),    # blocked in shard 0's lane
            outbound(host_b, 4800.0, 5000),    # advances only lane 1's clock
            unsolicited(host_b, 5000.0, 4001), # blocked in shard 1's lane
        ]
        single = replay(packets, make_sharded(), use_blocklist=True)
        parallel = parallel_replay(packets, make_sharded(), workers=workers)
        assert fingerprint(parallel) == fingerprint(single)
        assert len(parallel.router.blocklist) == 1  # only the live entry

    def test_non_bitmap_shards(self):
        """Lanes fall back to the per-packet loop for non-bitmap members."""
        def naive_sharded():
            return ShardedFilter([
                (BASE, 25, NaiveTimerFilter()),
                (BASE + 128, 25, NaiveTimerFilter()),
            ])

        packets = trace(17)
        single = replay(packets, naive_sharded(), use_blocklist=True)
        parallel = parallel_replay(packets, naive_sharded(), workers=2)
        assert fingerprint(parallel) == fingerprint(single)


class TestResultShape:
    def test_lane_packet_counts(self):
        packets = trace(1)
        parallel = parallel_replay(packets, make_sharded(), workers=2)
        counts = parallel.lane_packet_counts()
        assert sum(counts.values()) == len(packets)
        assert all(label.startswith("10.1.0.") for label in counts)

    def test_parent_filter_is_accumulator_only(self):
        """The caller's filter gains statistics, never bitmap state."""
        sharded = make_sharded()
        parallel_replay(trace(1), sharded, workers=2)
        assert sharded.stats.total > 0
        for _, _, shard in sharded.shards:
            # No lane ever marked the parent's vectors.
            assert all(vector.popcount() == 0 for vector in shard.core.vectors)

    def test_inbound_drop_rate_property(self):
        parallel = parallel_replay(trace(1), make_sharded(), workers=2)
        assert 0.0 <= parallel.inbound_drop_rate <= 1.0


class TestGuards:
    def test_requires_sharded_filter(self):
        with pytest.raises(ValueError, match="ShardedFilter"):
            parallel_replay(trace(1), BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 14)), workers=2)

    def test_rejects_shared_rng(self):
        shared = random.Random(0)
        sharded = ShardedFilter([
            (BASE, 25, BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 14), rng=shared)),
            (BASE + 128, 25, BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 14), rng=shared)),
        ])
        with pytest.raises(ValueError, match="share one RNG"):
            parallel_replay(trace(1), sharded, workers=2)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            parallel_replay(trace(1), make_sharded(), workers=0)
        with pytest.raises(ValueError):
            replay(trace(1), make_sharded(), workers=0)

    def test_rejects_scheduler(self):
        from repro.sim.engine import EventScheduler

        with pytest.raises(ValueError, match="scheduler"):
            replay(trace(1), make_sharded(), workers=2,
                   scheduler=EventScheduler())


class TestDefaultLaneFilter:
    def test_applies_verdict(self):
        pair = SocketPair(IPPROTO_TCP, parse_ipv4("8.8.8.8"), 1,
                          parse_ipv4("9.9.9.9"), 2)
        packet = Packet(0.0, pair, size=60, direction=Direction.INBOUND)
        assert DefaultLaneFilter(Verdict.PASS).process(packet) is Verdict.PASS
        assert DefaultLaneFilter(Verdict.DROP).process(packet) is Verdict.DROP


#: Standalone driver for the interrupt test: a deliberately slow sharded
#: replay interrupted mid-run.  On KeyboardInterrupt the run must already
#: have reaped every pool worker — ``active_children()`` is the witness.
INTERRUPT_SCRIPT = '''\
import multiprocessing
import sys
import time

from repro.filters.base import PacketFilter, Verdict
from repro.filters.sharded import ShardedFilter
from repro.net.inet import parse_ipv4
from repro.sim.parallel import parallel_replay
from repro.workload import TraceConfig, TraceGenerator


class SlowFilter(PacketFilter):
    name = "slow"

    def decide(self, packet):
        time.sleep(0.005)
        return Verdict.PASS


BASE = parse_ipv4("10.1.0.0")
sharded = ShardedFilter([
    (BASE + i * 64, 26, SlowFilter()) for i in range(4)
])
packets = TraceGenerator(
    TraceConfig(duration=40.0, connection_rate=10.0, seed=3)
).packet_list()
print("READY", flush=True)
try:
    parallel_replay(packets, sharded, workers=4, batched=False)
    print("FINISHED", flush=True)
except KeyboardInterrupt:
    leftover = multiprocessing.active_children()
    print(f"INTERRUPTED children={len(leftover)}", flush=True)
    sys.exit(0)
'''


class TestInterrupt:
    def test_sigint_reaps_workers(self, tmp_path):
        """SIGINT mid-replay: clean KeyboardInterrupt, zero orphans."""
        import os
        import signal as signal_module
        import subprocess
        import sys
        import time
        from pathlib import Path

        script = tmp_path / "interrupt_run.py"
        script.write_text(INTERRUPT_SCRIPT)
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline()
            assert ready.strip() == "READY"
            # Let the pool come up and the lanes get into their replay
            # loops before interrupting.
            time.sleep(1.0)
            proc.send_signal(signal_module.SIGINT)
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"stdout={out!r} stderr={err!r}"
        assert "INTERRUPTED children=0" in out, f"stdout={out!r} stderr={err!r}"
        assert "FINISHED" not in out


class TestTransports:
    """shm and pickle dispatch must be indistinguishable in results."""

    def table_trace(self, seed=7):
        from repro.net.table import as_table
        config = TraceConfig(duration=20.0, connection_rate=6.0, seed=seed)
        return as_table(TraceGenerator(config).iter_tables(512))

    def test_shm_matches_pickle_and_single_process(self):
        pytest.importorskip("multiprocessing.shared_memory")
        table = self.table_trace()
        single = replay(table, make_sharded(), use_blocklist=True)
        via_pickle = parallel_replay(
            table, make_sharded(), workers=2, transport="pickle"
        )
        via_shm = parallel_replay(
            table, make_sharded(), workers=2, transport="shm"
        )
        assert fingerprint(via_shm) == fingerprint(single)
        assert fingerprint(via_pickle) == fingerprint(single)

    def test_shm_leaves_parent_filter_state_untouched(self):
        pytest.importorskip("multiprocessing.shared_memory")
        table = self.table_trace()
        sharded = make_sharded()
        parallel_replay(table, sharded, workers=2, transport="shm")
        # Statistics merge back into the parent's filter; bitmap *state*
        # stays in the workers — the parent's vectors were never touched.
        for _, _, shard in sharded.shards:
            assert all(
                vector.utilization == 0.0 for vector in shard.core.vectors
            )
        assert sharded.stats.total > 0  # merged lane statistics

    def test_shm_coerces_packet_list_input(self):
        pytest.importorskip("multiprocessing.shared_memory")
        packets = trace(3, duration=10.0)
        single = replay(packets, make_sharded(), use_blocklist=True)
        via_shm = parallel_replay(
            packets, make_sharded(), workers=2, transport="shm"
        )
        assert fingerprint(via_shm) == fingerprint(single)

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport must be"):
            parallel_replay(
                self.table_trace(), make_sharded(), workers=2,
                transport="carrier-pigeon"
            )
