"""Equivalence tests: the batched fast path vs the per-packet pipeline.

The fast path's contract is *bit-identical* behavior — every verdict, every
counter, every RNG draw.  These tests replay the same synthetic traces
through both engines across seeds and configurations and require exact
agreement.
"""

import random

import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, FieldMode
from repro.core.hashing import HashIndexMemo, make_hash_family
from repro.filters.base import Verdict
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.blocklist import BlockedConnectionStore
from repro.filters.policy import DropController
from repro.filters.spi import SPIFilter
from repro.net.packet import Direction
from repro.sim.fastpath import PacketColumns, socket_key, supports_fastpath
from repro.sim.replay import replay
from repro.sim.router import EdgeRouter
from repro.workload.generator import TraceConfig, TraceGenerator

from tests.conftest import tcp_pair, udp_pair


def trace(seed, duration=40.0, rate=6.0):
    return TraceGenerator(
        TraceConfig(duration=duration, connection_rate=rate, seed=seed)
    ).packet_list()


SMALL_CONFIG = BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                                  rotate_interval=5.0)


def build_router(use_blocklist, red=False, field_mode=FieldMode.STRICT):
    controller = DropController.red_mbps(0.5, 2.0) if red else None
    config = BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                                rotate_interval=5.0, field_mode=field_mode)
    flt = BitmapPacketFilter(config, drop_controller=controller)
    blocklist = BlockedConnectionStore() if use_blocklist else None
    return EdgeRouter(flt, blocklist=blocklist)


def assert_routers_identical(a: EdgeRouter, b: EdgeRouter):
    assert a.filter.core.stats.as_dict() == b.filter.core.stats.as_dict()
    assert a.filter.stats.as_dict() == b.filter.stats.as_dict()
    assert a.filter.core.idx == b.filter.core.idx
    assert [v._bits for v in a.filter.core.vectors] == \
        [v._bits for v in b.filter.core.vectors]
    assert a.offered._bins == b.offered._bins
    assert a.passed._bins == b.passed._bins
    assert a.inbound_drops._packets == b.inbound_drops._packets
    assert a.inbound_drops._dropped == b.inbound_drops._dropped
    assert a.packets == b.packets
    if a.blocklist is not None:
        assert a.blocklist._blocked == b.blocklist._blocked
        assert a.blocklist.suppressed_packets == b.blocklist.suppressed_packets


class TestRouterBatchEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("use_blocklist", [True, False])
    def test_verdict_sequences_identical(self, seed, use_blocklist):
        packets = trace(seed)
        legacy_router = build_router(use_blocklist)
        batch_router = build_router(use_blocklist)
        legacy = [legacy_router.forward(p) for p in packets]
        batched = batch_router.process_batch(packets)
        assert legacy == batched
        assert_routers_identical(legacy_router, batch_router)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_red_controller_identical(self, seed):
        # The RED P_d varies per packet and consumes the drop RNG; both
        # trajectories must match draw for draw.
        packets = trace(seed)
        legacy_router = build_router(True, red=True)
        batch_router = build_router(True, red=True)
        legacy = [legacy_router.forward(p) for p in packets]
        batched = batch_router.process_batch(packets)
        assert legacy == batched
        assert_routers_identical(legacy_router, batch_router)

    def test_hole_punching_identical(self):
        packets = trace(6)
        legacy_router = build_router(True, field_mode=FieldMode.HOLE_PUNCHING)
        batch_router = build_router(True, field_mode=FieldMode.HOLE_PUNCHING)
        assert [legacy_router.forward(p) for p in packets] == \
            batch_router.process_batch(packets)
        assert_routers_identical(legacy_router, batch_router)

    @pytest.mark.parametrize("use_blocklist", [True, False])
    def test_outbound_never_dropped_by_filter(self, use_blocklist):
        # The bitmap filter must never drop outbound traffic in either
        # path; with the blocklist off, that means every outbound packet's
        # final verdict is PASS too.
        packets = trace(7)
        for batched in (False, True):
            result = replay(
                packets,
                BitmapPacketFilter(SMALL_CONFIG),
                use_blocklist=use_blocklist,
                batched=batched,
            )
            stats = result.router.filter.stats
            assert stats.dropped[Direction.OUTBOUND] == 0
        if not use_blocklist:
            router = build_router(False)
            verdicts = router.process_batch(packets)
            for packet, verdict in zip(packets, verdicts):
                if packet.direction is Direction.OUTBOUND:
                    assert verdict is Verdict.PASS

    def test_replay_results_identical(self):
        packets = trace(8)
        legacy = replay(packets, BitmapPacketFilter(SMALL_CONFIG))
        batched = replay(packets, BitmapPacketFilter(SMALL_CONFIG), batched=True)
        assert legacy.packets == batched.packets
        assert legacy.inbound_packets == batched.inbound_packets
        assert legacy.inbound_dropped == batched.inbound_dropped
        assert legacy.duration == batched.duration
        assert_routers_identical(legacy.router, batched.router)

    def test_batched_replay_falls_back_for_other_filters(self):
        # SPI now has its own fused kernel; an *unregistered* filter —
        # e.g. any subclass, which may override per-packet hooks — must
        # still take the generic path and stay equivalent.
        packets = trace(9)

        class TracingSPIFilter(SPIFilter):
            pass

        assert supports_fastpath(SPIFilter())
        assert not supports_fastpath(TracingSPIFilter())
        legacy = replay(packets, TracingSPIFilter(), batched=False)
        batched = replay(packets, TracingSPIFilter(), batched=True)
        assert legacy.inbound_dropped == batched.inbound_dropped
        assert legacy.router.filter.stats.as_dict() == \
            batched.router.filter.stats.as_dict()

    def test_empty_batch(self):
        router = build_router(True)
        assert router.process_batch([]) == []
        assert router.packets == 0

    def test_batches_compose(self):
        # Splitting a stream into several process_batch calls must match
        # one big batch (state carries over between batches).
        packets = trace(10)
        cut = len(packets) // 3
        one = build_router(True)
        many = build_router(True)
        whole = one.process_batch(packets)
        parts = (many.process_batch(packets[:cut])
                 + many.process_batch(packets[cut:2 * cut])
                 + many.process_batch(packets[2 * cut:]))
        assert whole == parts
        assert_routers_identical(one, many)


class TestFilterProcessBatch:
    @pytest.mark.parametrize("red", [False, True])
    def test_standalone_filter_batch_matches_process(self, red):
        packets = trace(11)
        controller = (lambda: DropController.red_mbps(0.5, 2.0)) if red else (lambda: None)
        legacy = BitmapPacketFilter(SMALL_CONFIG, drop_controller=controller())
        batched = BitmapPacketFilter(SMALL_CONFIG, drop_controller=controller())
        assert [legacy.process(p) for p in packets] == batched.process_batch(packets)
        assert legacy.stats.as_dict() == batched.stats.as_dict()
        assert legacy.core.stats.as_dict() == batched.core.stats.as_dict()
        assert [v._bits for v in legacy.core.vectors] == \
            [v._bits for v in batched.core.vectors]


class TestCoreProcessBatch:
    def synthetic_ops(self, seed, count=3000):
        """A randomized mark/lookup schedule crossing many rotations."""
        rng = random.Random(seed)
        now = 0.0
        timestamps, outbound, pairs = [], [], []
        for _ in range(count):
            now += rng.expovariate(50.0)
            timestamps.append(now)
            outbound.append(rng.random() < 0.5)
            pairs.append(tcp_pair(sport=2000 + rng.randrange(200)))
        return timestamps, outbound, pairs

    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_per_packet_filter(self, seed):
        timestamps, outbound, pairs = self.synthetic_ops(seed)
        config = BitmapFilterConfig(size=2 ** 12, vectors=3, hashes=3,
                                    rotate_interval=0.5)
        legacy = BitmapFilter(config)
        batched = BitmapFilter(config)
        probability = 0.7  # exercises the RNG path

        expected = []
        for ts, out, pair in zip(timestamps, outbound, pairs):
            legacy.advance_to(ts)
            direction = Direction.OUTBOUND if out else Direction.INBOUND
            expected.append(legacy.filter(pair, direction, probability))

        memo = HashIndexMemo(batched.family)
        keys = [
            socket_key(pair, Direction.OUTBOUND if out else Direction.INBOUND, False)
            for out, pair in zip(outbound, pairs)
        ]
        got = batched.process_batch(
            timestamps, outbound, memo.get_many(keys), drop_probability=probability
        )
        assert expected == got
        assert legacy.stats.as_dict() == batched.stats.as_dict()
        assert legacy.idx == batched.idx
        assert [v._bits for v in legacy.vectors] == [v._bits for v in batched.vectors]

    def test_empty(self):
        filt = BitmapFilter(BitmapFilterConfig(size=2 ** 10))
        assert filt.process_batch([], [], []) == []


class TestHashingBatchHelpers:
    def test_indices_many_matches_indices(self):
        family = make_hash_family(3, 2 ** 16, seed=5)
        keys = [(6, i, i * 7, 99, 443) for i in range(50)]
        assert family.indices_many(keys) == \
            [tuple(family.indices(k)) for k in keys]

    def test_memo_returns_same_indices(self):
        family = make_hash_family(3, 2 ** 16, seed=5)
        memo = HashIndexMemo(family)
        key = (6, 1, 2, 3, 4)
        assert memo.get(key) == tuple(family.indices(key))
        assert memo.get(key) == tuple(family.indices(key))
        assert memo.hits == 1 and memo.misses == 1

    def test_memo_bounded_eviction(self):
        family = make_hash_family(2, 2 ** 10, seed=1)
        memo = HashIndexMemo(family, capacity=8)
        keys = [(6, i, i, i, i) for i in range(20)]
        for key in keys:
            memo.get(key)
        assert len(memo) == 8
        # Least-recently-used were evicted; the newest survive.
        assert memo.get_many(keys[-8:]) == [tuple(family.indices(k)) for k in keys[-8:]]

    def test_get_many_batch_larger_than_capacity(self):
        family = make_hash_family(2, 2 ** 10, seed=1)
        memo = HashIndexMemo(family, capacity=4)
        keys = [(6, i, i, i, i) for i in range(16)]
        assert memo.get_many(keys) == [tuple(family.indices(k)) for k in keys]
        assert len(memo) == 4

    def test_memo_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HashIndexMemo(make_hash_family(2, 2 ** 10), capacity=0)

    def test_socket_key_matches_key_fields(self):
        filt_strict = BitmapFilter(BitmapFilterConfig(size=2 ** 10))
        filt_hole = BitmapFilter(
            BitmapFilterConfig(size=2 ** 10, field_mode=FieldMode.HOLE_PUNCHING)
        )
        for pair in (tcp_pair(), udp_pair(), tcp_pair().inverse):
            for direction in (Direction.OUTBOUND, Direction.INBOUND):
                assert socket_key(pair, direction, False) == \
                    tuple(filt_strict._key_fields(pair, direction))
                assert socket_key(pair, direction, True) == \
                    tuple(filt_hole._key_fields(pair, direction))


class TestPacketColumns:
    def test_columns_share_index_tuples_across_repeats(self):
        flt = BitmapPacketFilter(SMALL_CONFIG)
        packets = trace(12)
        columns = PacketColumns.from_packets(packets, flt)
        assert len(columns) == len(packets)
        seen = {}
        for key_indices in columns.indices:
            seen[id(key_indices)] = key_indices
        # Repetitive flows share tuple objects through the memo.
        assert len(seen) < len(packets)

    def test_rejects_directionless_packets(self):
        flt = BitmapPacketFilter(SMALL_CONFIG)
        packets = trace(13)
        packets[5].direction = None
        with pytest.raises(ValueError):
            PacketColumns.from_packets(packets, flt)
