"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "cli_trace.pcap")
    code = main(["trace", "--out", path, "--duration", "10", "--rate", "6",
                 "--seed", "3"])
    assert code == 0
    return path


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "commands" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_plan_requires_connections(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestTrace:
    def test_writes_pcap(self, trace_path, capsys):
        import os

        assert os.path.getsize(trace_path) > 1000

    def test_headers_only_snaplen(self, tmp_path):
        path = str(tmp_path / "headers.pcap")
        assert main(["trace", "--out", path, "--duration", "5", "--rate", "4",
                     "--snaplen", "64"]) == 0
        from repro.net.pcap import read_pcap

        assert all(len(record.data) <= 64 for record in read_pcap(path))


class TestAnalyze:
    def test_reports_distribution(self, trace_path, capsys):
        assert main(["analyze", trace_path]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out
        assert "connections" in out
        assert "upload share" in out

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.pcap")])


class TestFilter:
    def test_bitmap_replay(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "bitmap"]) == 0
        out = capsys.readouterr().out
        assert "inbound drop rate" in out
        assert "filter memory: 512 KiB" in out

    def test_auto_red(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "bitmap", "--auto-red"]) == 0
        assert "RED L=" in capsys.readouterr().out

    def test_spi_replay(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "spi"]) == 0
        assert "spi" in capsys.readouterr().out

    def test_counting_replay(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "counting",
                     "--size-bits", "16"]) == 0
        assert "counting-bitmap" in capsys.readouterr().out

    def test_none_filter(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "none",
                     "--no-blocklist"]) == 0
        out = capsys.readouterr().out
        assert "inbound drop rate: 0.00%" in out

    def test_hole_punching_flag(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "bitmap",
                     "--hole-punching"]) == 0


class TestPlan:
    def test_paper_scenario(self, capsys):
        assert main(["plan", "--connections", "15000", "--target-p", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "bitmap" in out
        assert "capacity" in out

    def test_rejects_bad_expiry(self, capsys):
        with pytest.raises(ValueError):
            main(["plan", "--connections", "1000", "--expiry", "400"])


class TestFigures:
    def test_figures_from_pcap(self, trace_path, capsys):
        assert main(["figures", trace_path]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Figure 4" in out
        assert "Figure 8" in out
        assert "Figure 9-b" in out

    def test_figures_synthetic(self, capsys):
        assert main(["figures", "--duration", "8", "--rate", "5"]) == 0
        out = capsys.readouterr().out
        assert "synthesizing trace" in out
        assert "Table 2" in out
