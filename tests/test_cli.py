"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "cli_trace.pcap")
    code = main(["trace", "--out", path, "--duration", "10", "--rate", "6",
                 "--seed", "3"])
    assert code == 0
    return path


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "commands" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_trace_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_plan_requires_connections(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestTrace:
    def test_writes_pcap(self, trace_path, capsys):
        import os

        assert os.path.getsize(trace_path) > 1000

    def test_headers_only_snaplen(self, tmp_path):
        path = str(tmp_path / "headers.pcap")
        assert main(["trace", "--out", path, "--duration", "5", "--rate", "4",
                     "--snaplen", "64"]) == 0
        from repro.net.pcap import read_pcap

        assert all(len(record.data) <= 64 for record in read_pcap(path))


class TestAnalyze:
    def test_reports_distribution(self, trace_path, capsys):
        assert main(["analyze", trace_path]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out
        assert "connections" in out
        assert "upload share" in out

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.pcap")])


class TestFilter:
    def test_bitmap_replay(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "bitmap"]) == 0
        out = capsys.readouterr().out
        assert "inbound drop rate" in out
        assert "filter memory: 512 KiB" in out

    def test_auto_red(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "bitmap", "--auto-red"]) == 0
        assert "RED L=" in capsys.readouterr().out

    def test_spi_replay(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "spi"]) == 0
        assert "spi" in capsys.readouterr().out

    def test_counting_replay(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "counting",
                     "--size-bits", "16"]) == 0
        assert "counting-bitmap" in capsys.readouterr().out

    def test_none_filter(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "none",
                     "--no-blocklist"]) == 0
        out = capsys.readouterr().out
        assert "inbound drop rate: 0.00%" in out

    def test_hole_punching_flag(self, trace_path, capsys):
        assert main(["filter", trace_path, "--filter", "bitmap",
                     "--hole-punching"]) == 0


class TestTraceWorkers:
    def test_parallel_pcap_byte_identical(self, trace_path, tmp_path):
        import filecmp

        parallel_path = str(tmp_path / "parallel.pcap")
        assert main(["trace", "--out", parallel_path, "--duration", "10",
                     "--rate", "6", "--seed", "3", "--workers", "2"]) == 0
        assert filecmp.cmp(trace_path, parallel_path, shallow=False)

    def test_workers_flag_parses_everywhere(self):
        parser = build_parser()
        assert parser.parse_args(["trace", "--out", "x", "--workers", "4"
                                  ]).workers == 4
        assert parser.parse_args(["feed", "unix:/tmp/s", "--workers", "2"
                                  ]).workers == 2
        args = parser.parse_args(["filter", "--gen-workers", "2"])
        assert args.gen_workers == 2 and args.pcap is None
        assert parser.parse_args(["figures", "--gen-workers", "2"
                                  ]).gen_workers == 2


class TestFilterSynthetic:
    def test_filter_without_pcap_synthesizes(self, capsys):
        assert main(["filter", "--filter", "bitmap", "--duration", "8",
                     "--rate", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "synthesizing trace" in out
        assert "inbound drop rate" in out

    def test_filter_synthetic_with_gen_workers(self, capsys):
        assert main(["filter", "--filter", "spi", "--duration", "8",
                     "--rate", "5", "--seed", "3", "--gen-workers", "2"]) == 0
        assert "inbound drop rate" in capsys.readouterr().out


class TestPlan:
    def test_paper_scenario(self, capsys):
        assert main(["plan", "--connections", "15000", "--target-p", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "bitmap" in out
        assert "capacity" in out

    def test_rejects_bad_expiry(self, capsys):
        with pytest.raises(ValueError):
            main(["plan", "--connections", "1000", "--expiry", "400"])


class TestSwarm:
    ARGS = ["swarm", "--peers", "4", "--clients", "2", "--duration", "30",
            "--seed", "7"]

    def test_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "penetration probability" in out
        assert "evasion=on" in out
        assert "fingerprint" in out

    def test_json_output_is_deterministic(self, tmp_path, capsys):
        import json

        paths = [str(tmp_path / name) for name in ("a.json", "b.json")]
        for path in paths:
            assert main(self.ARGS + ["--json", path]) == 0
        first, second = (open(path).read() for path in paths)
        assert first == second
        payload = json.loads(first)
        assert payload["attempts"]["total"] > 0

    def test_no_evasion_flag(self, capsys):
        assert main(self.ARGS + ["--no-evasion"]) == 0
        assert "evasion=off" in capsys.readouterr().out

    def test_retune_direct(self, capsys):
        assert main(self.ARGS + ["--pd", "0", "--retune-mbps", "0.5"]) == 0
        assert "retune (direct)" in capsys.readouterr().out

    def test_filter_kinds_parse(self):
        parser = build_parser()
        for kind in ("bitmap", "counting", "spi", "chain"):
            args = parser.parse_args(["swarm", "--filter", kind])
            assert args.filter_name == kind


class TestFigures:
    def test_figures_from_pcap(self, trace_path, capsys):
        assert main(["figures", trace_path]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Figure 4" in out
        assert "Figure 8" in out
        assert "Figure 9-b" in out

    def test_figures_synthetic(self, capsys):
        assert main(["figures", "--duration", "8", "--rate", "5"]) == 0
        out = capsys.readouterr().out
        assert "synthesizing trace" in out
        assert "Table 2" in out


class TestServeAndCtl:
    def test_serve_flat_out_generator(self, capsys):
        assert main(["serve", "--source", "generator", "--duration", "8",
                     "--rate", "5", "--seed", "3", "--chunk-size", "256",
                     "--size-bits", "12", "--vectors", "3", "--hashes", "2",
                     "--low-mbps", "0.1", "--high-mbps", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "serving generator" in out
        assert "verdict fingerprint:" in out

    def test_serve_then_ctl_roundtrip(self, tmp_path, capsys):
        import threading

        sock = str(tmp_path / "ctl.sock")
        address = f"unix:{sock}"
        box = {}

        def daemon():
            box["rc"] = main([
                "serve", "--source", "generator", "--duration", "20",
                "--rate", "6", "--seed", "5", "--chunk-size", "512",
                "--speed", "40", "--size-bits", "12", "--vectors", "3",
                "--hashes", "2", "--low-mbps", "0.1", "--high-mbps", "1.0",
                "--control", address, "--snapshot-dir", str(tmp_path),
            ])

        thread = threading.Thread(target=daemon, daemon=True)
        thread.start()
        import time

        deadline = time.monotonic() + 10.0
        while not (tmp_path / "ctl.sock").exists():
            assert time.monotonic() < deadline, "control socket never appeared"
            time.sleep(0.02)

        assert main(["ctl", address, "health"]) == 0
        assert main(["ctl", address, "config", "--low-mbps", "0.5",
                     "--high-mbps", "2.0"]) == 0
        assert main(["ctl", address, "snapshot"]) == 0
        assert main(["ctl", address, "stats"]) == 0
        assert main(["ctl", address, "shutdown"]) == 0
        thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert box["rc"] == 0
        out = capsys.readouterr().out
        assert '"status": "running"' in out
        assert '"low_mbps": 0.5' in out
        assert "snapshot-00000001.json" in out
        assert '"drop_policy"' in out

    def test_ctl_against_dead_socket(self, tmp_path, capsys):
        rc = main(["ctl", f"unix:{tmp_path / 'gone.sock'}", "health"])
        assert rc == 1
        assert "control error" in capsys.readouterr().err

    def test_ctl_config_requires_params(self, tmp_path, capsys):
        rc = main(["ctl", f"unix:{tmp_path / 'gone.sock'}", "config"])
        assert rc in (1, 2)


class TestTransportFlag:
    def test_transport_needs_workers(self, trace_path):
        with pytest.raises(SystemExit, match="workers"):
            main(["filter", trace_path, "--filter", "bitmap",
                  "--transport", "shm"])

    def test_sharded_replay_with_transport(self, trace_path, capsys):
        pytest.importorskip("multiprocessing.shared_memory")
        assert main(["filter", trace_path, "--filter", "bitmap",
                     "--workers", "2", "--shard-bits", "1",
                     "--transport", "shm"]) == 0
        assert "inbound drop rate" in capsys.readouterr().out


class TestFeed:
    def test_feed_socket_source(self, tmp_path, capsys):
        """`repro feed` streams binary frames a SocketSource decodes."""
        import threading

        from repro.service.sources import SocketSource

        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        received = []

        def consume():
            received.extend(source)

        consumer = threading.Thread(target=consume)
        consumer.start()
        try:
            assert main(["feed", f"unix:{path}", "--duration", "3",
                         "--rate", "5", "--seed", "2",
                         "--chunk-size", "64"]) == 0
        finally:
            consumer.join(timeout=5.0)
            source.close()
        out = capsys.readouterr().out
        assert "binary frames" in out
        assert sum(len(chunk) for chunk in received) > 0
        # Pool-delta frames: pair ids stay stable across received chunks.
        seen = {}
        for chunk in received:
            for position in range(len(chunk)):
                pair = chunk.pair(position)
                assert seen.setdefault(pair, chunk.pair_ids[position]) == \
                    chunk.pair_ids[position]


class TestFleet:
    def test_fleet_parser_tree(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "serve", "--keying", "hash",
                                  "--shards", "3", "--rolling-restart"])
        assert args.shards == 3 and args.rolling_restart
        args = parser.parse_args(["fleet", "status", "/tmp/x"])
        assert args.workdir == "/tmp/x"
        args = parser.parse_args(["fleet", "ctl", "/tmp/x", "config",
                                  "--low-mbps", "0.5"])
        assert args.command == "config" and args.low_mbps == 0.5
        with pytest.raises(SystemExit):
            parser.parse_args(["fleet", "serve", "--keying", "geo"])

    def test_fleet_status_without_manifest(self, tmp_path):
        with pytest.raises(SystemExit, match="manifest"):
            main(["fleet", "status", str(tmp_path)])

    def test_fleet_serve_rejects_bad_shard_args(self, tmp_path):
        with pytest.raises(SystemExit, match="keying hash"):
            main(["fleet", "serve", "--keying", "subnet", "--shards", "3"])
        with pytest.raises(SystemExit, match="out of range"):
            main(["fleet", "serve", "--keying", "hash", "--shards", "2",
                  "--kill-shard", "5"])

    def test_fleet_serve_end_to_end(self, tmp_path, capsys):
        """A tiny 2-shard fleet through the CLI, verified offline."""
        assert main(["fleet", "serve",
                     "--workdir", str(tmp_path / "fleet"),
                     "--keying", "subnet", "--shard-bits", "1",
                     "--duration", "6", "--rate", "5", "--seed", "5",
                     "--chunk-size", "512", "--size-bits", "12",
                     "--vectors", "3", "--hashes", "2",
                     "--verify-offline"]) == 0
        out = capsys.readouterr().out
        assert "fleet fingerprint:" in out
        assert "offline verification: fingerprint and blocklist identical" in out
