"""Tests for the retune loop: appliers, probing, recovery criterion."""

import pytest

from repro.core.autotune import TargetRateController
from repro.core.dropper import StaticDropPolicy
from repro.filters.policy import DropController
from repro.swarm.retune import ControlApplier, DirectApplier, RetuneLoop


def make_loop(applier=None, target_bps=1_000_000.0, **kwargs):
    controller = TargetRateController(target_bps, gain=0.5)
    if applier is None:
        applier = DirectApplier(DropController(StaticDropPolicy(0.0)))
    return RetuneLoop(controller, applier, **kwargs)


class TestDirectApplier:
    def test_mutates_the_static_policy(self):
        drop_controller = DropController(StaticDropPolicy(0.0))
        DirectApplier(drop_controller).apply(0.7)
        assert drop_controller.policy._probability == 0.7

    def test_rejects_non_static_policies(self):
        red = DropController.red_mbps(low_mbps=1.0, high_mbps=2.0)
        with pytest.raises(ValueError):
            DirectApplier(red)


class TestControlApplier:
    def test_sends_probability_config(self):
        sent = []

        class FakeClient:
            def configure(self, **params):
                sent.append(params)

        ControlApplier(FakeClient()).apply(0.4)
        assert sent == [{"probability": 0.4}]


class TestProbe:
    def test_probe_applies_and_logs(self):
        drop_controller = DropController(StaticDropPolicy(0.0))
        loop = make_loop(DirectApplier(drop_controller))
        probability = loop.probe(5.0, measured_bps=3_000_000.0)
        assert probability > 0.0
        assert drop_controller.policy._probability == probability
        assert loop.log == [(5.0, 3_000_000.0, probability)]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_loop(interval=0.0)
        with pytest.raises(ValueError):
            make_loop(tolerance=-0.1)
        with pytest.raises(ValueError):
            make_loop(hold=0)


class TestRecoveryTime:
    def test_none_without_onset(self):
        assert make_loop().recovery_time(None) is None

    def test_recovery_needs_hold_consecutive_probes(self):
        loop = make_loop(tolerance=0.1, hold=2)
        # target 1 Mbps, bound 1.1 Mbps.  Over at 10/15, dips at 20,
        # bounces at 25 (run resets), recovers for good at 30.
        for when, measured in ((10.0, 2e6), (15.0, 1.5e6), (20.0, 1.0e6),
                               (25.0, 1.4e6), (30.0, 0.9e6), (35.0, 0.8e6)):
            loop.log.append((when, measured, 0.5))
        assert loop.recovery_time(onset=10.0) == pytest.approx(20.0)

    def test_never_recovered_is_none(self):
        loop = make_loop(hold=2)
        loop.log.extend([(10.0, 5e6, 1.0), (15.0, 4e6, 1.0)])
        assert loop.recovery_time(onset=5.0) is None

    def test_probes_before_onset_ignored(self):
        loop = make_loop(tolerance=0.1, hold=1)
        loop.log.extend([(5.0, 0.5e6, 0.0),   # calm before the storm
                         (10.0, 3e6, 0.8),    # onset-era overload
                         (15.0, 0.9e6, 0.8)])
        assert loop.recovery_time(onset=8.0) == pytest.approx(7.0)
