"""Tests for the evasion policy and its deterministic tactic cycle."""

import pytest

from repro.swarm.evasion import (
    ALL_TACTICS,
    EvasionPolicy,
    TACTIC_CHURN,
    TACTIC_CYCLE,
    TACTIC_HOLE_PUNCH,
    TACTIC_INITIAL,
    TACTIC_PEX,
    TACTIC_PORT_HOP,
    TACTIC_REANNOUNCE,
)


class TestPolicy:
    def test_defaults_enable_everything(self):
        policy = EvasionPolicy()
        assert policy.any_enabled
        assert policy.enabled_tactics() == list(TACTIC_CYCLE)

    def test_off_disables_everything(self):
        policy = EvasionPolicy.off()
        assert not policy.any_enabled
        assert policy.enabled_tactics() == []
        assert policy.max_attempts == 0

    def test_tactic_cycle_is_deterministic(self):
        policy = EvasionPolicy()
        first_pass = [policy.tactic_for(i) for i in range(len(TACTIC_CYCLE))]
        assert first_pass == list(TACTIC_CYCLE)
        # The cycle wraps.
        assert policy.tactic_for(len(TACTIC_CYCLE)) == TACTIC_CYCLE[0]

    def test_disabled_tactics_skipped(self):
        policy = EvasionPolicy(reannounce=False, hole_punch=False)
        assert policy.enabled_tactics() == [
            TACTIC_PORT_HOP, TACTIC_PEX, TACTIC_CHURN,
        ]
        assert policy.tactic_for(1) == TACTIC_PEX

    def test_no_tactics_raises(self):
        with pytest.raises(ValueError):
            EvasionPolicy.off().tactic_for(0)

    def test_backoff_grows_geometrically(self):
        policy = EvasionPolicy(retry_backoff=2.0, backoff_factor=1.5)
        assert policy.backoff_for(0) == 2.0
        assert policy.backoff_for(1) == 3.0
        assert policy.backoff_for(2) == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            EvasionPolicy(retry_backoff=0.0)
        with pytest.raises(ValueError):
            EvasionPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            EvasionPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            EvasionPolicy(hole_punch_delay=0.0)

    def test_all_tactics_covers_cycle_plus_initial(self):
        assert ALL_TACTICS[0] == TACTIC_INITIAL
        assert set(TACTIC_CYCLE) < set(ALL_TACTICS)
        assert TACTIC_REANNOUNCE in ALL_TACTICS

    def test_as_dict_round_trips(self):
        policy = EvasionPolicy(port_hop=False, max_attempts=3)
        rebuilt = EvasionPolicy(**policy.as_dict())
        assert rebuilt.as_dict() == policy.as_dict()
