"""Tests for the deterministic tracker: back-off, recency, samples."""

import random

import pytest

from repro.swarm.tracker import AnnounceResult, Tracker, TrackerEntry

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR


def make_tracker(clients=3, peers=5, **kwargs):
    tracker = Tracker(random.Random(11), **kwargs)
    for index in range(clients):
        tracker.register(TrackerEntry("client", index, CLIENT_ADDR + index, 6881))
    for index in range(peers):
        tracker.register(TrackerEntry("peer", index, REMOTE_ADDR + index, 6881))
    return tracker


class TestAnnounce:
    def test_peer_announce_samples_clients(self):
        tracker = make_tracker()
        outcome = tracker.announce("peer", 0, now=1.0)
        assert outcome.accepted
        assert {entry.kind for entry in outcome.sample} == {"client"}
        assert outcome.interval == tracker.announce_interval

    def test_client_announce_samples_peers(self):
        tracker = make_tracker()
        outcome = tracker.announce("client", 0, now=1.0)
        assert outcome.accepted
        assert {entry.kind for entry in outcome.sample} == {"peer"}

    def test_unregistered_member_raises(self):
        with pytest.raises(KeyError):
            make_tracker().announce("peer", 99, now=1.0)

    def test_sample_respects_numwant(self):
        tracker = make_tracker(peers=20, numwant=4)
        outcome = tracker.announce("client", 0, now=1.0)
        assert len(outcome.sample) == 4


class TestBackoff:
    def test_early_reannounce_refused_with_retry_at(self):
        tracker = make_tracker(min_interval=10.0)
        assert tracker.announce("peer", 0, now=5.0).accepted
        retry = tracker.announce("peer", 0, now=8.0)
        assert not retry.accepted
        assert retry.retry_at == 15.0
        assert retry.sample is None

    def test_reannounce_allowed_after_backoff(self):
        tracker = make_tracker(min_interval=10.0)
        tracker.announce("peer", 0, now=5.0)
        assert tracker.announce("peer", 0, now=15.0).accepted

    def test_backoff_is_per_actor(self):
        tracker = make_tracker(min_interval=10.0)
        tracker.announce("peer", 0, now=5.0)
        assert tracker.announce("peer", 1, now=6.0).accepted

    def test_earliest_announce_tracks_allowance(self):
        tracker = make_tracker(min_interval=10.0)
        assert tracker.earliest_announce("peer", 0) == 0.0
        tracker.announce("peer", 0, now=3.0)
        assert tracker.earliest_announce("peer", 0) == 13.0


class TestRecency:
    def test_reannounced_peer_moves_to_front(self):
        tracker = make_tracker(peers=40, numwant=8, recent_window=8)
        for index in range(40):
            tracker.announce("peer", index, now=float(index))
        # Peer 0 announced first (stale); a re-announce makes it current.
        outcome = tracker.announce("peer", 0, now=100.0, evasive=True)
        assert outcome.accepted
        sample = tracker.announce("client", 0, now=101.0).sample
        indices = {entry.index for entry in sample}
        assert 0 in indices  # front of the recency window: always sampled

    def test_evasive_flag_recorded(self):
        tracker = make_tracker()
        tracker.announce("peer", 2, now=1.0, evasive=True)
        sample = tracker.announce("client", 0, now=2.0).sample
        flagged = {entry.index: entry.evasive for entry in sample}
        assert flagged.get(2) is True

    def test_stale_peers_age_out_of_window(self):
        tracker = make_tracker(peers=40, numwant=8, recent_window=8)
        for index in range(40):
            tracker.announce("peer", index, now=float(index))
        sample = tracker.announce("client", 0, now=50.0).sample
        # Only the 8 most recent announcers (32..39) are in the window.
        assert {entry.index for entry in sample} <= set(range(32, 40))


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            Tracker(random.Random(0), min_interval=0.0)
        with pytest.raises(ValueError):
            Tracker(random.Random(0), min_interval=30.0, announce_interval=10.0)
        with pytest.raises(ValueError):
            Tracker(random.Random(0), numwant=0)

    def test_announce_result_accepted_property(self):
        assert AnnounceResult(sample=[]).accepted
        assert not AnnounceResult(retry_at=5.0).accepted
