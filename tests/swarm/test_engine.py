"""Tests for the closed-loop swarm engine.

The heavier closed-loop properties (evasion frontier, recovery at scale)
live in benchmarks/bench_swarm.py; these tests pin the engine's
semantics on small, fast engagements.
"""

import json
import os
import tempfile

import pytest

from repro.core.autotune import TargetRateController
from repro.core.bitmap_filter import BitmapFilterConfig, FieldMode
from repro.core.dropper import StaticDropPolicy
from repro.filters.base import AcceptAllFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.swarm import (
    ControlApplier,
    DirectApplier,
    EvasionPolicy,
    RetuneLoop,
    SwarmConfig,
    SwarmSimulator,
    TACTIC_HOLE_PUNCH,
    TACTIC_INITIAL,
    launch_control_service,
)


def small_config(**overrides):
    defaults = dict(peers=6, clients=2, duration=45.0, seed=7,
                    background_rate=0.5)
    defaults.update(overrides)
    return SwarmConfig(**defaults)


def bitmap_filter(pd=1.0, field_mode=FieldMode.STRICT, size=2 ** 14):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=size, vectors=4, hashes=3,
                           rotate_interval=5.0, field_mode=field_mode,
                           seed=1),
        DropController(StaticDropPolicy(pd)),
    )


class TestAdmission:
    def test_accept_all_admits_every_attempt(self):
        result = SwarmSimulator(AcceptAllFilter(), small_config()).run()
        assert result.attempts_total > 0
        assert result.attempts_refused == 0
        assert result.penetration_probability == 1.0
        assert result.evasion_onset is None
        assert result.refusal_times == []

    def test_always_drop_strict_refuses_every_attempt(self):
        result = SwarmSimulator(bitmap_filter(pd=1.0), small_config()).run()
        assert result.attempts_total > 0
        assert result.attempts_admitted == 0
        assert result.penetration_probability == 0.0
        assert result.peers_penetrated == 0

    def test_refusal_times_surface_in_order(self):
        result = SwarmSimulator(bitmap_filter(pd=1.0), small_config()).run()
        assert len(result.refusal_times) == result.attempts_refused
        assert result.refusal_times == sorted(result.refusal_times)
        assert result.evasion_onset == result.refusal_times[0]

    def test_reverse_connections_escape_the_filter(self):
        # Client-initiated dials mark outbound first: upload rides out
        # even at P_d = 1 (the locality dynamic the paper concedes).
        result = SwarmSimulator(bitmap_filter(pd=1.0), small_config()).run()
        assert result.reverse_connections > 0
        assert result.reverse_upload_bytes > 0
        assert result.burst_upload_bytes == 0  # no inbound link ever formed


class TestEvasion:
    def test_evasion_off_attempts_are_initial_only(self):
        config = small_config(evasion=EvasionPolicy.off())
        result = SwarmSimulator(bitmap_filter(pd=1.0), config).run()
        assert set(result.tactic_attempts) == {TACTIC_INITIAL}
        assert result.hole_punch_probes == 0

    def test_evasion_multiplies_attempt_pressure(self):
        refused_off = SwarmSimulator(
            bitmap_filter(pd=1.0), small_config(evasion=EvasionPolicy.off())
        ).run()
        refused_on = SwarmSimulator(
            bitmap_filter(pd=1.0), small_config()
        ).run()
        assert refused_on.attempts_total > refused_off.attempts_total
        assert len(refused_on.tactic_attempts) > 1

    def test_chains_respect_max_attempts(self):
        config = small_config(evasion=EvasionPolicy(max_attempts=2))
        result = SwarmSimulator(bitmap_filter(pd=1.0), config).run()
        # Per (peer, target) chain: 1 initial + at most 2 reactions; with
        # 6 peers x 2 clients that bounds total attempts.
        assert result.attempts_total <= 6 * 2 * 3


class TestHolePunch:
    def test_punch_fails_under_strict_fields(self):
        result = SwarmSimulator(bitmap_filter(pd=1.0), small_config()).run()
        assert result.hole_punch_probes > 0
        assert result.tactic_successes.get(TACTIC_HOLE_PUNCH, 0) == 0

    def test_punch_succeeds_under_hole_punching_fields(self):
        result = SwarmSimulator(
            bitmap_filter(pd=1.0, field_mode=FieldMode.HOLE_PUNCHING),
            small_config(),
        ).run()
        assert result.tactic_successes.get(TACTIC_HOLE_PUNCH, 0) > 0
        assert result.peers_penetrated > 0


class TestBackground:
    def test_collateral_only_counts_background(self):
        result = SwarmSimulator(bitmap_filter(pd=1.0), small_config()).run()
        assert result.background_total > 0
        assert result.background_refused <= result.background_total
        # Client-initiated background passes the positive listing; only
        # remote-initiated legs (FTP active data) can be collateral.
        assert set(result.background_refused_by_initiator) <= {"remote"}

    def test_no_background_when_rate_zero(self):
        result = SwarmSimulator(
            bitmap_filter(pd=1.0), small_config(background_rate=0.0)
        ).run()
        assert result.background_total == 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = SwarmSimulator(bitmap_filter(pd=0.9), small_config()).run()
        second = SwarmSimulator(bitmap_filter(pd=0.9), small_config()).run()
        assert (json.dumps(first.as_dict(), sort_keys=True)
                == json.dumps(second.as_dict(), sort_keys=True))
        assert first.replay.fingerprint == second.replay.fingerprint

    def test_different_seed_different_engagement(self):
        first = SwarmSimulator(
            bitmap_filter(pd=0.9), small_config(seed=7)
        ).run()
        second = SwarmSimulator(
            bitmap_filter(pd=0.9), small_config(seed=8)
        ).run()
        assert first.replay.fingerprint != second.replay.fingerprint


class TestRetune:
    def _run(self, applier_factory, duration=120.0):
        config = small_config(duration=duration)
        drop_controller = DropController(StaticDropPolicy(0.0))
        packet_filter = BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 14, seed=1), drop_controller
        )
        loop = RetuneLoop(
            TargetRateController.mbps(0.5, gain=0.4),
            applier_factory(packet_filter, drop_controller),
            interval=5.0,
        )
        result = SwarmSimulator(packet_filter, config, retune=loop).run()
        return result, loop

    def test_retune_probes_fire_and_steer(self):
        result, loop = self._run(
            lambda flt, dc: DirectApplier(dc), duration=60.0
        )
        assert len(result.retune_log) == 12  # every 5s over 60s
        assert any(p > 0.0 for _, _, p in result.retune_log)

    def test_control_plane_matches_direct_apply(self):
        direct, _ = self._run(lambda flt, dc: DirectApplier(dc),
                              duration=60.0)

        handles = []

        def control_applier(packet_filter, drop_controller):
            sock = os.path.join(tempfile.mkdtemp(prefix="swarm-test-"),
                                "ctl.sock")
            handle = launch_control_service(packet_filter, "unix:" + sock)
            handles.append(handle)
            return ControlApplier(handle.client())

        try:
            control, _ = self._run(control_applier, duration=60.0)
        finally:
            for handle in handles:
                handle.close()
        assert (json.dumps(direct.as_dict(), sort_keys=True)
                == json.dumps(control.as_dict(), sort_keys=True))

    def test_recovery_time_reported(self):
        result, loop = self._run(lambda flt, dc: DirectApplier(dc),
                                 duration=150.0)
        assert result.evasion_onset is not None
        assert result.recovery_time is not None
        assert result.recovery_time >= 0.0


class TestConfigValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            SwarmConfig(peers=0)
        with pytest.raises(ValueError):
            SwarmConfig(clients=0)
        with pytest.raises(ValueError):
            SwarmConfig(duration=0.0)
        with pytest.raises(ValueError):
            SwarmConfig(admission_window=0)
        with pytest.raises(ValueError):
            SwarmConfig(background_rate=-1.0)
