"""Tests for swarm participants: rate measurement, choker, peer state."""

import random

import pytest

from repro.swarm.peers import ClientPeer, PeerLink, RateMeasure, SwarmPeer
from repro.workload.topology import HostModel

from tests.conftest import CLIENT_ADDR, REMOTE_ADDR


def make_client(index=0, slots=3, optimistic_rounds=3):
    rng = random.Random(42 + index)
    host = HostModel(CLIENT_ADDR + index, rng)
    return ClientPeer(index, host, 6881, rng, unchoke_slots=slots,
                      optimistic_rounds=optimistic_rounds)


def make_peer(index=0):
    return SwarmPeer(index, REMOTE_ADDR + index, 6881, random.Random(7 + index))


def make_link(link_id, client, peer, now=0.0):
    return PeerLink(link_id, client, peer, "initial", now,
                    random.Random(link_id))


class TestRateMeasure:
    def test_zero_before_any_update(self):
        assert RateMeasure().rate(10.0) == 0.0

    def test_measures_transfer_rate(self):
        measure = RateMeasure()
        for second in range(10):
            measure.update(float(second), 1000)
        assert measure.rate(9.0) == pytest.approx(1000.0, rel=0.15)

    def test_idle_link_decays(self):
        measure = RateMeasure(max_rate_period=20.0)
        measure.update(0.0, 50_000)
        busy = measure.rate(1.0)
        assert measure.rate(100.0) < busy / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RateMeasure(max_rate_period=0.0)


class TestSwarmPeer:
    def test_next_port_never_repeats(self):
        peer = make_peer()
        ports = [peer.next_port() for _ in range(5000)]
        assert len(set(ports)) == len(ports)
        assert all(1024 <= port <= 65535 for port in ports)

    def test_learn_and_candidates(self):
        peer = make_peer()
        assert peer.learn(2)
        assert peer.learn(0)
        assert not peer.learn(2)  # already known
        assert peer.candidate_targets() == [2, 0]  # learned order

    def test_candidates_exclude_busy_and_abandoned(self):
        peer = make_peer()
        for index in range(4):
            peer.learn(index)
        peer.in_flight[0] = True
        peer.abandoned[1] = True
        client = make_client(2)
        peer.links[2] = make_link(1, client, peer)
        assert peer.candidate_targets() == [3]

    def test_penetrated_only_by_inbound_links(self):
        peer = make_peer()
        client = make_client()
        outbound = PeerLink(1, client, peer, "initial", 0.0,
                            random.Random(1), outbound=True)
        peer.links[0] = outbound
        assert not peer.penetrated
        peer.links[1] = make_link(2, client, peer)
        assert peer.penetrated

    def test_penetration_is_sticky_across_churn(self):
        peer = make_peer()
        peer.links[0] = make_link(1, make_client(), peer)
        peer.was_penetrated = True
        peer.links.clear()  # the link churned away
        assert peer.penetrated


class TestChoker:
    def test_unchokes_at_most_slots(self):
        client = make_client(slots=3)
        peer = make_peer()
        for link_id in range(6):
            client.add_link(make_link(link_id, client, peer))
        client.rechoke(10.0)
        assert sum(link.unchoked for link in client.links.values()) <= 3

    def test_fastest_links_win_regular_slots(self):
        client = make_client(slots=3)
        peer = make_peer()
        links = [make_link(link_id, client, peer) for link_id in range(5)]
        for link in links:
            client.add_link(link)
        links[4].measure.update(9.0, 500_000)
        links[2].measure.update(9.0, 300_000)
        client.rechoke(10.0)
        assert links[4].unchoked and links[2].unchoked

    def test_optimistic_rotates_on_schedule(self):
        client = make_client(slots=2, optimistic_rounds=2)
        peer = make_peer()
        for link_id in range(8):
            client.add_link(make_link(link_id, client, peer))
        picks = []
        for tick in range(8):
            client.rechoke(float(tick))
            picks.append(client.optimistic.link_id
                         if client.optimistic else None)
        assert len(set(picks)) > 1  # the slot rotated at least once

    def test_returns_newly_unchoked_only(self):
        client = make_client(slots=2)
        peer = make_peer()
        link = make_link(1, client, peer)
        client.add_link(link)
        first = client.rechoke(1.0)
        assert link in first
        again = client.rechoke(2.0)
        assert link not in again  # already unchoked, not "newly"

    def test_no_links_no_unchokes(self):
        client = make_client()
        assert client.rechoke(1.0) == []
        assert client.optimistic is None

    def test_validation(self):
        with pytest.raises(ValueError):
            make_client(slots=0)
        rng = random.Random(1)
        with pytest.raises(ValueError):
            ClientPeer(0, HostModel(CLIENT_ADDR, rng), 6881, rng,
                       optimistic_rounds=0)
