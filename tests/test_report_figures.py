"""Tests for ASCII figure rendering."""

from repro.report.figures import (
    render_cdf,
    render_histogram,
    render_scatter,
    render_series,
)


class TestSeries:
    def test_renders_title_and_axes(self):
        text = render_series([(0.0, 1.0), (10.0, 2.0)], title="uplink", y_label="Mbps")
        assert "uplink" in text
        assert "Mbps" in text
        assert "#" in text

    def test_empty(self):
        assert "(no data)" in render_series([], title="x")

    def test_hline_reference(self):
        text = render_series([(0.0, 1.0), (10.0, 10.0)], hline=5.0)
        assert "-" in text

    def test_constant_series(self):
        text = render_series([(0.0, 3.0), (1.0, 3.0), (2.0, 3.0)])
        assert "#" in text

    def test_width_respected(self):
        text = render_series([(0.0, 1.0), (1.0, 2.0)], width=20)
        body_lines = [line for line in text.splitlines() if "|" in line]
        assert all(len(line) <= 35 for line in body_lines)


class TestCdf:
    def test_multiple_curves_with_legend(self):
        curves = {
            "P2P": [(100, 0.1), (20000, 0.8), (40000, 1.0)],
            "Non-P2P": [(80, 0.9), (443, 1.0)],
        }
        text = render_cdf(curves, title="Figure 2")
        assert "*=P2P" in text
        assert "o=Non-P2P" in text

    def test_log_x(self):
        text = render_cdf({"d": [(0.01, 0.5), (10.0, 1.0)]}, x_log=True)
        assert "log-x" in text

    def test_empty(self):
        assert "(no data)" in render_cdf({})


class TestHistogram:
    def test_bars_proportional(self):
        text = render_histogram([(0.0, 100), (5.0, 50), (10.0, 0)], title="life")
        lines = text.splitlines()
        assert lines[0] == "life"
        assert lines[1].count("#") > lines[2].count("#")

    def test_truncation_note(self):
        bins = [(float(i), 1) for i in range(40)]
        text = render_histogram(bins, max_rows=10)
        assert "more bins" in text

    def test_empty(self):
        assert "(no data)" in render_histogram([])


class TestScatter:
    def test_identity_line_and_points(self):
        text = render_scatter([(0.01, 0.01), (0.02, 0.019)], title="Figure 8")
        assert "*" in text
        assert "." in text
        assert "slope 1.0" in text

    def test_empty(self):
        assert "(no data)" in render_scatter([])

    def test_no_diagonal(self):
        text = render_scatter([(1.0, 1.0)], diagonal=False)
        assert "." not in text.replace("...", "").split("(axes")[0] or True
