"""Tests for snapshot-file persistence (repro.service.state)."""

import json
import os

import pytest

from repro.service.state import (
    SNAPSHOT_FORMAT,
    latest_snapshot,
    read_snapshot,
    snapshot_name,
    write_snapshot,
)


def minimal_payload(**overrides):
    payload = {
        "sequence": 1,
        "chunks_done": 7,
        "pipeline": {"inbound": 10, "dropped": 2, "first_ts": 0.0,
                     "last_ts": 3.5, "fingerprint": 12345},
        "filter": {"bits": [b"\x00\xff\x10", b"\x01"]},
        "router": {"blocklist": None},
    }
    payload.update(overrides)
    return payload


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / snapshot_name(1))
        write_snapshot(path, minimal_payload())
        document = read_snapshot(path)
        assert document["format"] == SNAPSHOT_FORMAT
        assert document["chunks_done"] == 7
        assert document["pipeline"]["fingerprint"] == 12345
        assert "wall_time" in document

    def test_bytes_survive_json(self, tmp_path):
        path = str(tmp_path / snapshot_name(1))
        write_snapshot(path, minimal_payload())
        document = read_snapshot(path)
        assert document["filter"]["bits"] == [b"\x00\xff\x10", b"\x01"]
        # The file itself is plain JSON — no pickle.
        with open(path) as handle:
            raw = json.load(handle)
        assert raw["filter"]["bits"][0] == {"__b64__": "AP8Q"}

    def test_rejects_wrong_format(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"format": "something-else/9"}, handle)
        with pytest.raises(ValueError, match="not a service snapshot"):
            read_snapshot(path)

    def test_rejects_missing_section(self, tmp_path):
        path = str(tmp_path / snapshot_name(1))
        write_snapshot(path, minimal_payload())
        document = json.load(open(path))
        del document["router"]
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="missing 'router'"):
            read_snapshot(path)

    def test_write_leaves_no_tmp_files(self, tmp_path):
        path = str(tmp_path / snapshot_name(3))
        write_snapshot(path, minimal_payload(sequence=3))
        assert sorted(os.listdir(tmp_path)) == [snapshot_name(3)]


class TestLatest:
    def test_picks_highest_sequence(self, tmp_path):
        for sequence in (1, 12, 3):
            write_snapshot(
                str(tmp_path / snapshot_name(sequence)),
                minimal_payload(sequence=sequence),
            )
        assert latest_snapshot(str(tmp_path)) == str(
            tmp_path / snapshot_name(12)
        )

    def test_ignores_unrelated_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "snapshot-abc.json").write_text("{}")
        assert latest_snapshot(str(tmp_path)) is None

    def test_missing_directory(self, tmp_path):
        assert latest_snapshot(str(tmp_path / "nope")) is None
