"""Tests for ControlClient connect retry and per-request timeouts.

These run against a minimal line-protocol server thread (the client only
needs JSON-lines semantics), so bind delays and slow responses are
scripted precisely instead of racing a full FilterService boot.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import ControlClient, ControlError


class LineServer:
    """A scriptable JSON-lines control server on a unix socket."""

    def __init__(self, path, responder, bind_delay=0.0):
        self.path = path
        self.responder = responder
        self.bind_delay = bind_delay
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        if self.bind_delay:
            time.sleep(self.bind_delay)
        listener = socket.socket(socket.AF_UNIX)
        listener.bind(self.path)
        listener.listen(1)
        try:
            connection, _ = listener.accept()
        except OSError:
            return
        stream = connection.makefile("rwb")
        try:
            while True:
                line = stream.readline()
                if not line:
                    return
                response = self.responder(json.loads(line))
                stream.write(json.dumps(response).encode() + b"\n")
                stream.flush()
        except (OSError, ValueError):
            pass
        finally:
            # The client may have vanished mid-reply (the timeout
            # tests); closing then flushes into a broken pipe.
            try:
                stream.close()
            except OSError:
                pass
            connection.close()
            listener.close()


def echo_ok(request):
    return {"ok": True, "cmd": request.get("cmd")}


class TestConnectRetry:
    def test_waits_for_a_late_bind(self, tmp_path):
        path = str(tmp_path / "late.sock")
        LineServer(path, echo_ok, bind_delay=0.4)
        start = time.monotonic()
        with ControlClient(f"unix:{path}", connect_retry=10.0) as client:
            elapsed = time.monotonic() - start
            assert client.request("health")["ok"] is True
        # Connected only after the bind, not instantly and not at the
        # end of the patience budget.
        assert 0.2 <= elapsed < 5.0

    def test_budget_exhaustion_raises_control_error(self, tmp_path):
        path = str(tmp_path / "never.sock")
        start = time.monotonic()
        with pytest.raises(ControlError, match="not reachable"):
            ControlClient(f"unix:{path}", connect_retry=0.3)
        assert time.monotonic() - start >= 0.3

    def test_default_is_single_attempt_raising_os_error(self, tmp_path):
        path = str(tmp_path / "never.sock")
        with pytest.raises((FileNotFoundError, ConnectionError, OSError)):
            ControlClient(f"unix:{path}")


class TestRequestTimeout:
    def slow_server(self, tmp_path, delay):
        path = str(tmp_path / "slow.sock")

        def responder(request):
            if request.get("cmd") == "slow":
                time.sleep(delay)
            return {"ok": True, "cmd": request.get("cmd")}

        LineServer(path, responder)
        return path

    def test_override_tightens_one_request(self, tmp_path):
        path = self.slow_server(tmp_path, delay=1.5)
        with ControlClient(f"unix:{path}", timeout=30.0,
                           connect_retry=5.0) as client:
            with pytest.raises((TimeoutError, socket.timeout)):
                client.request("slow", timeout=0.2)
            # The client default is restored after the override.
            assert client._socket.gettimeout() == 30.0

    def test_override_none_waits_out_a_slow_reply(self, tmp_path):
        path = self.slow_server(tmp_path, delay=0.6)
        with ControlClient(f"unix:{path}", timeout=0.2,
                           connect_retry=5.0) as client:
            response = client.request("slow", timeout=None)
            assert response["ok"] is True
            assert client._socket.gettimeout() == 0.2

    def test_default_timeout_applies_without_override(self, tmp_path):
        path = self.slow_server(tmp_path, delay=1.5)
        with ControlClient(f"unix:{path}", timeout=0.2,
                           connect_retry=5.0) as client:
            with pytest.raises((TimeoutError, socket.timeout)):
                client.request("slow")
