"""Tests for packet sources (repro.service.sources)."""

import os
import socket
import threading

import pytest

from repro.net.headers import encode_packet
from repro.net.inet import parse_ipv4
from repro.net.pcap import write_pcap
from repro.net.stream import FrameWriter, encode_table, write_frame
from repro.net.table import PacketTable
from repro.service.sources import (
    GeneratorSource,
    IdleSource,
    PcapSource,
    SocketSource,
    TableSource,
)
from repro.workload import TraceConfig, TraceGenerator

from tests.conftest import in_packet, out_packet, tcp_pair


def chunk_rows(chunk):
    return [
        (chunk.timestamps[i], chunk.pair(i), chunk.sizes[i],
         chunk.flags[i], chunk.outbound[i])
        for i in range(len(chunk))
    ]


def trace_config():
    return TraceConfig(duration=10.0, connection_rate=5.0, seed=7)


class TestGeneratorSource:
    def test_yields_full_trace_in_chunks(self):
        source = GeneratorSource(TraceGenerator(trace_config()), chunk_size=256)
        chunks = list(source)
        reference = list(TraceGenerator(trace_config()).iter_tables(256))
        assert len(chunks) == len(reference)
        assert sum(len(c) for c in chunks) == sum(len(c) for c in reference)

    def test_skip_reproduces_remaining_stream(self):
        full = list(GeneratorSource(TraceGenerator(trace_config()), 256))
        source = GeneratorSource(TraceGenerator(trace_config()), 256)
        source.skip(3)
        remaining = list(source)
        assert len(remaining) == len(full) - 3
        for skipped, reference in zip(remaining, full[3:]):
            assert chunk_rows(skipped) == chunk_rows(reference)

    def test_skip_preserves_interned_pair_ids(self):
        # Skipped chunks still advance the shared pool, so pair_ids in
        # the remaining stream match an uninterrupted run's exactly.
        full = list(GeneratorSource(TraceGenerator(trace_config()), 256))
        source = GeneratorSource(TraceGenerator(trace_config()), 256)
        source.skip(2)
        for skipped, reference in zip(source, full[2:]):
            assert list(skipped.pair_ids) == list(reference.pair_ids)

    def test_skip_past_end(self):
        source = GeneratorSource(TraceGenerator(trace_config()), 256)
        source.skip(10_000)
        assert list(source) == []

    def test_validates_chunk_size(self):
        with pytest.raises(ValueError):
            GeneratorSource(TraceGenerator(trace_config()), chunk_size=0)

    def test_negative_skip_rejected(self):
        source = GeneratorSource(TraceGenerator(trace_config()), 256)
        with pytest.raises(ValueError):
            source.skip(-1)


class TestTableSource:
    def sample_table(self, rows=10):
        table = PacketTable()
        for i in range(rows):
            table.append_packet(out_packet(t=float(i), size=100 + i))
        return table

    def test_chunks_cover_table(self):
        source = TableSource(self.sample_table(10), chunk_size=4)
        sizes = [len(chunk) for chunk in source]
        assert sizes == [4, 4, 2]

    def test_skip_is_positional(self):
        source = TableSource(self.sample_table(10), chunk_size=4)
        source.skip(1)
        chunks = list(source)
        assert [len(chunk) for chunk in chunks] == [4, 2]
        assert chunks[0].timestamps[0] == 4.0

    def test_skip_past_end(self):
        source = TableSource(self.sample_table(10), chunk_size=4)
        source.skip(99)
        assert list(source) == []

    def test_describe(self):
        assert "10 rows" in TableSource(self.sample_table(10), 4).describe()


class TestPcapSource:
    def test_reads_capture_in_chunks(self, tmp_path):
        path = str(tmp_path / "feed.pcap")
        records = []
        for i in range(6):
            pair = tcp_pair(sport=4000 + i)
            records.append((0.5 * i, encode_packet(pair, payload=b"x")))
        write_pcap(path, records)
        source = PcapSource(
            path, parse_ipv4("10.1.0.0"), 16, chunk_size=4
        )
        chunks = list(source)
        assert [len(chunk) for chunk in chunks] == [4, 2]
        assert chunks[0].outbound[0]  # 10.1.0.5 is inside the client net


class TestSocketSource:
    def feed(self, address, chunks, family=socket.AF_UNIX):
        connection = socket.socket(family)
        connection.connect(address)
        stream = connection.makefile("wb")
        for chunk in chunks:
            write_frame(stream, encode_table(chunk))
        stream.close()
        connection.close()

    def sample_chunks(self):
        first = PacketTable()
        first.append_packet(out_packet(t=1.0))
        first.append_packet(in_packet(t=1.1))
        second = first.spawn()
        second.append_packet(out_packet(t=2.0, size=555))
        return [first, second]

    def test_unix_feed_roundtrip(self, tmp_path):
        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        chunks = self.sample_chunks()
        feeder = threading.Thread(target=self.feed, args=(path, chunks))
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        assert [len(chunk) for chunk in received] == [2, 1]
        assert chunk_rows(received[0]) == chunk_rows(chunks[0])
        assert chunk_rows(received[1]) == chunk_rows(chunks[1])

    def test_frames_share_one_pool(self, tmp_path):
        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        chunks = self.sample_chunks()
        feeder = threading.Thread(target=self.feed, args=(path, chunks))
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        # Same flow in both frames -> same interned pair_id.
        assert received[1].pair_ids[0] == received[0].pair_ids[0]

    def test_skip_discards_frames(self, tmp_path):
        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        source.skip(1)
        chunks = self.sample_chunks()
        feeder = threading.Thread(target=self.feed, args=(path, chunks))
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        assert len(received) == 1
        assert chunk_rows(received[0]) == chunk_rows(chunks[1])

    def test_tcp_listener(self):
        source = SocketSource.tcp("127.0.0.1", 0)
        address = source.address
        chunks = self.sample_chunks()[:1]
        feeder = threading.Thread(
            target=self.feed, args=(address, chunks, socket.AF_INET)
        )
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        assert len(received) == 1


    def test_stale_socket_unlinked_on_rebind(self, tmp_path):
        """A crashed daemon leaves its socket inode behind; rebinding the
        same path must succeed instead of failing with EADDRINUSE."""
        path = str(tmp_path / "feed.sock")
        crashed = SocketSource.unix(path)
        crashed.listener.close()  # simulate a crash: no close(), no unlink
        assert os.path.exists(path)

        source = SocketSource.unix(path)
        chunks = self.sample_chunks()[:1]
        feeder = threading.Thread(target=self.feed, args=(path, chunks))
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        assert len(received) == 1

    def test_close_unlinks_socket_path(self, tmp_path):
        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        assert os.path.exists(path)
        source.close()
        assert not os.path.exists(path)
        source.close()  # idempotent

    def test_refuses_to_unlink_non_socket(self, tmp_path):
        path = tmp_path / "feed.sock"
        path.write_text("precious data")
        with pytest.raises(OSError, match="not a socket"):
            SocketSource.unix(str(path))
        assert path.read_text() == "precious data"

    def test_keepalive_frames_yield_no_chunk(self, tmp_path):
        """Empty frames keep the connection warm; they produce no chunk
        and do not consume a pending skip."""
        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        source.skip(1)
        chunks = self.sample_chunks()

        def feed_with_keepalives():
            connection = socket.socket(socket.AF_UNIX)
            connection.connect(path)
            stream = connection.makefile("wb")
            write_frame(stream, b"")  # must not consume the skip
            write_frame(stream, encode_table(chunks[0]))  # skipped
            write_frame(stream, b"")
            write_frame(stream, encode_table(chunks[1]))
            stream.close()
            connection.close()

        feeder = threading.Thread(target=feed_with_keepalives)
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        assert len(received) == 1
        assert chunk_rows(received[0]) == chunk_rows(chunks[1])

    def test_binary_delta_feed_keeps_pair_ids(self, tmp_path):
        """A FrameWriter delta stream decodes lockstep: the receiver's
        pair_ids match the feeder's bit for bit."""
        path = str(tmp_path / "feed.sock")
        source = SocketSource.unix(path)
        generator = TraceGenerator(trace_config())
        chunks = list(generator.iter_tables(128))

        def feed_deltas():
            connection = socket.socket(socket.AF_UNIX)
            connection.connect(path)
            stream = connection.makefile("wb")
            writer = FrameWriter(stream)
            for chunk in chunks:
                writer.send(chunk)
            stream.close()
            connection.close()

        feeder = threading.Thread(target=feed_deltas)
        feeder.start()
        try:
            received = list(source)
        finally:
            feeder.join()
            source.close()
        assert len(received) == len(chunks)
        for sent, got in zip(chunks, received):
            assert list(got.pair_ids) == list(sent.pair_ids)

class TestIdleSource:
    def test_close_unblocks_iteration(self):
        source = IdleSource(poll_interval=0.01)
        seen = []
        done = threading.Event()

        def consume():
            seen.extend(source)
            done.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        source.close()
        assert done.wait(timeout=2.0)
        consumer.join()
        assert seen == []

    def test_validates_poll_interval(self):
        with pytest.raises(ValueError):
            IdleSource(poll_interval=0.0)
