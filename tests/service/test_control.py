"""Tests for the control/telemetry socket plane (repro.service.control)."""

import json
import socket
import threading
import time

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.service import ControlClient, ControlError, FilterService
from repro.service.control import parse_control_address
from repro.service.sources import GeneratorSource, IdleSource
from repro.workload import TraceConfig, TraceGenerator


def make_filter():
    return BitmapPacketFilter(
        BitmapFilterConfig(
            size=2 ** 12, vectors=3, hashes=2, rotate_interval=5.0
        ),
        drop_controller=DropController.red_mbps(0.1, 1.0),
    )


def generator_source():
    generator = TraceGenerator(
        TraceConfig(duration=20.0, connection_rate=6.0, seed=5)
    )
    return GeneratorSource(generator, chunk_size=512)


def run_in_thread(service):
    box = {}

    def runner():
        try:
            box["result"] = service.run_forever()
        except BaseException as error:  # noqa: BLE001 - surfaced by caller
            box["error"] = error

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    return thread, box


def wait_for_socket(path, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            probe = socket.socket(socket.AF_UNIX)
            probe.connect(path)
            probe.close()
            return
        except OSError:
            time.sleep(0.01)
    raise TimeoutError(f"control socket never accepted: {path}")


def free_tcp_port():
    probe = socket.socket(socket.AF_INET)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestParseAddress:
    def test_unix(self):
        assert parse_control_address("unix:/tmp/x.sock") == (
            "unix", "/tmp/x.sock"
        )

    def test_tcp(self):
        assert parse_control_address("tcp:127.0.0.1:9000") == (
            "tcp", ("127.0.0.1", 9000)
        )

    def test_rejects_empty_unix_path(self):
        with pytest.raises(ValueError):
            parse_control_address("unix:")

    def test_rejects_bad_tcp(self):
        with pytest.raises(ValueError):
            parse_control_address("tcp:9000")
        with pytest.raises(ValueError):
            parse_control_address("tcp:host:notaport")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            parse_control_address("http:whatever")


class TestControlSocket:
    def running_service(self, tmp_path, **kwargs):
        sock = str(tmp_path / "ctl.sock")
        service = FilterService(
            IdleSource(poll_interval=0.01),
            make_filter(),
            control=f"unix:{sock}",
            **kwargs,
        )
        thread, box = run_in_thread(service)
        wait_for_socket(sock)
        return sock, thread, box

    def test_stats_and_health(self, tmp_path):
        sock, thread, _ = self.running_service(tmp_path)
        with ControlClient(f"unix:{sock}") as client:
            health = client.health()
            assert health["status"] == "running"
            assert health["queue_limit"] == 8
            stats = client.stats()
            assert stats["source"] == "idle"
            assert stats["backend"].startswith("batched")
            assert stats["packets"] == 0
            assert stats["blocklist"]["entries"] == 0
            assert stats["rotation"] == {"interval": 5.0, "expiry": 15.0}
            assert stats["drop_policy"]["kind"] == "red"
            client.shutdown()
        thread.join(timeout=5.0)

    def test_unknown_command(self, tmp_path):
        sock, thread, _ = self.running_service(tmp_path)
        with ControlClient(f"unix:{sock}") as client:
            with pytest.raises(ControlError, match="unknown command"):
                client.request("frobnicate")
            client.shutdown()
        thread.join(timeout=5.0)

    def test_malformed_request_keeps_connection_alive(self, tmp_path):
        sock, thread, _ = self.running_service(tmp_path)
        raw = socket.socket(socket.AF_UNIX)
        raw.connect(sock)
        stream = raw.makefile("rwb")
        stream.write(b"this is not json\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"] is False
        # The same connection still serves well-formed requests.
        stream.write(json.dumps({"cmd": "health"}).encode() + b"\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["ok"] is True
        stream.close()
        raw.close()
        with ControlClient(f"unix:{sock}") as client:
            client.shutdown()
        thread.join(timeout=5.0)

    def test_config_error_propagates(self, tmp_path):
        sock, thread, _ = self.running_service(tmp_path)
        with ControlClient(f"unix:{sock}") as client:
            with pytest.raises(ControlError, match="unknown config keys"):
                client.configure(bogus=1)
            with pytest.raises(ControlError, match="no snapshot_dir"):
                client.snapshot()
            client.shutdown()
        thread.join(timeout=5.0)

    def test_snapshot_over_socket(self, tmp_path):
        sock, thread, _ = self.running_service(
            tmp_path, snapshot_dir=str(tmp_path)
        )
        with ControlClient(f"unix:{sock}") as client:
            path = client.snapshot()
            assert path.endswith("snapshot-00000001.json")
            client.shutdown()
        thread.join(timeout=5.0)

    def test_drain_returns_summary_and_stops(self, tmp_path):
        sock = str(tmp_path / "ctl.sock")
        service = FilterService(
            generator_source(),
            make_filter(),
            control=f"unix:{sock}",
            speed=40.0,
        )
        thread, box = run_in_thread(service)
        wait_for_socket(sock)
        with ControlClient(f"unix:{sock}") as client:
            summary = client.drain()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert "error" not in box
        assert summary["fingerprint"] == box["result"].fingerprint

    def test_tcp_control(self, tmp_path):
        port = free_tcp_port()
        service = FilterService(
            IdleSource(poll_interval=0.01),
            make_filter(),
            control=f"tcp:127.0.0.1:{port}",
        )
        thread, box = run_in_thread(service)
        deadline = time.monotonic() + 5.0
        client = None
        while client is None:
            try:
                client = ControlClient(f"tcp:127.0.0.1:{port}")
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.01)
        with client:
            assert client.health()["status"] == "running"
            client.shutdown()
        thread.join(timeout=5.0)
        assert "error" not in box
