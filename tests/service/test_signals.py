"""Signal supervision for ``repro serve``: SIGTERM/SIGINT drain the
service gracefully — the queue finishes, a final snapshot lands in the
snapshot directory, and the process exits 0 with its summary printed.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.service.state import latest_snapshot

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def wait_for_socket(path, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            probe = socket.socket(socket.AF_UNIX)
            probe.connect(path)
            probe.close()
            return
        except OSError:
            time.sleep(0.02)
    raise TimeoutError(f"control socket never accepted: {path}")


def control_request(path, cmd):
    connection = socket.socket(socket.AF_UNIX)
    connection.connect(path)
    stream = connection.makefile("rwb")
    stream.write(json.dumps({"cmd": cmd}).encode() + b"\n")
    stream.flush()
    response = json.loads(stream.readline())
    stream.close()
    connection.close()
    return response


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_snapshots(tmp_path, signum):
    sock = str(tmp_path / "ctl.sock")
    snapshots = str(tmp_path / "snapshots")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--source", "generator",
            "--duration", "120", "--rate", "6", "--seed", "5",
            "--chunk-size", "256", "--speed", "8",
            "--control", f"unix:{sock}",
            "--snapshot-dir", snapshots,
            "--size-bits", "12", "--vectors", "3", "--hashes", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": REPO_SRC, "PYTHONUNBUFFERED": "1"},
    )
    try:
        wait_for_socket(sock)
        # Let it actually process some traffic before interrupting.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            health = control_request(sock, "health")["health"]
            if health.get("chunks_done", 0) > 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail("service never processed a chunk")

        process.send_signal(signum)
        output, _ = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    # Graceful drain: normal exit with the summary printed, not a
    # KeyboardInterrupt traceback or a 128+signum death.
    assert process.returncode == 0, output
    assert "verdict fingerprint:" in output
    assert "Traceback" not in output

    # The drain wrote a final snapshot with the processed chunks.
    final = latest_snapshot(snapshots)
    assert final is not None
    with open(final) as handle:
        document = json.load(handle)
    assert document["chunks_done"] > 0
