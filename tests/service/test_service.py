"""Tests for the streaming filter daemon (repro.service.service).

The headline test is the ISSUE's acceptance criterion: a paced service
run interrupted by snapshot + warm restart mid-trace must produce a
final blocklist and verdict fingerprint identical to the same trace
replayed offline through :func:`repro.sim.replay.replay`.
"""

import asyncio
import os
import threading
import time

import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.policy import DropController
from repro.service import (
    ControlClient,
    FilterService,
    GeneratorSource,
    IdleSource,
    ServiceError,
    TableSource,
    latest_snapshot,
    read_snapshot,
)
from repro.sim.pipeline import SequentialBackend
from repro.sim.replay import replay
from repro.workload import TraceConfig, TraceGenerator

CHUNK = 512


def make_filter():
    return BitmapPacketFilter(
        BitmapFilterConfig(
            size=2 ** 12, vectors=3, hashes=2, rotate_interval=5.0
        ),
        drop_controller=DropController.red_mbps(0.1, 1.0),
    )


def trace_config():
    return TraceConfig(duration=20.0, connection_rate=6.0, seed=5)


def generator_source():
    return GeneratorSource(TraceGenerator(trace_config()), chunk_size=CHUNK)


def offline_result():
    return replay(
        TraceGenerator(trace_config()).iter_tables(CHUNK),
        make_filter(),
        batched=True,
        record_fingerprint=True,
    )


def run_in_thread(service):
    """Run a service's event loop in a daemon thread; returns (thread, box)
    where ``box["result"]``/``box["error"]`` is filled on exit."""
    box = {}

    def runner():
        try:
            box["result"] = service.run_forever()
        except BaseException as error:  # noqa: BLE001 - surfaced by caller
            box["error"] = error

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    return thread, box


def wait_for_socket(path, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        time.sleep(0.01)
    raise TimeoutError(f"control socket never appeared: {path}")


def wait_for_chunks(client, minimum, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = client.health()
        if health["chunks_done"] >= minimum:
            return health
        time.sleep(0.01)
    raise TimeoutError(f"service never reached {minimum} chunks")


def blocklist_entries(result):
    store = result.router.blocklist
    return dict(store._blocked)


class TestWarmRestart:
    def test_snapshot_restart_matches_offline_replay(self, tmp_path):
        """Acceptance: paced run -> snapshot mid-trace -> shutdown ->
        restore -> finish; blocklist + fingerprint identical to offline
        replay of the full trace."""
        sock = str(tmp_path / "ctl.sock")
        service = FilterService(
            generator_source(),
            make_filter(),
            speed=40.0,
            snapshot_dir=str(tmp_path),
            control=f"unix:{sock}",
        )
        thread, box = run_in_thread(service)
        wait_for_socket(sock)
        with ControlClient(f"unix:{sock}") as client:
            wait_for_chunks(client, 3)
            snapshot_path = client.snapshot()
            summary = client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert "error" not in box
        assert summary["chunks_done"] >= 3

        document = read_snapshot(snapshot_path)
        assert document["chunks_done"] >= 3

        restored = FilterService.restore(snapshot_path, generator_source())
        resumed = restored.run_forever()

        reference = offline_result()
        assert resumed.fingerprint == reference.fingerprint
        assert resumed.packets == reference.packets
        assert resumed.inbound_packets == reference.inbound_packets
        assert resumed.inbound_dropped == reference.inbound_dropped
        assert blocklist_entries(resumed) == blocklist_entries(reference)
        assert resumed.router.passed._bins == reference.router.passed._bins

    def test_restore_from_directory_uses_latest(self, tmp_path):
        sock = str(tmp_path / "ctl.sock")
        service = FilterService(
            generator_source(),
            make_filter(),
            speed=40.0,
            snapshot_dir=str(tmp_path),
            control=f"unix:{sock}",
        )
        thread, _ = run_in_thread(service)
        wait_for_socket(sock)
        with ControlClient(f"unix:{sock}") as client:
            wait_for_chunks(client, 2)
            first = client.snapshot()
            wait_for_chunks(client, 4)
            second = client.snapshot()
            client.shutdown()
        thread.join(timeout=10.0)
        assert latest_snapshot(str(tmp_path)) == second != first

        restored = FilterService.restore(str(tmp_path), generator_source())
        assert restored.chunks_done == read_snapshot(second)["chunks_done"]
        resumed = restored.run_forever()
        assert resumed.fingerprint == offline_result().fingerprint

    def test_restore_missing_snapshot(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FilterService.restore(str(tmp_path), generator_source())


class TestUninterruptedRun:
    def test_flat_out_matches_offline_replay(self):
        service = FilterService(generator_source(), make_filter())
        result = service.run_forever()
        reference = offline_result()
        assert result.fingerprint == reference.fingerprint
        assert result.packets == reference.packets
        assert blocklist_entries(result) == blocklist_entries(reference)
        assert service.finished

    def test_sequential_backend(self):
        service = FilterService(
            generator_source(), make_filter(), SequentialBackend()
        )
        result = service.run_forever()
        assert result.fingerprint == offline_result().fingerprint

    def test_run_twice_rejected(self):
        service = FilterService(generator_source(), make_filter())
        service.run_forever()
        with pytest.raises(ServiceError, match="already finished"):
            service.run_forever()


class TestControlActions:
    def test_reconfigure_red_thresholds_and_rotation(self):
        async def scenario():
            service = FilterService(
                generator_source(), make_filter(), speed=40.0
            )
            run_task = asyncio.create_task(service.run())
            await asyncio.sleep(0.05)
            applied = await service.reconfigure(
                low_mbps=0.25, high_mbps=2.5, rotate_interval=8.0
            )
            await service.drain()
            result = await run_task
            return service, applied, result

        service, applied, result = asyncio.run(scenario())
        assert applied == {
            "low_mbps": 0.25, "high_mbps": 2.5, "rotate_interval": 8.0
        }
        policy = service.filter.drop_controller.policy
        assert policy.low == pytest.approx(0.25e6)
        assert policy.high == pytest.approx(2.5e6)
        assert service.filter.core.config.rotate_interval == 8.0
        assert result.packets > 0

    def test_reconfigure_rejects_unknown_keys(self):
        async def scenario():
            service = FilterService(
                generator_source(), make_filter(), speed=40.0
            )
            run_task = asyncio.create_task(service.run())
            await asyncio.sleep(0.02)
            with pytest.raises(ServiceError, match="unknown config keys"):
                await service.reconfigure(frobnicate=1)
            with pytest.raises(ServiceError, match="need 0 <= low < high"):
                await service.reconfigure(low_mbps=5.0, high_mbps=1.0)
            await service.shutdown()
            await run_task

        asyncio.run(scenario())

    def test_drain_finalizes_early(self):
        async def scenario():
            # A small queue bounds how much a slow paced run can have
            # buffered, so the drain demonstrably cuts the trace short.
            service = FilterService(
                generator_source(), make_filter(), speed=5.0, queue_depth=2
            )
            run_task = asyncio.create_task(service.run())
            await asyncio.sleep(0.1)
            summary = await service.drain()
            result = await run_task
            return service, summary, result

        service, summary, result = asyncio.run(scenario())
        assert service.finished
        assert summary["fingerprint"] == result.fingerprint
        assert summary["packets"] == result.packets
        # Everything queued was processed, but not the whole trace.
        assert 0 < result.packets < offline_result().packets

    def test_snapshot_without_dir_rejected(self):
        async def scenario():
            service = FilterService(
                generator_source(), make_filter(), speed=40.0
            )
            run_task = asyncio.create_task(service.run())
            await asyncio.sleep(0.02)
            with pytest.raises(ServiceError, match="no snapshot_dir"):
                await service.request_snapshot()
            await service.shutdown()
            await run_task

        asyncio.run(scenario())

    def test_actions_after_finish_rejected(self):
        service = FilterService(generator_source(), make_filter())
        service.run_forever()

        async def late():
            await service.drain()

        with pytest.raises(ServiceError, match="not running"):
            asyncio.run(late())


class TestPeriodicSnapshots:
    def test_snapshotter_writes_files(self, tmp_path):
        async def scenario():
            service = FilterService(
                generator_source(),
                make_filter(),
                speed=30.0,
                snapshot_dir=str(tmp_path),
                snapshot_interval=0.05,
            )
            run_task = asyncio.create_task(service.run())
            deadline = asyncio.get_running_loop().time() + 5.0
            while latest_snapshot(str(tmp_path)) is None:
                if asyncio.get_running_loop().time() > deadline:
                    break
                await asyncio.sleep(0.02)
            await service.shutdown()
            return await run_task

        asyncio.run(scenario())
        written = latest_snapshot(str(tmp_path))
        assert written is not None
        document = read_snapshot(written)
        assert document["chunks_done"] >= 1
        assert document["pipeline"]["fingerprint"] is not None

    def test_interval_requires_dir(self):
        with pytest.raises(ValueError, match="needs a snapshot_dir"):
            FilterService(
                generator_source(), make_filter(), snapshot_interval=1.0
            )


class TestIdleService:
    def test_idle_shutdown_reports_empty_summary(self):
        async def scenario():
            service = FilterService(
                IdleSource(poll_interval=0.01), make_filter()
            )
            run_task = asyncio.create_task(service.run())
            await asyncio.sleep(0.05)
            summary = await service.shutdown()
            await run_task
            return summary

        summary = asyncio.run(scenario())
        assert summary["packets"] == 0
        assert summary["chunks_done"] == 0

    def test_restored_service_can_idle(self, tmp_path):
        """A restored filter with an idle source stays warm: the
        blocklist and counters survive into the new process."""
        sock = str(tmp_path / "ctl.sock")
        service = FilterService(
            generator_source(),
            make_filter(),
            speed=40.0,
            snapshot_dir=str(tmp_path),
            control=f"unix:{sock}",
        )
        thread, _ = run_in_thread(service)
        wait_for_socket(sock)
        with ControlClient(f"unix:{sock}") as client:
            wait_for_chunks(client, 3)
            snapshot_path = client.snapshot()
            client.shutdown()
        thread.join(timeout=10.0)

        document = read_snapshot(snapshot_path)

        async def scenario():
            restored = FilterService.restore(
                snapshot_path, IdleSource(poll_interval=0.01)
            )
            run_task = asyncio.create_task(restored.run())
            await asyncio.sleep(0.05)
            summary = await restored.shutdown()
            await run_task
            return restored, summary

        restored, summary = asyncio.run(scenario())
        assert summary["chunks_done"] == document["chunks_done"]
        pipeline = restored.stepper.pipeline
        assert pipeline.fingerprint == document["pipeline"]["fingerprint"]
        assert len(pipeline.router.blocklist) == len(
            document["router"]["blocklist"]["blocked"]
        )
        assert len(pipeline.router.blocklist) > 0


class TestValidation:
    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            FilterService(generator_source(), make_filter(), speed=0.0)

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ValueError):
            FilterService(generator_source(), make_filter(), queue_depth=0)

    def test_table_source_service(self):
        table = TraceGenerator(trace_config()).table()
        service = FilterService(
            TableSource(table, chunk_size=CHUNK), make_filter()
        )
        result = service.run_forever()
        assert result.fingerprint == offline_result().fingerprint
