#!/usr/bin/env python3
"""CI smoke test for the service plane, driven entirely through the CLI.

Exercises the operator-facing path end to end, in two daemon lifetimes:

run 1: ``repro serve`` over a paced generator trace
       -> poll ``repro ctl ... health`` until traffic has flowed
       -> ``repro ctl ... stats`` (blocklist populated)
       -> ``repro ctl ... snapshot``
       -> ``repro ctl ... shutdown``
run 2: ``repro serve --restore <dir> --source idle`` (warm restart)
       -> ``repro ctl ... stats``: the blocklist survived the restart
       -> ``repro ctl ... shutdown``

Then the fleet phase: a 3-shard supervised fleet over the same kind of
trace — RED retune fanned out mid-trace, one shard SIGKILLed and
recovered from its snapshot, ``repro fleet status`` checked from outside
— whose merged fingerprint and blocklist must equal the offline
partitioned replay bit for bit.

Exits non-zero (with a transcript) on any failed expectation.
"""

import json
import os
import subprocess
import sys
import tempfile
import time

CLI = [sys.executable, "-m", "repro.cli"]


def ctl(address, *argv, check=True):
    """Run one ``repro ctl`` command; returns parsed stdout."""
    result = subprocess.run(
        [*CLI, "ctl", address, *argv],
        capture_output=True, text=True, timeout=30,
    )
    if check and result.returncode != 0:
        raise SystemExit(
            f"ctl {argv} failed rc={result.returncode}: {result.stderr}"
        )
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError:
        return result.stdout.strip()


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {what}")


def health_or_none(address):
    result = subprocess.run(
        [*CLI, "ctl", address, "health"],
        capture_output=True, text=True, timeout=30,
    )
    if result.returncode != 0:
        return None
    return json.loads(result.stdout)


def serve(extra, address, workdir):
    return subprocess.Popen(
        [*CLI, "serve", "--control", address,
         "--snapshot-dir", workdir, *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def finish(daemon, label):
    output, _ = daemon.communicate(timeout=60)
    print(f"--- {label} output ---\n{output}")
    if daemon.returncode != 0:
        raise SystemExit(f"{label} exited rc={daemon.returncode}")
    return output


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="service-smoke-")
    address = f"unix:{os.path.join(workdir, 'ctl.sock')}"

    # -- run 1: paced traffic, snapshot, shutdown -----------------------
    daemon = serve(
        ["--source", "generator", "--duration", "20", "--rate", "6",
         "--seed", "5", "--chunk-size", "512", "--speed", "40",
         "--size-bits", "12", "--vectors", "3", "--hashes", "2",
         "--low-mbps", "0.1", "--high-mbps", "1.0"],
        address, workdir,
    )
    try:
        wait_for(lambda: health_or_none(address), 15, "control socket")
        wait_for(
            lambda: (health_or_none(address) or {}).get("chunks_done", 0) >= 3,
            30, "3 processed chunks",
        )
        stats = ctl(address, "stats")
        print(f"run 1: {stats['packets']} packets, "
              f"{stats['blocklist']['entries']} blocked connections")
        if stats["blocklist"]["entries"] == 0:
            raise SystemExit("expected a populated blocklist before restart")
        snapshot_path = ctl(address, "snapshot")
        if not os.path.isfile(snapshot_path):
            raise SystemExit(f"snapshot file missing: {snapshot_path}")
        # The restart comparison baseline is the snapshot itself — the
        # service keeps processing after the stats sample above, so the
        # file is the only exact reference.
        with open(snapshot_path) as handle:
            snapshot = json.load(handle)
        blocked_before = len(snapshot["router"]["blocklist"]["blocked"])
        fingerprint_before = snapshot["pipeline"]["fingerprint"]
        ctl(address, "shutdown")
        finish(daemon, "run 1")
    finally:
        if daemon.poll() is None:
            daemon.kill()

    # -- run 2: warm restart on an idle source --------------------------
    daemon = serve(
        ["--source", "idle", "--restore", workdir], address, workdir
    )
    try:
        wait_for(lambda: health_or_none(address), 15, "restarted socket")
        stats = ctl(address, "stats")
        blocked_after = stats["blocklist"]["entries"]
        fingerprint_after = stats["fingerprint"]
        print(f"run 2: blocklist {blocked_after} entries after restart")
        if blocked_after != blocked_before:
            raise SystemExit(
                f"blocklist lost across restart: "
                f"{blocked_before} -> {blocked_after}"
            )
        if fingerprint_after != fingerprint_before:
            raise SystemExit(
                f"fingerprint changed across restart: "
                f"{fingerprint_before:#x} -> {fingerprint_after:#x}"
            )
        ctl(address, "shutdown")
        finish(daemon, "run 2")
    finally:
        if daemon.poll() is None:
            daemon.kill()

    print("service smoke: OK (snapshot + warm restart preserved state)")

    fleet_smoke()


def fleet_smoke() -> None:
    """The fleet phase: supervised shard daemons under disruption must
    reproduce the offline partitioned replay exactly."""
    from repro.fleet import FleetSupervisor, ShardFilterSpec, offline_reference
    from repro.shard.plan import HashShardPlan
    from repro.workload import TraceConfig, TraceGenerator

    workdir = tempfile.mkdtemp(prefix="fleet-smoke-")
    plan = HashShardPlan(3, seed=3)
    spec = ShardFilterSpec(size_bits=12, vectors=3, hashes=2,
                           low_mbps=0.1, high_mbps=1.0)
    table = TraceGenerator(
        TraceConfig(duration=15.0, connection_rate=5.0, seed=5)
    ).table()
    chunks = [table.slice(start, min(start + 512, len(table)))
              for start in range(0, len(table), 512)]
    print(f"fleet: 3 shards in {workdir}, "
          f"{len(table)} packets in {len(chunks)} chunks")

    supervisor = FleetSupervisor(plan, workdir, spec=spec, snapshot_every=2)
    try:
        supervisor.launch()
        supervisor.feed(chunks[:len(chunks) // 2])

        # Fan-out retune: same values, so the offline reference (which
        # cannot retune mid-trace) stays comparable — the broadcast path
        # and the per-shard applied echo are what this exercises.
        applied = supervisor.configure(low_mbps=0.1, high_mbps=1.0)
        if len(applied) != 3 or any(
            response.get("low_mbps") != 0.1 for response in applied.values()
        ):
            raise SystemExit(f"fleet retune fan-out failed: {applied}")
        print(f"fleet: retune applied on {len(applied)} shards")

        # The operator view from another process, off the manifest.
        status = subprocess.run(
            [*CLI, "fleet", "status", workdir],
            capture_output=True, text=True, timeout=30,
        )
        if status.returncode != 0 or "3 shards" not in status.stdout:
            raise SystemExit(
                f"fleet status failed rc={status.returncode}:\n"
                f"{status.stdout}{status.stderr}"
            )
        print(status.stdout.strip())

        # Crash the busiest shard mid-trace; the next send recovers it
        # from its latest snapshot and resends the lane's retained epoch.
        busiest = max(supervisor.daemons, key=lambda d: d.frames_sent)
        print(f"fleet: killing {busiest.label} "
              f"({busiest.frames_sent} frames in)")
        busiest.kill()
        supervisor.feed(chunks[len(chunks) // 2:])
        result = supervisor.drain()
    finally:
        supervisor.stop()

    if result.restarts < 1:
        raise SystemExit("expected the killed shard to restart")
    reference = offline_reference(table, plan, spec)
    if result.fingerprint != reference.fingerprint:
        raise SystemExit(
            f"fleet fingerprint {result.fingerprint:#018x} != offline "
            f"{reference.fingerprint:#018x}"
        )
    offline_blocked = dict(reference.router.blocklist._blocked)
    if result.blocked != offline_blocked:
        raise SystemExit(
            f"fleet blocklist ({len(result.blocked)} rows) != offline "
            f"({len(offline_blocked)} rows)"
        )
    print(f"fleet smoke: OK (restarts={result.restarts}, fingerprint "
          f"{result.fingerprint:#018x} matches offline replay)")


if __name__ == "__main__":
    main()
