#!/usr/bin/env python3
"""Capacity planning — sizing a bitmap filter with the section 5.1 model.

Given how many connections a client network keeps active inside one
expiry window and the penetration probability the operator will tolerate,
the closed-form model (Equations 3/5/6) produces a deployable
configuration — the section 4.3 procedure as a tool.

Run:  python examples/capacity_planning.py [active_connections] [target_p]
"""

import sys

from repro.core.analysis import (
    capacity_bound,
    capacity_table,
    optimal_hash_count,
    penetration_probability,
    recommend_parameters,
)


def main() -> None:
    connections = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    target_p = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05

    print(f"planning for {connections:,} active connections per T_e window, "
          f"target penetration p <= {target_p:.0%}\n")

    rec = recommend_parameters(connections, target_p=target_p,
                               expiry_time=20.0, rotate_interval=5.0)
    print("recommended configuration (section 4.3 procedure):")
    print(f"  {rec.summary()}\n")

    print("the paper's worked example — capacity of a {4 x 2^20} bitmap:")
    print(f"  {'target p':>10} {'capacity (Eq. 6)':>18} {'optimal m (Eq. 5)':>18}")
    for row in capacity_table(2 ** 20):
        print(f"  {row['target_p']:>9.0%} {row['capacity']:>16,.0f}  "
              f"{row['optimal_m_at_capacity']:>16.2f}")
    print("  (paper: 167K / 125K / 83K connections at 10% / 5% / 1%)\n")

    print("what-if sweep for your load:")
    print(f"  {'N':>8} {'m*':>6} {'predicted p':>12} {'memory (k=4)':>14}")
    n = 14
    while n <= 24:
        size = 2 ** n
        m = max(1, round(optimal_hash_count(size, connections)))
        m = min(m, 8)
        p = penetration_probability(connections, size, m)
        print(f"  2^{n:<6} {m:>6} {p:>11.2%} {4 * size // 8 // 1024:>11} KiB")
        n += 2

    print(f"\nheadroom: a 2^20 vector supports {capacity_bound(2**20, target_p):,.0f} "
          f"connections at p = {target_p:.0%}; "
          f"you asked for {connections:,} "
          f"({connections / capacity_bound(2**20, target_p):.0%} of capacity)")


if __name__ == "__main__":
    main()
