#!/usr/bin/env python3
"""Trace analysis — the paper's section 3 measurement study on a pcap.

Writes a synthetic client-network trace to a pcap file (tcpdump format),
reads it back like a capture tool would, and runs the full traffic
analyzer over it: application classification (Table 2), port profiles
(Figures 2-3), connection lifetimes (Figure 4), out-in delays (Figure 5).

Run:  python examples/trace_analysis.py [path.pcap]
      (reuses an existing pcap at that path if present)
"""

import os
import sys

from repro.analyzer import TrafficAnalyzer, port_cdf, protocol_distribution
from repro.analyzer.report import (
    CLASS_NON_P2P,
    CLASS_P2P,
    CLASS_UNKNOWN,
    cdf_value,
    lifetime_report,
)
from repro.net.headers import decode_packet
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP, in_network, parse_ipv4
from repro.net.packet import Direction
from repro.net.pcap import read_pcap
from repro.workload import TraceConfig, TraceGenerator

CLIENT_NET = "10.1.0.0"
PREFIX = 16


def load_packets(path: str):
    """Parse a pcap and re-derive packet directions from the topology,
    exactly what the paper's traffic monitor does on its mirror port."""
    net = parse_ipv4(CLIENT_NET)
    packets = []
    for record in read_pcap(path):
        try:
            packet = decode_packet(record.data, record.timestamp, verify_checksums=True)
        except ValueError:
            continue  # "Packets with incorrect checksum values are not considered"
        inside = in_network(packet.pair.src_addr, net, PREFIX)
        packet.direction = Direction.OUTBOUND if inside else Direction.INBOUND
        packets.append(packet)
    return packets


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/repro_client_trace.pcap"
    if not os.path.exists(path):
        print(f"synthesising trace -> {path}")
        generator = TraceGenerator(
            TraceConfig(duration=60.0, connection_rate=10.0, seed=21,
                        network=CLIENT_NET, prefix_len=PREFIX)
        )
        count = generator.write_pcap(path)
        print(f"  wrote {count:,} packets")

    print(f"reading {path} ...")
    packets = load_packets(path)
    print(f"  parsed {len(packets):,} packets; analyzing ...\n")

    analyzer = TrafficAnalyzer().analyze(packets)

    print("=== Table 2: protocol distribution ===")
    print(f"{'protocol':<12} {'connections':>12} {'utilization':>12}")
    for row in protocol_distribution(analyzer.flows):
        print(f"{row.protocol:<12} {row.connection_share:>11.1%} {row.byte_share:>11.1%}")

    print("\n=== Figure 2: TCP service-port profile ===")
    cdf = port_cdf(analyzer.flows, protocol=IPPROTO_TCP)
    for klass in (CLASS_NON_P2P, CLASS_P2P, CLASS_UNKNOWN):
        if klass in cdf:
            low = cdf_value(cdf[klass], 1023)
            mid = cdf_value(cdf[klass], 10000)
            print(f"{klass:<9} CDF@1023={low:.2f}  CDF@10000={mid:.2f}  "
                  f"(P2P-like classes live on high random ports)")

    print("\n=== Figure 4: connection lifetimes ===")
    report = lifetime_report(analyzer.flows)
    print(f"TCP connections: {report.count:,}   mean lifetime: {report.mean:.1f}s")
    for q, value in sorted(report.quantiles.items()):
        print(f"  {q:.0%} of connections under {value:.1f}s")

    print("\n=== Figure 5: out-in packet delays ===")
    print(f"measured delays: {len(analyzer.outin):,}")
    print(f"  median: {analyzer.outin.quantile(0.5) * 1000:.0f} ms")
    print(f"  99th percentile: {analyzer.outin.quantile(0.99):.2f}s "
          f"(paper: 2.8s)")
    print(f"  CDF(2.8s) = {analyzer.outin.cdf_at(2.8):.1%}")

    udp = sum(1 for f in analyzer.flows if f.pair.protocol == IPPROTO_UDP)
    print(f"\nheadline: {len(analyzer.flows):,} connections, "
          f"{udp / len(analyzer.flows):.0%} UDP (paper: 70.1%)")


if __name__ == "__main__":
    main()
