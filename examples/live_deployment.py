#!/usr/bin/env python3
"""Live deployment — the streaming service plane end to end.

The offline replay engine answers "what would the filter have done";
the service plane *runs* the filter: wall-clock-paced traffic, a JSON
control socket, live retuning, snapshots.  This example drives one
service through a realistic operator session:

1. start a FilterService over a paced synthetic trace (40x real time),
2. watch its telemetry over the control socket,
3. retune the RED thresholds mid-run — no restart, no lost state,
4. take a snapshot (the warm-restart artifact), and
5. drain: stop ingest, flush the queue, print the final summary.

Run:  python examples/live_deployment.py
"""

import os
import tempfile
import threading
import time

from repro import BitmapFilterConfig, BitmapPacketFilter, DropController
from repro.service import ControlClient, FilterService, GeneratorSource
from repro.workload import TraceConfig, TraceGenerator


def build_service(control_address, snapshot_dir):
    # A small filter so the example's drops are visible: tight RED
    # thresholds (0.1 -> 1.0 Mbps) over a 6 connections/s neighborhood.
    packet_filter = BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 14, vectors=4, hashes=3,
                           rotate_interval=5.0),
        drop_controller=DropController.red_mbps(0.1, 1.0),
    )
    generator = TraceGenerator(
        TraceConfig(duration=30.0, connection_rate=6.0, seed=11)
    )
    return FilterService(
        GeneratorSource(generator, chunk_size=1024),
        packet_filter,
        speed=40.0,  # 40x real time: the 30s trace window paces in <1s
        snapshot_dir=snapshot_dir,
        control=control_address,
    )


def wait_for_socket(path, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise TimeoutError(f"control socket never appeared: {path}")
        time.sleep(0.02)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="live-deployment-")
    socket_path = os.path.join(workdir, "filter.sock")
    address = f"unix:{socket_path}"

    service = build_service(address, workdir)
    runner = threading.Thread(target=service.run_forever, daemon=True)
    runner.start()
    wait_for_socket(socket_path)
    print(f"service up, control socket at {address}")

    with ControlClient(address) as client:
        # Let some paced traffic through, then look at the telemetry.
        while client.health()["chunks_done"] < 2:
            time.sleep(0.02)
        stats = client.stats()
        print(f"after {stats['chunks_done']} chunks: "
              f"{stats['packets']} packets, "
              f"{stats['inbound_dropped']} inbound dropped "
              f"({stats['inbound_drop_rate']:.1%})")
        print(f"drop policy: {stats['drop_policy']}")

        # Mid-run retune: relax the RED band without restarting.  The
        # change lands between chunks, so no packet sees a half-applied
        # policy.
        applied = client.configure(low_mbps=0.5, high_mbps=2.0)
        print(f"reconfigured live: {applied}")

        # Snapshot: everything needed to warm-restart this filter —
        # bitmap bits, RNG, rotation clock, blocklist, counters.
        snapshot_path = client.snapshot()
        print(f"snapshot written to {snapshot_path}")

        # Clean drain: ingest stops, the queue flushes, the service
        # finalizes; the summary comes back on the same request.
        summary = client.drain()

    runner.join(timeout=30.0)
    print(f"drained after {summary['chunks_done']} chunks: "
          f"{summary['packets']} packets, "
          f"{summary['inbound_dropped']} inbound dropped")
    print(f"verdict fingerprint: {summary['fingerprint']:#018x}")
    print("the snapshot file restarts this exact state: "
          "repro serve --source idle --restore <dir>")


if __name__ == "__main__":
    main()
