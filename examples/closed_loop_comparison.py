#!/usr/bin/env python3
"""Closed-loop vs open-loop filtering — testing the paper's belief.

Section 5.3 ends with a caveat: replaying a fixed trace cannot block the
outbound uploads that blocked inbound requests would have prevented, so
"the filter can perform better in a real network environment."  This
example runs the same workload both ways and compares:

* open loop  — fixed packet replay with the blocked-σ store (the paper's
  methodology);
* closed loop — connection-level simulation where a refused connection
  never transmits (a live deployment).

Also stacks up an indiscriminate token-bucket policer to show the bitmap
filter's selectivity: the policer hurts the client's own traffic, the
bitmap filter does not.

Run:  python examples/closed_loop_comparison.py [seed]
"""

import sys

from repro import BitmapFilterConfig, BitmapPacketFilter, Direction, DropController
from repro.filters.base import AcceptAllFilter
from repro.filters.ratelimit import TokenBucketFilter
from repro.sim.closedloop import ClosedLoopSimulator
from repro.sim.replay import replay
from repro.workload import TraceConfig, TraceGenerator


def bitmap(low, high):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=DropController.red_mbps(low_mbps=low, high_mbps=high),
    )


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    generator = TraceGenerator(TraceConfig(duration=90.0, connection_rate=12.0, seed=seed))
    trace = generator.packet_list()
    specs = generator.specs()
    print(f"workload: {len(specs):,} connections, {len(trace):,} packets\n")

    unfiltered = replay(trace, AcceptAllFilter(), use_blocklist=False)
    offered = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
    low, high = offered * 0.35, offered * 0.70
    print(f"unfiltered uplink: {offered:.2f} Mbps  (L={low:.2f}, H={high:.2f})\n")

    open_loop = replay(trace, bitmap(low, high), use_blocklist=True)
    print("open loop (paper's replay methodology):")
    print(f"  uplink after: {open_loop.passed.mean_mbps(Direction.OUTBOUND):.2f} Mbps")
    print(f"  blocked connections: {len(open_loop.router.blocklist):,}\n")

    closed = ClosedLoopSimulator(bitmap(low, high)).run(specs)
    print("closed loop (a live deployment):")
    print(f"  uplink after: {closed.passed.mean_mbps(Direction.OUTBOUND):.2f} Mbps")
    print(f"  connections refused: {closed.connections_refused:,} "
          f"({closed.refused_by_initiator})")
    print(f"  admission rate: {closed.admission_rate:.1%}\n")

    bucket = ClosedLoopSimulator(TokenBucketFilter(rate_mbps=high)).run(specs)
    print(f"token-bucket policer at {high:.2f} Mbps (what an ISP does without "
          "the bitmap filter):")
    print(f"  uplink after: {bucket.passed.mean_mbps(Direction.OUTBOUND):.2f} Mbps")
    print(f"  *client-initiated* connections refused: "
          f"{bucket.refused_by_initiator.get('client', 0):,} "
          f"(bitmap filter: {closed.refused_by_initiator.get('client', 0):,})")

    print("\nconclusion: with feedback the bitmap filter bounds the uplink at")
    print("least as tightly as the replay suggested — and unlike blanket")
    print("policing, it refuses (almost) no client-initiated traffic.")


if __name__ == "__main__":
    main()
