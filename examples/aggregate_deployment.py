#!/usr/bin/env python3
"""Aggregate deployment — Figure 6's core-router placement.

"The bitmap filter can be installed on an edge router directly connected
to a client network or on a core router, which is an aggregate of two or
more client networks."  This example builds two client networks, merges
their traffic, and compares:

* two per-edge filters (one per client network), vs
* one filter at the aggregation point sized by the Equation 6 capacity
  model for the combined connection load.

Run:  python examples/aggregate_deployment.py
"""

import heapq

from repro import BitmapFilterConfig, BitmapPacketFilter, Direction
from repro.core.analysis import recommend_parameters
from repro.workload import TraceConfig, TraceGenerator


def make_network(network, seed):
    generator = TraceGenerator(
        TraceConfig(duration=60.0, connection_rate=8.0, seed=seed,
                    network=network, prefix_len=16)
    )
    return generator.packet_list()


def run_filter(filt, packets):
    for packet in packets:
        filt.process(packet)
    return filt.stats.drop_rate(Direction.INBOUND)


def main() -> None:
    print("building two client networks (10.1/16 and 10.2/16)...")
    net_a = make_network("10.1.0.0", seed=31)
    net_b = make_network("10.2.0.0", seed=32)
    merged = list(heapq.merge(net_a, net_b, key=lambda p: p.timestamp))
    print(f"  edge A: {len(net_a):,} packets, edge B: {len(net_b):,}, "
          f"core sees {len(merged):,}\n")

    config = BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0)

    edge_a = BitmapPacketFilter(config)
    edge_b = BitmapPacketFilter(config)
    rate_a = run_filter(edge_a, net_a)
    rate_b = run_filter(edge_b, net_b)
    print("per-edge deployment (two 512 KiB filters):")
    print(f"  edge A inbound drop rate: {rate_a:.2%}")
    print(f"  edge B inbound drop rate: {rate_b:.2%}\n")

    core = BitmapPacketFilter(config)
    rate_core = run_filter(core, merged)
    print("core-router deployment (one 512 KiB filter for both networks):")
    print(f"  aggregate inbound drop rate: {rate_core:.2%}")
    print(f"  utilization of current vector: {core.core.current_utilization:.4%}\n")

    # Sizing check: does one vector carry the combined load?
    combined_conns = 2 * 8.0 * config.expiry_time  # rate x T_e per network
    rec = recommend_parameters(int(combined_conns) + 1, target_p=0.01)
    print("Equation 6 sizing for the aggregate point at p <= 1%:")
    print(f"  {rec.summary()}")
    print(f"\nthe paper's 2^20 vector supports 83K connections at p=1% — an"
          f" aggregate of ~{combined_conns:.0f} is {combined_conns / 83_000:.2%}"
          " of capacity: one core filter is ample for both networks.")


if __name__ == "__main__":
    main()
