#!/usr/bin/env python3
"""Adaptive limiting — one knob instead of two thresholds.

The Equation 1 policy needs an operator to choose (L, H).  The
TargetRateController extension takes a single target uplink rate and
steers P_d to hold it.  This example runs both on the same workload in
the closed-loop simulator and plots the resulting uplink.

Run:  python examples/adaptive_limiting.py [target_fraction]
      target_fraction: desired uplink as a fraction of offered (default 0.5)
"""

import sys

from repro import BitmapFilterConfig, BitmapPacketFilter, Direction, DropController
from repro.core.autotune import TargetRateController
from repro.core.throughput import SlidingWindowMeter
from repro.filters.base import AcceptAllFilter
from repro.report.figures import render_series
from repro.sim.closedloop import ClosedLoopSimulator
from repro.workload import TraceConfig, TraceGenerator


def bitmap(controller):
    return BitmapPacketFilter(
        BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
        drop_controller=controller,
    )


def main() -> None:
    fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    generator = TraceGenerator(TraceConfig(duration=120.0, connection_rate=12.0, seed=5))
    generator.packet_list()
    specs = generator.specs()

    unfiltered = ClosedLoopSimulator(AcceptAllFilter()).run(specs)
    offered = unfiltered.passed.mean_mbps(Direction.OUTBOUND)
    target = offered * fraction
    print(f"offered uplink {offered:.2f} Mbps, target {target:.2f} Mbps "
          f"({fraction:.0%})\n")

    red = ClosedLoopSimulator(
        bitmap(DropController.red_mbps(low_mbps=target * 0.7, high_mbps=target * 1.4))
    ).run(specs)
    adaptive = ClosedLoopSimulator(
        bitmap(DropController(
            policy=TargetRateController.mbps(target, gain=0.05),
            meter=SlidingWindowMeter(window=1.0),
        ))
    ).run(specs)

    def clip(series, horizon=180.0):
        return [(t, v) for t, v in series if t <= horizon]

    print(render_series(clip(unfiltered.passed.series_mbps(Direction.OUTBOUND)),
                        title="uplink, unfiltered", y_label="Mbps", hline=target))
    print()
    print(render_series(clip(red.passed.series_mbps(Direction.OUTBOUND)),
                        title=f"uplink, Equation 1 (L={target * 0.7:.2f}, "
                              f"H={target * 1.4:.2f})",
                        y_label="Mbps", hline=target))
    print()
    print(render_series(clip(adaptive.passed.series_mbps(Direction.OUTBOUND)),
                        title=f"uplink, adaptive (target={target:.2f})",
                        y_label="Mbps", hline=target))

    print(f"\nmeans: unfiltered {offered:.2f}  "
          f"Eq.1 {red.passed.mean_mbps(Direction.OUTBOUND):.2f}  "
          f"adaptive {adaptive.passed.mean_mbps(Direction.OUTBOUND):.2f} Mbps")
    print(f"client connections refused: Eq.1 "
          f"{red.refused_by_initiator.get('client', 0)}, adaptive "
          f"{adaptive.refused_by_initiator.get('client', 0)} — both selective")


if __name__ == "__main__":
    main()
