#!/usr/bin/env python3
"""ISP deployment scenario — the Figure 9 experiment end to end.

Synthesises a client-network trace (heavy P2P upload, calibrated to the
paper's campus trace), deploys a bitmap filter with RED-style drop control
on the edge router, and renders before/after uplink throughput as an ASCII
time series.

Run:  python examples/isp_deployment.py [seed]
"""

import sys

from repro import BitmapFilterConfig, BitmapPacketFilter, Direction, DropController
from repro.filters.base import AcceptAllFilter
from repro.sim.replay import replay
from repro.workload import TraceConfig, TraceGenerator

BAR_WIDTH = 60


def sparkline(points, peak):
    """Render (time, mbps) points as one bar row per 10-second bucket."""
    buckets = {}
    for t, mbps in points:
        bucket = int(t // 10)
        buckets.setdefault(bucket, []).append(mbps)
    lines = []
    for bucket in sorted(buckets):
        mean = sum(buckets[bucket]) / len(buckets[bucket])
        bar = "#" * max(1, int(BAR_WIDTH * mean / peak)) if mean > 0 else ""
        lines.append(f"  t={bucket * 10:>4}s |{bar:<{BAR_WIDTH}}| {mean:6.2f} Mbps")
    return "\n".join(lines)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print("generating client-network trace (P2P-heavy, paper-calibrated)...")
    generator = TraceGenerator(
        TraceConfig(duration=120.0, connection_rate=12.0, seed=seed)
    )
    trace = generator.packet_list()
    print(f"  {len(trace):,} packets, {len(generator.specs()):,} connections\n")

    # Baseline: no filtering.
    unfiltered = replay(trace, AcceptAllFilter(), use_blocklist=False)
    offered = unfiltered.passed.mean_mbps(Direction.OUTBOUND)

    # Deploy: thresholds at 35 % / 70 % of the offered uplink load — the
    # same relative position the paper's L=50/H=100 Mbps holds against its
    # ~130 Mbps uplink.
    low, high = offered * 0.35, offered * 0.70
    filtered = replay(
        trace,
        BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(low_mbps=low, high_mbps=high),
        ),
        use_blocklist=True,
    )

    peak = max(
        [m for _, m in unfiltered.passed.series_mbps(Direction.OUTBOUND)] + [1e-9]
    )
    print(f"=== Figure 9-a: uplink throughput, unfiltered "
          f"(mean {offered:.2f} Mbps) ===")
    print(sparkline(unfiltered.passed.series_mbps(Direction.OUTBOUND), peak))

    limited = filtered.passed.mean_mbps(Direction.OUTBOUND)
    print(f"\n=== Figure 9-b: uplink throughput, bitmap filter with "
          f"L={low:.1f}, H={high:.1f} Mbps (mean {limited:.2f} Mbps) ===")
    print(sparkline(filtered.passed.series_mbps(Direction.OUTBOUND), peak))

    blocked = filtered.router.blocklist
    print(f"\nblocked connections: {len(blocked):,} "
          f"({blocked.suppressed_packets:,} packets suppressed)")
    print(f"inbound drop rate: {filtered.inbound_drop_rate:.2%}")
    print(f"uplink reduced {offered:.2f} -> {limited:.2f} Mbps "
          f"({1 - limited / offered:.0%} cut) with 512 KiB of filter state")


if __name__ == "__main__":
    main()
