#!/usr/bin/env python3
"""Quickstart: the bitmap filter in sixty seconds.

Builds the paper's {4 x 2^20}-bitmap filter, pushes a handful of packets
through it, and shows the core behaviour: outbound traffic always passes
and opens the return path; unsolicited inbound traffic is refused once the
uplink is busy — all in 512 KiB of state, no payload inspection.

Run:  python examples/quickstart.py
"""

from repro import (
    BitmapFilterConfig,
    BitmapPacketFilter,
    Direction,
    DropController,
    Packet,
    SocketPair,
)
from repro.net.inet import IPPROTO_TCP, parse_ipv4


def main() -> None:
    # The paper's evaluation configuration: N = 2^20 bits per vector,
    # k = 4 vectors, m = 3 hash functions, rotate every Δt = 5 s
    # (so marked socket pairs expire after T_e ≈ 20 s).
    config = BitmapFilterConfig(
        size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0
    )
    # Equation 1: start dropping unknown inbound packets at 50 Mbps of
    # uplink throughput, drop everything above 100 Mbps.
    filt = BitmapPacketFilter(
        config, drop_controller=DropController.red_mbps(low_mbps=50, high_mbps=100)
    )
    print(f"bitmap filter: {filt.core!r}")
    print(f"memory: {filt.memory_bytes // 1024} KiB (constant, forever)\n")

    client = parse_ipv4("10.1.0.5")     # inside the client network
    web = parse_ipv4("93.184.216.34")   # a web server
    peer = parse_ipv4("203.0.113.77")   # a P2P peer on the Internet

    # 1. The client opens a connection to a web server: outbound packets
    #    always pass and mark the socket pair into the bitmap.
    request = Packet(
        timestamp=0.0,
        pair=SocketPair(IPPROTO_TCP, client, 3345, web, 80),
        size=60,
        direction=Direction.OUTBOUND,
    )
    print(f"outbound request : {filt.process(request).value}")

    # 2. The server's response matches the marked pair: it passes even
    #    though the filter never saw TCP state or payloads.
    response = Packet(
        timestamp=0.2,
        pair=SocketPair(IPPROTO_TCP, web, 80, client, 3345),
        size=1500,
        direction=Direction.INBOUND,
    )
    print(f"inbound response : {filt.process(response).value}")

    # 3. An unsolicited inbound connection attempt (a remote peer trying
    #    to fetch shared content).  With low uplink usage P_d = 0, so it
    #    is admitted — the paper's filter only bites under load.
    probe = Packet(
        timestamp=0.5,
        pair=SocketPair(IPPROTO_TCP, peer, 51123, client, 6881),
        size=60,
        direction=Direction.INBOUND,
    )
    print(f"inbound request  : {filt.process(probe).value}  (uplink idle, P_d = 0)")

    # 4. Saturate the uplink and try again: now Equation 1 pushes P_d to 1
    #    and the unsolicited request is refused.
    for i in range(120):
        filt.process(
            Packet(
                timestamp=1.0 + i * 0.001,
                pair=SocketPair(IPPROTO_TCP, client, 4000 + i, peer, 6881),
                size=125_000,  # 1 Mbit each -> far beyond H within the window
                direction=Direction.OUTBOUND,
            )
        )
    probe_again = Packet(
        timestamp=1.2,
        pair=SocketPair(IPPROTO_TCP, peer, 51124, client, 6881),
        size=60,
        direction=Direction.INBOUND,
    )
    rate = filt.drop_controller.throughput_bps(1.2) / 1e6
    print(f"inbound request  : {filt.process(probe_again).value}  "
          f"(uplink at {rate:.0f} Mbps >= H, P_d = 1)")

    print(f"\nfilter stats: {filt.core.stats.as_dict()}")


if __name__ == "__main__":
    main()
