"""ASCII plot rendering.

Nothing here affects measurements — these functions turn the data
structures produced by :mod:`repro.analyzer.report` and
:mod:`repro.sim.metrics` into fixed-width text blocks for terminals,
logs and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_WIDTH = 64
DEFAULT_HEIGHT = 16


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return max(0, min(steps - 1, int(position * (steps - 1) + 0.5)))


def render_series(
    points: Sequence[Tuple[float, float]],
    title: str = "",
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    y_label: str = "",
    hline: Optional[float] = None,
) -> str:
    """Plot a (x, y) time series as a column chart.

    ``hline`` draws a horizontal reference (e.g. the Figure 9 H threshold).
    """
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_high = max(max(ys), hline or 0.0) or 1.0

    # Bucket x into columns, averaging y.
    columns: List[List[float]] = [[] for _ in range(width)]
    for x, y in points:
        columns[_scale(x, x_low, x_high, width)].append(y)
    heights = [
        (sum(column) / len(column)) if column else 0.0 for column in columns
    ]

    rows = []
    hline_row = _scale(hline, 0.0, y_high, height) if hline is not None else None
    for row in range(height - 1, -1, -1):
        threshold = y_high * (row + 0.5) / height
        cells = []
        for value in heights:
            if value >= threshold:
                cells.append("#")
            elif hline_row is not None and row == hline_row:
                cells.append("-")
            else:
                cells.append(" ")
        label = f"{y_high * (row + 1) / height:8.2f}" if row in (0, height - 1) else " " * 8
        rows.append(f"{label} |{''.join(cells)}|")
    footer = f"{'':8} +{'-' * width}+"
    x_axis = f"{'':9}{x_low:<10.0f}{'':{max(0, width - 20)}}{x_high:>10.0f}"
    header = f"{title}" + (f"   [y: {y_label}]" if y_label else "")
    return "\n".join([header] + rows + [footer, x_axis])


def render_cdf(
    curves: Dict[str, List[Tuple[float, float]]],
    title: str = "",
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    x_log: bool = False,
) -> str:
    """Overlay several CDF curves, one symbol per curve (Figures 2/3/5)."""
    if not curves:
        return f"{title}\n(no data)"
    symbols = "*o+x@%&"
    all_x = [x for points in curves.values() for x, _ in points if x > 0 or not x_log]
    if not all_x:
        return f"{title}\n(no data)"
    x_low, x_high = min(all_x), max(all_x)
    if x_log:
        x_low = max(x_low, 1e-9)

    def x_column(x: float) -> int:
        if x_log:
            return _scale(math.log10(max(x, x_low)), math.log10(x_low),
                          math.log10(x_high), width)
        return _scale(x, x_low, x_high, width)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (name, points), symbol in zip(curves.items(), symbols):
        legend.append(f"{symbol}={name}")
        # Interpolate the curve at each column for a continuous line.
        column_values: Dict[int, float] = {}
        for x, y in points:
            column_values[x_column(x)] = max(column_values.get(x_column(x), 0.0), y)
        running = 0.0
        for column in range(width):
            running = column_values.get(column, running)
            if running > 0:
                grid[height - 1 - _scale(running, 0.0, 1.0, height)][column] = symbol

    rows = [f"{1.0 - row / (height - 1):5.2f} |{''.join(grid[row])}|" for row in range(height)]
    footer = f"{'':5} +{'-' * width}+"
    scale_note = "log-x" if x_log else "linear-x"
    x_axis = f"{'':6}{x_low:<12.4g}{'':{max(0, width - 24)}}{x_high:>12.4g} ({scale_note})"
    return "\n".join([f"{title}   {'  '.join(legend)}"] + rows + [footer, x_axis])


def render_histogram(
    bins: Sequence[Tuple[float, int]],
    title: str = "",
    width: int = 50,
    max_rows: int = 24,
    bin_label: str = "s",
) -> str:
    """Horizontal-bar histogram (Figures 4 and 5-a)."""
    if not bins:
        return f"{title}\n(no data)"
    shown = list(bins[:max_rows])
    peak = max(count for _, count in shown) or 1
    lines = [title]
    for start, count in shown:
        bar = "#" * max(1 if count else 0, int(width * count / peak))
        lines.append(f"{start:>8.1f}{bin_label} |{bar:<{width}}| {count}")
    if len(bins) > max_rows:
        remainder = sum(count for _, count in bins[max_rows:])
        lines.append(f"{'...':>9} | ({remainder} in {len(bins) - max_rows} more bins)")
    return "\n".join(lines)


def render_scatter(
    points: Sequence[Tuple[float, float]],
    title: str = "",
    size: int = 24,
    diagonal: bool = True,
) -> str:
    """Square scatter plot with an optional identity line (Figure 8)."""
    if not points:
        return f"{title}\n(no data)"
    high = max(max(x for x, _ in points), max(y for _, y in points)) or 1.0
    grid = [[" "] * size for _ in range(size)]
    if diagonal:
        for index in range(size):
            grid[size - 1 - index][index] = "."
    for x, y in points:
        column = _scale(x, 0.0, high, size)
        row = size - 1 - _scale(y, 0.0, high, size)
        grid[row][column] = "*"
    rows = [f"|{''.join(line)}|" for line in grid]
    return "\n".join(
        [f"{title}   (axes 0..{high:.3g}, '.' = slope 1.0)"] + rows + ["+" + "-" * size + "+"]
    )
