"""Text rendering of the paper's figures.

Terminal-friendly plots (CDF curves, time series, histograms) so the
benchmark harness and examples can *show* the reproduced figures, not just
assert on their statistics.
"""

from repro.report.figures import (
    render_cdf,
    render_histogram,
    render_scatter,
    render_series,
)

__all__ = ["render_cdf", "render_histogram", "render_scatter", "render_series"]
