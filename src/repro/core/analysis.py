"""Closed-form model of the bitmap filter — section 5.1, Equations 2-6.

Definitions (paper's notation):

* ``N``  — bits per vector, ``U = b/N`` its utilization
* ``m``  — number of hash functions
* ``c``  — active connections within one expiry window ``T_e``
* ``p``  — *penetration probability*: the chance a random inbound socket
  pair (one that should be dropped) passes the filter — the bitmap filter's
  false-positive rate.

Equation 2:  ``p = U^m``
Equation 3:  ``p ≈ (c·m/N)^m``        (low-utilization approximation)
Equation 5:  ``m* = N/(e·c)``         (minimizes Equation 3)
Equation 6:  ``c/N ≤ −1/(e·ln p)``    (capacity bound at m = m*)

The worked example in the paper: ``N = 2^20``, ``k = 4``, ``Δt = 5`` s
(``T_e = 20`` s) gives capacity ≈ 167K / 125K / 83K connections for target
``p`` of 10 % / 5 % / 1 %, with ``m = 3`` and 512 KiB of memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

E = math.e


def penetration_probability(connections: int, size: int, hashes: int) -> float:
    """Equation 3: ``p ≈ (c·m/N)^m``.

    Valid in the low-utilization regime where hash collisions among the
    marked bits are rare; clamped to 1.0 when the approximation exceeds it.
    """
    _check_positive(size=size, hashes=hashes)
    if connections < 0:
        raise ValueError(f"connections must be non-negative: {connections}")
    base = connections * hashes / size
    return min(1.0, base ** hashes)


def exact_penetration_probability(connections: int, size: int, hashes: int) -> float:
    """The exact expected rate ``(1 − (1 − 1/N)^{c·m})^m`` without the
    low-utilization approximation (standard Bloom analysis)."""
    _check_positive(size=size, hashes=hashes)
    if connections < 0:
        raise ValueError(f"connections must be non-negative: {connections}")
    utilization = 1.0 - (1.0 - 1.0 / size) ** (connections * hashes)
    return utilization ** hashes


def expected_utilization(connections: int, size: int, hashes: int) -> float:
    """Expected fraction of marked bits after ``c`` distinct pairs."""
    _check_positive(size=size, hashes=hashes)
    return 1.0 - (1.0 - 1.0 / size) ** (connections * hashes)


def optimal_hash_count(size: int, connections: int) -> float:
    """Equation 5: the ``m`` that minimizes Equation 3, ``m* = N/(e·c)``.

    Found by solving ``1 + ln(c·m/N) = 0`` (Equation 4's stationarity).
    Returns the real-valued optimum; round and clamp to >= 1 in practice.
    """
    _check_positive(size=size)
    if connections <= 0:
        raise ValueError(f"connections must be positive: {connections}")
    return size / (E * connections)


def capacity_bound(size: int, target_p: float) -> float:
    """Equation 6: max supportable connections ``c ≤ −N/(e·ln p)``.

    The number of active connections inside a ``T_e`` window that a vector
    of ``N`` bits can carry while keeping penetration probability at most
    ``target_p`` (assuming the optimal ``m`` of Equation 5).
    """
    _check_positive(size=size)
    if not 0.0 < target_p < 1.0:
        raise ValueError(f"target_p must be in (0, 1): {target_p}")
    return -size / (E * math.log(target_p))


def minimum_vector_size(connections: int, target_p: float) -> int:
    """Invert Equation 6: smallest power-of-two ``N`` supporting ``c``
    connections at penetration probability ``target_p``."""
    if connections <= 0:
        raise ValueError(f"connections must be positive: {connections}")
    required = connections * E * (-math.log(target_p))
    n_bits = max(1, math.ceil(math.log2(required)))
    return 1 << n_bits


@dataclass
class ParameterRecommendation:
    """Output of :func:`recommend_parameters` — a ready-to-use config plus
    the model's predictions for it."""

    size: int  # N
    vectors: int  # k
    hashes: int  # m
    rotate_interval: float  # Δt
    expiry_time: float  # T_e = k·Δt
    memory_bytes: int
    predicted_penetration: float
    capacity: float  # connections supportable at target_p

    def summary(self) -> str:
        n = self.size.bit_length() - 1
        return (
            f"{{k={self.vectors} x N=2^{n}}}-bitmap, m={self.hashes}, "
            f"Δt={self.rotate_interval:g}s (T_e={self.expiry_time:g}s), "
            f"{self.memory_bytes // 1024} KiB, "
            f"predicted p={self.predicted_penetration:.4f}, "
            f"capacity≈{self.capacity:,.0f} conns"
        )


def recommend_parameters(
    expected_connections: int,
    target_p: float = 0.05,
    expiry_time: float = 20.0,
    rotate_interval: float = 5.0,
    max_hashes: int = 8,
) -> ParameterRecommendation:
    """The section 4.3 parameter-selection procedure as code.

    Guidance encoded from the paper: ``T_e`` "below 60 seconds, such as 20
    or 30 seconds, would be acceptable"; ``Δt`` of "4 or 5 seconds would be
    appropriate"; ``k = floor(T_e/Δt)``; pick the smallest power-of-two
    ``N`` meeting the capacity bound, then the integer ``m`` nearest the
    Equation 5 optimum (capped — each extra hash costs per-packet time).
    """
    if expected_connections <= 0:
        raise ValueError("expected_connections must be positive")
    if not 0.0 < target_p < 1.0:
        raise ValueError(f"target_p must be in (0, 1): {target_p}")
    if expiry_time <= 0 or rotate_interval <= 0:
        raise ValueError("times must be positive")
    if expiry_time < rotate_interval:
        raise ValueError("T_e must be at least Δt")
    if expiry_time > 60.0:
        raise ValueError(
            "T_e above 60s invites port-reuse false positives (section 4.3); "
            f"got {expiry_time}"
        )

    vectors = int(expiry_time // rotate_interval)
    size = minimum_vector_size(expected_connections, target_p)
    hashes = max(1, min(max_hashes, round(optimal_hash_count(size, expected_connections))))
    predicted = penetration_probability(expected_connections, size, hashes)
    # Grow N until the integer-m prediction actually meets the target
    # (rounding m can spoil the bound at the marginal size).
    while predicted > target_p:
        size <<= 1
        hashes = max(1, min(max_hashes, round(optimal_hash_count(size, expected_connections))))
        predicted = penetration_probability(expected_connections, size, hashes)
    return ParameterRecommendation(
        size=size,
        vectors=vectors,
        hashes=hashes,
        rotate_interval=rotate_interval,
        expiry_time=vectors * rotate_interval,
        memory_bytes=vectors * size // 8,
        predicted_penetration=predicted,
        capacity=capacity_bound(size, target_p),
    )


def capacity_table(size: int, targets: Optional[List[float]] = None) -> List[dict]:
    """The section 5.1 worked example as data: capacity at several target
    penetration probabilities.  Defaults to the paper's 10 % / 5 % / 1 %."""
    rows = []
    for target in targets or [0.10, 0.05, 0.01]:
        rows.append(
            {
                "target_p": target,
                "capacity": capacity_bound(size, target),
                "optimal_m_at_capacity": optimal_hash_count(
                    size, max(1, int(capacity_bound(size, target)))
                ),
            }
        )
    return rows


def false_negative_bound(delay_cdf_at_te: float) -> float:
    """Upper bound on false negatives given the out-in delay CDF at T_e.

    "Only inbound packets with an out-in packet delay longer than the
    expiry timer T_e are filtered out" — so the false-negative rate is at
    most the complement of the delay CDF at ``T_e``.  (Section 3.3 measured
    CDF(3.61 s) = 99 %, hence < 1 % false negatives for T_e > 3.61 s.)
    """
    if not 0.0 <= delay_cdf_at_te <= 1.0:
        raise ValueError(f"CDF value out of [0,1]: {delay_cdf_at_te}")
    return 1.0 - delay_cdf_at_te


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
