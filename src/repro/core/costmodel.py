"""Analytical cost model — section 5.2 as equations.

The paper gives per-packet costs symbolically:

* outbound: ``O(m·t_h) + O(m·k·t_m)`` — m hash evaluations plus marking
  m bits in each of k vectors;
* inbound:  ``O(m·t_h) + O(m·t_c)`` — m hashes plus m bit tests in the
  current vector;
* rotate:   ``O(N)`` every Δt seconds (a memset of one vector).

This module turns those into throughput estimates for concrete hardware
parameters, answering the deployment question the paper waves at ("easy to
accelerate ... by using hardware coprocessors"): at what line rate does a
given implementation keep up?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitmap_filter import BitmapFilterConfig


@dataclass(frozen=True)
class HardwareProfile:
    """Cost constants of one implementation target (seconds per op)."""

    name: str
    hash_seconds: float  # t_h — one hash evaluation
    mark_seconds: float  # t_m — set one bit (incl. memory access)
    check_seconds: float  # t_c — test one bit
    memset_bytes_per_second: float  # bulk clear bandwidth

    def __post_init__(self) -> None:
        if min(self.hash_seconds, self.mark_seconds, self.check_seconds) <= 0:
            raise ValueError("per-op costs must be positive")
        if self.memset_bytes_per_second <= 0:
            raise ValueError("memset bandwidth must be positive")


#: Representative targets.  The software numbers are mid-2000s-era CPU
#: figures matching the paper's testbed class (a 3.2 GHz Xeon); the
#: hardware row models a modest pipeline with on-chip SRAM.
SOFTWARE_2006 = HardwareProfile(
    name="software (Xeon 3.2 GHz, DRAM)",
    hash_seconds=25e-9,
    mark_seconds=60e-9,  # cache-missing DRAM write
    check_seconds=60e-9,
    memset_bytes_per_second=2e9,
)
HARDWARE_ASIC = HardwareProfile(
    name="coprocessor (pipelined, SRAM)",
    hash_seconds=2e-9,
    mark_seconds=1.5e-9,
    check_seconds=1.5e-9,
    memset_bytes_per_second=50e9,
)


@dataclass
class CostEstimate:
    """Derived per-packet costs and sustainable rates."""

    outbound_seconds: float
    inbound_seconds: float
    rotate_seconds: float
    rotate_duty_cycle: float  # fraction of time spent rotating
    max_outbound_pps: float
    max_inbound_pps: float

    def line_rate_mbps(self, mean_packet_bytes: int = 700) -> float:
        """Sustainable line rate assuming the slower packet path."""
        pps = min(self.max_outbound_pps, self.max_inbound_pps)
        return pps * mean_packet_bytes * 8.0 / 1e6


def estimate(config: BitmapFilterConfig, hardware: HardwareProfile) -> CostEstimate:
    """Evaluate the section 5.2 cost expressions for a configuration."""
    m, k = config.hashes, config.vectors
    outbound = m * hardware.hash_seconds + m * k * hardware.mark_seconds
    inbound = m * hardware.hash_seconds + m * hardware.check_seconds
    rotate = (config.size / 8) / hardware.memset_bytes_per_second
    duty = rotate / config.rotate_interval
    # The rotation steals a slice of the packet budget.
    available = max(1e-12, 1.0 - duty)
    return CostEstimate(
        outbound_seconds=outbound,
        inbound_seconds=inbound,
        rotate_seconds=rotate,
        rotate_duty_cycle=duty,
        max_outbound_pps=available / outbound,
        max_inbound_pps=available / inbound,
    )


def supports_line_rate(
    config: BitmapFilterConfig,
    hardware: HardwareProfile,
    line_rate_mbps: float,
    mean_packet_bytes: int = 700,
) -> bool:
    """Can this config/hardware pair keep up with a given line rate?"""
    if line_rate_mbps <= 0 or mean_packet_bytes <= 0:
        raise ValueError("line rate and packet size must be positive")
    return estimate(config, hardware).line_rate_mbps(mean_packet_bytes) >= line_rate_mbps


def spi_lookup_seconds(
    flows: int,
    hash_seconds: float = 25e-9,
    probe_seconds: float = 60e-9,
    load_factor: float = 1.0,
) -> float:
    """Expected cost of one SPI hash-table lookup with chaining.

    The paper's complaint: "the data structures used to maintain these
    states are basically link-lists with an indexed hash table", so the
    expected chain walk grows with the load factor — and the *memory*
    grows with ``flows`` outright.
    """
    if flows < 0:
        raise ValueError(f"flows must be non-negative: {flows}")
    if load_factor <= 0:
        raise ValueError(f"load_factor must be positive: {load_factor}")
    expected_probes = 1.0 + load_factor / 2.0
    return hash_seconds + expected_probes * probe_seconds


def spi_memory_bytes(flows: int, bytes_per_flow: int = 320) -> int:
    """Conntrack-style state footprint (default: ip_conntrack-era entry)."""
    if flows < 0 or bytes_per_flow <= 0:
        raise ValueError("flows non-negative, bytes_per_flow positive")
    return flows * bytes_per_flow
