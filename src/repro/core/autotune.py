"""Adaptive drop control — "dynamically adjusted" P_d, section 4.2.

The paper fixes Equation 1's thresholds (L, H) by hand and notes the
probability "can be dynamically adjusted according to the upload bandwidth
throughput".  This module closes that loop: an operator states a *target*
uplink rate, and an integral controller moves the admission probability so
the measured uplink settles at the target — no threshold tuning.

The controller acts only on the admission decision for unmatched inbound
packets (the bitmap filter's P_d), never on matched traffic, preserving
the paper's selectivity property.
"""

from __future__ import annotations

from repro.core.dropper import DropPolicy


class TargetRateController(DropPolicy):
    """Integral controller steering P_d to hold a target uplink rate.

    Exposes the :class:`DropPolicy` interface so it drops into
    :class:`repro.filters.policy.DropController` anywhere a
    :class:`RedDropPolicy` would.  ``probability(throughput)`` both reads
    the current P_d and feeds the controller one observation, so calls
    must carry the live throughput measurement (as DropController does).

    Control law: ``P_d += gain · (b − target)/target`` per observation,
    clamped to [0, 1].  ``deadband`` (fraction of target) suppresses
    hunting around the setpoint.
    """

    def __init__(
        self,
        target_bps: float,
        gain: float = 0.02,
        deadband: float = 0.05,
        initial_probability: float = 0.0,
    ) -> None:
        if target_bps <= 0:
            raise ValueError(f"target must be positive: {target_bps}")
        if gain <= 0:
            raise ValueError(f"gain must be positive: {gain}")
        if not 0.0 <= deadband < 1.0:
            raise ValueError(f"deadband out of [0,1): {deadband}")
        if not 0.0 <= initial_probability <= 1.0:
            raise ValueError(f"initial probability out of [0,1]: {initial_probability}")
        self.target_bps = target_bps
        self.gain = gain
        self.deadband = deadband
        self._probability = initial_probability
        self.observations = 0

    @classmethod
    def mbps(cls, target_mbps: float, **kwargs) -> "TargetRateController":
        return cls(target_bps=target_mbps * 1e6, **kwargs)

    def probability(self, throughput: float) -> float:
        """One control step: observe ``throughput``, return updated P_d."""
        self.observations += 1
        error = (throughput - self.target_bps) / self.target_bps
        if abs(error) > self.deadband:
            self._probability = min(1.0, max(0.0, self._probability + self.gain * error))
        return self._probability

    @property
    def current_probability(self) -> float:
        """The controller state without feeding an observation."""
        return self._probability

    def reset(self, probability: float = 0.0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of [0,1]: {probability}")
        self._probability = probability
        self.observations = 0

    def snapshot(self) -> dict:
        return {
            "kind": "target-rate",
            "target_bps": self.target_bps,
            "gain": self.gain,
            "deadband": self.deadband,
            "probability": self._probability,
            "observations": self.observations,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "TargetRateController":
        controller = cls(
            target_bps=snapshot["target_bps"],
            gain=snapshot["gain"],
            deadband=snapshot["deadband"],
            initial_probability=snapshot["probability"],
        )
        controller.observations = snapshot["observations"]
        return controller

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TargetRateController(target={self.target_bps / 1e6:.1f} Mbps, "
            f"P_d={self._probability:.3f})"
        )
