"""A fixed-size bit vector backed by a single Python integer.

Each column of the {k×N}-bitmap is one bit vector (paper Figure 7).  A
Python ``int`` gives O(1) amortized set/test via shifts and masks, and —
crucially for ``b.rotate`` — a true O(1) *clear* (rebind to zero), which is
even cheaper than the paper's O(N) memset.  A ``bytearray`` variant is kept
for the memory-layout benchmarks in ``bench_sec52_performance``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

# Popcount of an arbitrary-width int.  ``int.bit_count`` (Python >= 3.10) is
# a C-level loop over the limbs; on 3.9 we fall back to counting set bits in
# fixed-size chunks serialized via ``to_bytes``, which avoids materializing
# the 2^20-character string ``bin(...)`` builds for a full vector.
_CHUNK_BITS = 1 << 14
_CHUNK_BYTES = _CHUNK_BITS // 8
_CHUNK_MASK = (1 << _CHUNK_BITS) - 1
_BYTE_POPCOUNT = bytes(bin(i).count("1") for i in range(256))

if hasattr(int, "bit_count"):  # pragma: no branch

    def popcount_int(value: int) -> int:
        """Number of set bits in a non-negative int."""
        return value.bit_count()

else:  # pragma: no cover - exercised on Python 3.9 only

    def popcount_int(value: int) -> int:
        """Number of set bits in a non-negative int (chunked fallback)."""
        return _popcount_fallback(value)


def _popcount_fallback(value: int) -> int:
    """Chunked-``to_bytes`` popcount, kept importable for tests/benchmarks."""
    table = _BYTE_POPCOUNT
    count = 0
    while value:
        chunk = value & _CHUNK_MASK
        value >>= _CHUNK_BITS
        count += sum(map(table.__getitem__, chunk.to_bytes(_CHUNK_BYTES, "little")))
    return count


class BitVector:
    """``size``-bit vector with set / test / clear and popcount."""

    __slots__ = ("size", "_bits")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self._bits = 0

    def set(self, index: int) -> None:
        """Mark bit ``index`` as 1."""
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        self._bits |= 1 << index

    def set_many(self, indices: Iterable[int]) -> None:
        mask = 0
        size = self.size
        for index in indices:
            if not 0 <= index < size:
                raise IndexError(f"bit {index} out of range [0, {size})")
            mask |= 1 << index
        self._bits |= mask

    def test(self, index: int) -> bool:
        """True when bit ``index`` is marked."""
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        return bool((self._bits >> index) & 1)

    def test_all(self, indices: Iterable[int]) -> bool:
        """True when *every* index is marked (the Bloom membership test)."""
        bits = self._bits
        for index in indices:
            if not (bits >> index) & 1:
                return False
        return True

    def clear(self) -> None:
        """Reset every bit to zero (``b.rotate``'s per-vector wipe)."""
        self._bits = 0

    def popcount(self) -> int:
        """Number of marked bits — the ``b`` of Equation 2's ``U = b/N``."""
        return popcount_int(self._bits)

    # -- word-level batch operations (the fast-path primitives) -------------

    def set_mask(self, mask: int) -> None:
        """OR a precomputed multi-bit mask in — one big-int op for a whole
        run of marks (``repro.sim.fastpath`` batches outbound packets into
        such masks between rotation boundaries)."""
        if mask >> self.size:
            raise IndexError(f"mask has bits beyond [0, {self.size})")
        self._bits |= mask

    def test_mask(self, mask: int) -> bool:
        """True when *every* bit of ``mask`` is marked — the Bloom
        membership test as a single word-level compare."""
        return self._bits & mask == mask

    @property
    def utilization(self) -> float:
        """Fraction of marked bits, ``U = b/N``."""
        return self.popcount() / self.size

    def copy(self) -> "BitVector":
        clone = BitVector(self.size)
        clone._bits = self._bits
        return clone

    def union_update(self, other: "BitVector") -> None:
        if other.size != self.size:
            raise ValueError("size mismatch")
        self._bits |= other._bits

    def to_bytes(self) -> bytes:
        """Little-endian byte serialization (for persistence/inspection)."""
        return self._bits.to_bytes((self.size + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, data: bytes, size: int) -> "BitVector":
        vector = cls(size)
        value = int.from_bytes(data, "little")
        if value >> size:
            raise ValueError("data has bits beyond the declared size")
        vector._bits = value
        return vector

    def iter_set_bits(self) -> Iterator[int]:
        """Yield the indices of marked bits in increasing order."""
        bits = self._bits
        index = 0
        while bits:
            if bits & 1:
                yield index
            bits >>= 1
            index += 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.size == other.size and self._bits == other._bits

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.size, self._bits))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover
        return f"BitVector(size={self.size}, popcount={self.popcount()})"


class ByteArrayBitVector:
    """The same interface backed by a ``bytearray``.

    This mirrors a C implementation's memory layout: clear really is an
    O(N) wipe, as the paper's complexity analysis (section 5.2) assumes.
    Used by the performance benchmarks to compare both layouts.
    """

    __slots__ = ("size", "_buf")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self._buf = bytearray((size + 7) // 8)

    def set(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        self._buf[index >> 3] |= 1 << (index & 7)

    def set_many(self, indices: Iterable[int]) -> None:
        for index in indices:
            self.set(index)

    def test(self, index: int) -> bool:
        if not 0 <= index < self.size:
            raise IndexError(f"bit {index} out of range [0, {self.size})")
        return bool(self._buf[index >> 3] & (1 << (index & 7)))

    def test_all(self, indices: Iterable[int]) -> bool:
        buf = self._buf
        for index in indices:
            if not buf[index >> 3] & (1 << (index & 7)):
                return False
        return True

    def clear(self) -> None:
        self._buf = bytearray(len(self._buf))

    def popcount(self) -> int:
        return sum(map(_BYTE_POPCOUNT.__getitem__, self._buf))

    @property
    def utilization(self) -> float:
        return self.popcount() / self.size

    def __len__(self) -> int:
        return self.size


def vector_stats(vectors: List[BitVector]) -> dict:
    """Summarize a stack of bit vectors (used in reports and debugging)."""
    if not vectors:
        raise ValueError("no vectors")
    pops = [vector.popcount() for vector in vectors]
    return {
        "count": len(vectors),
        "size": vectors[0].size,
        "popcounts": pops,
        "max_utilization": max(pops) / vectors[0].size,
        "min_utilization": min(pops) / vectors[0].size,
    }
