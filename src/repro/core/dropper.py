"""Drop-probability policies — Equation 1 and variants.

The paper generates the conditional drop probability ``P_d`` "in a similar
form to the random early detection (RED) algorithm": zero below a low
threshold ``L``, one above a high threshold ``H``, linear in between, driven
by the measured uplink throughput ``b``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple


class DropPolicy(ABC):
    """Maps an uplink-throughput indicator to a drop probability in [0, 1]."""

    @abstractmethod
    def probability(self, throughput: float) -> float:
        """``P_d`` for the given throughput (same units as the thresholds)."""

    @abstractmethod
    def snapshot(self) -> dict:
        """Serializable policy parameters (plain JSON-safe data)."""


def restore_policy(snapshot: dict) -> DropPolicy:
    """Rebuild any policy from its :meth:`DropPolicy.snapshot` output."""
    kind = snapshot.get("kind")
    if kind == "red":
        return RedDropPolicy(low=snapshot["low"], high=snapshot["high"])
    if kind == "static":
        return StaticDropPolicy(snapshot["probability"])
    if kind == "stepped":
        return SteppedDropPolicy(
            [(threshold, probability)
             for threshold, probability in snapshot["steps"]]
        )
    if kind == "target-rate":
        from repro.core.autotune import TargetRateController

        return TargetRateController.restore(snapshot)
    raise ValueError(f"unknown drop-policy snapshot kind: {kind!r}")


class RedDropPolicy(DropPolicy):
    """Equation 1: RED-style linear ramp between ``low`` and ``high``.

    ::

        P_d = 0                    if b <= L
        P_d = (b - L) / (H - L)    if L < b < H
        P_d = 1                    if b >= H
    """

    def __init__(self, low: float, high: float) -> None:
        if low < 0:
            raise ValueError(f"low threshold must be non-negative, got {low}")
        if high <= low:
            raise ValueError(f"need high > low, got low={low}, high={high}")
        self.low = low
        self.high = high

    def probability(self, throughput: float) -> float:
        if throughput <= self.low:
            return 0.0
        if throughput >= self.high:
            return 1.0
        return (throughput - self.low) / (self.high - self.low)

    def snapshot(self) -> dict:
        return {"kind": "red", "low": self.low, "high": self.high}

    def __repr__(self) -> str:  # pragma: no cover
        return f"RedDropPolicy(low={self.low}, high={self.high})"


class StaticDropPolicy(DropPolicy):
    """A constant ``P_d`` regardless of throughput.

    ``StaticDropPolicy(1.0)`` reproduces the Figure 8 configuration:
    "drop all inbound packets without states".
    """

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of [0,1]: {probability}")
        self._probability = probability

    def probability(self, throughput: float) -> float:
        return self._probability

    def snapshot(self) -> dict:
        return {"kind": "static", "probability": self._probability}

    def __repr__(self) -> str:  # pragma: no cover
        return f"StaticDropPolicy({self._probability})"


class SteppedDropPolicy(DropPolicy):
    """A piecewise-constant schedule: ``[(threshold, P_d), ...]``.

    The probability of the highest threshold not exceeding the throughput
    applies; below the first threshold ``P_d = 0``.  An operator-friendly
    alternative the paper's "can be dynamically adjusted" remark allows.
    """

    def __init__(self, steps: List[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("need at least one step")
        # Thresholds must be *strictly* increasing.  Comparing whole
        # (threshold, probability) tuples against their sorted order would
        # tie-break equal thresholds on the probability value, so duplicate
        # thresholds could pass or fail depending on probability order —
        # and a duplicate threshold is ambiguous either way (which P_d
        # applies at exactly that throughput?).
        thresholds = [threshold for threshold, _ in steps]
        for previous, current in zip(thresholds, thresholds[1:]):
            if current <= previous:
                raise ValueError(
                    "step thresholds must be strictly increasing, got "
                    f"{previous} before {current}"
                )
        for threshold, probability in steps:
            if threshold < 0:
                raise ValueError(f"negative threshold: {threshold}")
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"probability out of [0,1]: {probability}")
        self.steps = steps

    def probability(self, throughput: float) -> float:
        current = 0.0
        for threshold, probability in self.steps:
            if throughput >= threshold:
                current = probability
            else:
                break
        return current

    def snapshot(self) -> dict:
        return {"kind": "stepped",
                "steps": [[threshold, probability]
                          for threshold, probability in self.steps]}

    def __repr__(self) -> str:  # pragma: no cover
        return f"SteppedDropPolicy({self.steps})"
