"""Counting Bloom filter — a deletion-capable variant of the substrate.

The rotating-bitmap design expires entries purely by time.  But the edge
router *does* see TCP FIN/RST flags in headers (no payload inspection
required), so an extension of the paper's design can delete a connection's
entry the moment it closes instead of waiting out T_e.  Deletion needs
counters instead of bits: this module provides the classic 4-bit-counter
counting Bloom filter (Fan et al., "Summary Cache", 1998-style).

Trade-off quantified in ``bench_ext_counting.py``: 4 bits per cell means
4× the memory of a plain bit vector at equal N, and deletions are only
safe for pairs that were actually added (removing a never-added key can
corrupt other entries — callers must guard, as :class:`repro.filters`
users do by only deleting on FIN for pairs they saw outbound).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.core.hashing import make_hash_family

Key = Union[bytes, Sequence[int]]

#: Counters saturate at this value and stop changing (standard practice:
#: a saturated cell can never be safely decremented).
COUNTER_MAX = 15


class CountingBloomFilter:
    """Approximate multiset membership with add / remove / contains.

    Cells are 4-bit saturating counters packed two per byte.
    """

    def __init__(self, size: int, hashes: int, seed: int = 0) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"size must be a power of two, got {size}")
        self.size = size
        self.family = make_hash_family(hashes, size, seed=seed)
        self._cells = bytearray(size // 2 + (size & 1))
        self.added = 0
        self.removed = 0
        self.saturations = 0

    @property
    def hashes(self) -> int:
        return self.family.m

    @property
    def memory_bytes(self) -> int:
        return len(self._cells)

    def _indices(self, key: Key) -> Iterable[int]:
        if isinstance(key, (bytes, bytearray)):
            return self.family.indices_bytes(bytes(key))
        return self.family.indices(key)

    def _get(self, index: int) -> int:
        byte = self._cells[index >> 1]
        return (byte >> 4) if index & 1 else (byte & 0x0F)

    def _set(self, index: int, value: int) -> None:
        position = index >> 1
        byte = self._cells[position]
        if index & 1:
            self._cells[position] = (byte & 0x0F) | (value << 4)
        else:
            self._cells[position] = (byte & 0xF0) | value

    def add(self, key: Key) -> None:
        """Increment all cells of ``key`` (saturating)."""
        for index in self._indices(key):
            count = self._get(index)
            if count < COUNTER_MAX:
                self._set(index, count + 1)
            else:
                self.saturations += 1
        self.added += 1

    def remove(self, key: Key) -> bool:
        """Decrement all cells of ``key``; returns False (and does
        nothing) if the key is not currently a member.

        Saturated cells are left untouched — the standard safe rule, which
        can strand entries but never corrupts others.
        """
        indices = list(self._indices(key))
        if not all(self._get(index) > 0 for index in indices):
            return False
        for index in indices:
            count = self._get(index)
            if count < COUNTER_MAX:
                self._set(index, count - 1)
        self.removed += 1
        return True

    def __contains__(self, key: Key) -> bool:
        return all(self._get(index) > 0 for index in self._indices(key))

    def clear(self) -> None:
        self._cells[:] = bytes(len(self._cells))
        self.added = 0
        self.removed = 0
        self.saturations = 0

    @property
    def utilization(self) -> float:
        """Fraction of non-zero cells (the analogue of ``U = b/N``)."""
        nonzero = sum(
            ((byte & 0x0F) > 0) + ((byte >> 4) > 0) for byte in self._cells
        )
        return nonzero / self.size

    def false_positive_rate(self) -> float:
        """``U^m`` with the measured utilization, as in Equation 2."""
        return self.utilization ** self.hashes

    def __len__(self) -> int:
        return max(0, self.added - self.removed)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CountingBloomFilter(size={self.size}, hashes={self.hashes}, "
            f"live≈{len(self)}, utilization={self.utilization:.4f})"
        )
