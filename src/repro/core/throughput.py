"""Uplink-throughput estimators.

The drop probability of Equation 1 is driven by "an indicator of upload
bandwidth throughput b", which the paper notes "is an essential component
in off-the-shelf network devices".  Two standard estimators are provided:
a sliding-window byte counter (exact average over the last W seconds) and
an exponentially-weighted moving average (constant memory).
Both report bits per second.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Optional, Tuple


class ThroughputMeter(ABC):
    """Feed (timestamp, bytes) observations; read back bits/second."""

    @abstractmethod
    def record(self, timestamp: float, size_bytes: int) -> None:
        """Account one packet of ``size_bytes`` at ``timestamp`` seconds."""

    @abstractmethod
    def rate_bps(self, now: float) -> float:
        """Estimated throughput in bits/second as of ``now``."""

    @abstractmethod
    def snapshot(self) -> dict:
        """Serializable estimator state (plain ints/floats/lists, JSON-safe).

        A restarted edge-filter service must resume with the *exact* rate
        estimate it shut down with — ``P_d`` is a function of this state,
        so verdict-for-verdict warm restart needs it byte-exact.
        """


def restore_meter(snapshot: dict) -> ThroughputMeter:
    """Rebuild any meter from its :meth:`ThroughputMeter.snapshot` output."""
    kind = snapshot.get("kind")
    if kind == "sliding-window":
        return SlidingWindowMeter.restore(snapshot)
    if kind == "ewma":
        return EwmaThroughputMeter.restore(snapshot)
    raise ValueError(f"unknown meter snapshot kind: {kind!r}")


class SlidingWindowMeter(ThroughputMeter):
    """Exact byte count over a trailing window of ``window`` seconds.

    Stores one (timestamp, bytes) entry per packet inside the window;
    memory is bounded by window length times packet rate.  This is the
    estimator used by the evaluation benchmarks because it is exact and
    deterministic.
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._entries: Deque[Tuple[float, int]] = deque()
        self._total_bytes = 0
        self._first_time: Optional[float] = None

    def record(self, timestamp: float, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"negative size: {size_bytes}")
        if self._first_time is None:
            self._first_time = timestamp
        self._entries.append((timestamp, size_bytes))
        self._total_bytes += size_bytes
        self._evict(timestamp)

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        entries = self._entries
        while entries and entries[0][0] < horizon:
            _, size = entries.popleft()
            self._total_bytes -= size

    def rate_bps(self, now: float) -> float:
        self._evict(now)
        if self._first_time is None:
            return 0.0
        # During warm-up (less than ``window`` seconds observed) divide by
        # the elapsed span, not the full window — otherwise early traffic is
        # averaged against time that never happened and P_d stays 0 until a
        # whole window has passed.  With zero elapsed time there is no span
        # to average over yet; fall back to the full window rather than
        # report an infinite rate off a single packet.
        elapsed = now - self._first_time
        span = min(self.window, elapsed) if elapsed > 0 else self.window
        return self._total_bytes * 8.0 / span

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict:
        return {
            "kind": "sliding-window",
            "window": self.window,
            "entries": [[timestamp, size] for timestamp, size in self._entries],
            "first_time": self._first_time,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "SlidingWindowMeter":
        meter = cls(window=snapshot["window"])
        for timestamp, size in snapshot["entries"]:
            meter._entries.append((timestamp, size))
            meter._total_bytes += size
        meter._first_time = snapshot["first_time"]
        return meter


class EwmaThroughputMeter(ThroughputMeter):
    """Constant-memory EWMA rate estimator.

    The instantaneous rate sample between consecutive packets is blended
    with weight ``1 - exp(-gap/tau)``; a longer ``tau`` smooths harder.
    This matches what cheap hardware counters actually implement and is
    what a production deployment would use.
    """

    def __init__(self, tau: float = 2.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self._rate_bps = 0.0
        self._last_time: float = math.nan

    def record(self, timestamp: float, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"negative size: {size_bytes}")
        if math.isnan(self._last_time):
            # Seed from the anchor packet instead of discarding its bytes:
            # treat it as the only traffic of the last ``tau`` seconds so a
            # single-packet burst registers a non-zero rate immediately.
            self._last_time = timestamp
            self._rate_bps = size_bytes * 8.0 / self.tau
            return
        gap = timestamp - self._last_time
        if gap <= 0:
            # Same-instant burst: fold bytes in as if over a tiny interval.
            gap = 1e-6
        sample = size_bytes * 8.0 / gap
        alpha = 1.0 - math.exp(-gap / self.tau)
        self._rate_bps += alpha * (sample - self._rate_bps)
        self._last_time = timestamp

    def rate_bps(self, now: float) -> float:
        if math.isnan(self._last_time):
            return 0.0
        gap = now - self._last_time
        if gap <= 0:
            return self._rate_bps
        # Decay toward zero during silence.
        return self._rate_bps * math.exp(-gap / self.tau)

    def snapshot(self) -> dict:
        return {
            "kind": "ewma",
            "tau": self.tau,
            "rate_bps": self._rate_bps,
            # NaN is not valid JSON; the unseeded state travels as None.
            "last_time": None if math.isnan(self._last_time) else self._last_time,
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "EwmaThroughputMeter":
        meter = cls(tau=snapshot["tau"])
        meter._rate_bps = snapshot["rate_bps"]
        last = snapshot["last_time"]
        meter._last_time = math.nan if last is None else last
        return meter


def mbps(bits_per_second: float) -> float:
    """Convert bits/second to megabits/second (the paper's unit)."""
    return bits_per_second / 1e6


def from_mbps(megabits_per_second: float) -> float:
    """Convert megabits/second to bits/second."""
    return megabits_per_second * 1e6
