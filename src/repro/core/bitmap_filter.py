"""The {k×N}-bitmap filter — the paper's core contribution (section 4).

Structure (Figure 7): ``k`` bit vectors of ``N = 2^n`` bits sharing ``m``
hash functions.

* **mark** (outbound packet): hash the outbound socket pair and set the
  resulting ``m`` bits in *all* ``k`` vectors (Algorithm 2, lines 1-5).
* **look up** (inbound packet): hash the *inverse* of the inbound socket
  pair and test the bits in the *current* vector only (lines 6-15); a miss
  means the packet is dropped with probability ``P_d``.
* **clean up** (``b.rotate``, Algorithm 1): every ``Δt`` seconds advance the
  current index and wipe the vector it left behind.

Because a mark touches all vectors and the current vector is wiped last
(k rotations after the mark), a marked pair stays visible for between
``(k-1)·Δt`` and ``k·Δt`` seconds — the effective expiry timer
``T_e = k·Δt`` of section 4.3.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.bitvector import BitVector
from repro.core.hashing import make_hash_family
from repro.net.packet import Direction, SocketPair


class FieldMode(enum.Enum):
    """Which socket-pair fields feed the hash functions.

    ``HOLE_PUNCHING`` (the paper's default suggestion) omits the *remote
    port*: outbound packets hash ``{protocol, source-address, source-port,
    destination-address}`` and inbound packets hash ``{protocol,
    destination-address, destination-port, source-address}``.  An outbound
    packet to peer P therefore opens the door for inbound packets from *any
    port* of P — which is exactly what NAT hole-punching needs.

    ``STRICT`` hashes the full five-tuple; only exact reverse-path packets
    match.  "The support to hole-punching can be enabled or disabled
    depending on the network administrator's choice."
    """

    STRICT = "strict"
    HOLE_PUNCHING = "hole-punching"


@dataclass
class BitmapFilterConfig:
    """Parameters of a bitmap filter (section 4.3 naming).

    The paper's evaluation configuration is the default: ``N = 2^20``,
    ``k = 4``, ``Δt = 5`` s (so ``T_e = 20`` s), ``m = 3``.
    """

    size: int = 2 ** 20  # N — bits per vector, must be a power of two
    vectors: int = 4  # k — number of bit vectors
    hashes: int = 3  # m — hash functions
    rotate_interval: float = 5.0  # Δt — seconds between b.rotate calls
    field_mode: FieldMode = FieldMode.STRICT
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size & (self.size - 1):
            raise ValueError(f"N must be a power of two, got {self.size}")
        if self.vectors < 2:
            raise ValueError(f"need k >= 2 vectors, got {self.vectors}")
        if self.hashes < 1:
            raise ValueError(f"need m >= 1 hash functions, got {self.hashes}")
        if self.rotate_interval <= 0:
            raise ValueError(f"Δt must be positive, got {self.rotate_interval}")

    @property
    def expiry_time(self) -> float:
        """T_e = k·Δt — how long a marked pair is guaranteed-ish visible."""
        return self.vectors * self.rotate_interval

    @property
    def memory_bytes(self) -> int:
        """Total bitmap storage, ``k·N/8`` bytes (512 KiB at defaults)."""
        return self.vectors * self.size // 8


@dataclass
class BitmapFilterStats:
    """Operation counters, useful for reports and invariant tests."""

    outbound_marked: int = 0
    inbound_hits: int = 0
    inbound_misses: int = 0
    inbound_dropped: int = 0
    rotations: int = 0

    @property
    def inbound_total(self) -> int:
        return self.inbound_hits + self.inbound_misses

    def as_dict(self) -> dict:
        return {
            "outbound_marked": self.outbound_marked,
            "inbound_hits": self.inbound_hits,
            "inbound_misses": self.inbound_misses,
            "inbound_dropped": self.inbound_dropped,
            "rotations": self.rotations,
        }

    def merge(self, other: "BitmapFilterStats") -> "BitmapFilterStats":
        """Accumulate another counter record into this one (in place)."""
        self.outbound_marked += other.outbound_marked
        self.inbound_hits += other.inbound_hits
        self.inbound_misses += other.inbound_misses
        self.inbound_dropped += other.inbound_dropped
        self.rotations += other.rotations
        return self

    def __add__(self, other: "BitmapFilterStats") -> "BitmapFilterStats":
        return BitmapFilterStats().merge(self).merge(other)


class BitmapFilter:
    """The {k×N}-bitmap filter state machine.

    This class is deliberately clock-free: callers drive rotation either
    directly (:meth:`rotate`) or by timestamp (:meth:`advance_to`), so the
    same object serves live operation, trace replay and unit tests.
    Dropping randomness comes from an injectable :class:`random.Random` for
    reproducibility.
    """

    def __init__(
        self,
        config: Optional[BitmapFilterConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or BitmapFilterConfig()
        self.vectors: List[BitVector] = [
            BitVector(self.config.size) for _ in range(self.config.vectors)
        ]
        self.family = make_hash_family(
            self.config.hashes, self.config.size, seed=self.config.seed
        )
        self.idx = 0  # index of the *current* bit vector
        self.stats = BitmapFilterStats()
        self._rng = rng or random.Random(self.config.seed)
        self._next_rotation: Optional[float] = None
        # Rotation phase (offset of the schedule within Δt) carried over
        # from a restored snapshot; consumed by the first advance_to call.
        self._restored_phase: Optional[float] = None

    # ------------------------------------------------------------------
    # Field selection (section 4.2, hole-punching discussion)
    # ------------------------------------------------------------------

    def _key_fields(self, pair: SocketPair, direction: Direction) -> Tuple[int, ...]:
        """Map a packet's socket pair to hash-input fields.

        For inbound packets the paper hashes the *inverse* pair, which in
        hole-punching mode is {protocol, destination-address,
        destination-port, source-address} of the inbound packet — i.e. the
        inner host's address/port plus the remote address.  Writing both
        branches in terms of the *outbound-oriented* pair keeps them
        symmetric: inbound packets are inverted first.
        """
        if direction is Direction.INBOUND:
            pair = pair.inverse
        if self.config.field_mode is FieldMode.HOLE_PUNCHING:
            return (pair.protocol, pair.src_addr, pair.src_port, pair.dst_addr)
        return (
            pair.protocol,
            pair.src_addr,
            pair.src_port,
            pair.dst_addr,
            pair.dst_port,
        )

    # ------------------------------------------------------------------
    # Algorithm 1 — b.rotate
    # ------------------------------------------------------------------

    def rotate(self) -> int:
        """Advance the current index and wipe the vector it vacates.

        Returns the new current index, exactly as Algorithm 1 does.
        """
        last = self.idx
        self.idx = (self.idx + 1) % self.config.vectors
        self.vectors[last].clear()
        self.stats.rotations += 1
        return self.idx

    def advance_to(self, now: float) -> int:
        """Run however many rotations a wall-clock time implies.

        The first call anchors the rotation schedule; later calls perform
        ``floor((now - anchor)/Δt)`` pending rotations.  Returns how many
        rotations ran.  Time never goes backwards; stale timestamps are
        ignored rather than raising, because replayed traces can carry
        slight reordering.

        After :meth:`restore` the schedule is re-anchored here: the first
        timestamp seen rebases the restored rotation *phase* onto the new
        clock, so a replay whose clock restarted near zero keeps rotating
        every Δt instead of waiting out the old-timestamp gap.
        """
        if self._next_rotation is None:
            interval = self.config.rotate_interval
            if self._restored_phase is not None:
                delta = (self._restored_phase - now) % interval
                self._next_rotation = now + (delta if delta > 0 else interval)
                self._restored_phase = None
            else:
                self._next_rotation = now + interval
            return 0
        ran = 0
        while now >= self._next_rotation:
            self.rotate()
            self._next_rotation += self.config.rotate_interval
            ran += 1
        return ran

    # ------------------------------------------------------------------
    # Algorithm 2 — b.filter
    # ------------------------------------------------------------------

    def mark_outbound(self, pair: SocketPair) -> None:
        """Record an outbound packet: set its bits in *all* vectors."""
        indices = self.family.indices(self._key_fields(pair, Direction.OUTBOUND))
        for vector in self.vectors:
            vector.set_many(indices)
        self.stats.outbound_marked += 1

    def lookup_inbound(self, pair: SocketPair) -> bool:
        """Test an inbound packet against the *current* vector only."""
        indices = self.family.indices(self._key_fields(pair, Direction.INBOUND))
        hit = self.vectors[self.idx].test_all(indices)
        if hit:
            self.stats.inbound_hits += 1
        else:
            self.stats.inbound_misses += 1
        return hit

    def filter(
        self, pair: SocketPair, direction: Direction, drop_probability: float = 1.0
    ) -> bool:
        """The full b.filter decision: True = PASS, False = DROP.

        Outbound packets are marked and always pass.  Inbound packets that
        miss the current vector are dropped with ``drop_probability``
        (the paper's ``P_d``); in the paper's pseudocode the coin is
        tossed once per missing bit, but since one miss suffices to reach
        the coin and subsequent misses change nothing once dropped, a
        single toss per packet is behaviourally identical and cheaper.
        """
        if direction is Direction.OUTBOUND:
            self.mark_outbound(pair)
            return True
        if self.lookup_inbound(pair):
            return True
        if drop_probability >= 1.0 or self._rng.random() < drop_probability:
            self.stats.inbound_dropped += 1
            return False
        return True

    # ------------------------------------------------------------------
    # Batched Algorithm 2 — the replay fast path
    # ------------------------------------------------------------------

    def process_batch(
        self,
        timestamps: Sequence[float],
        outbound: Sequence[bool],
        indices_seq: Sequence[Sequence[int]],
        drop_probability: float = 1.0,
        drop_probabilities: Optional[Sequence[float]] = None,
    ) -> List[bool]:
        """Filter a whole batch of packets; True = PASS, False = DROP.

        Semantically identical to calling :meth:`advance_to` followed by
        :meth:`filter` once per packet (same verdicts, same stats, same
        RNG consumption), but engineered for throughput:

        * the ``k`` vectors are staged as ``bytearray``s for the duration
          of the batch, so each mark/test is a handful of O(1) byte ops
          instead of big-int shifts that touch all ``N`` bits;
        * hash indices arrive precomputed (``indices_seq``, e.g. from
          :class:`repro.core.hashing.HashIndexMemo`), so repeated flows
          hash once;
        * rotation is the only ordering constraint, so everything between
          two rotation boundaries runs inside one tight chunk with all
          state in locals.

        ``drop_probabilities`` optionally supplies a per-packet ``P_d``
        (positions for outbound packets are ignored); otherwise the scalar
        ``drop_probability`` applies to every inbound miss.
        """
        total = len(timestamps)
        verdicts: List[bool] = []
        if total == 0:
            return verdicts
        config = self.config
        k = config.vectors
        nbytes = (config.size + 7) // 8
        bufs = [bytearray(vector.to_bytes()) for vector in self.vectors]
        stats = self.stats
        rng_random = self._rng.random
        append = verdicts.append
        marked = hits = misses = dropped = 0

        position = 0
        while position < total:
            now = timestamps[position]
            next_rotation = self._next_rotation
            if next_rotation is None or now >= next_rotation:
                vacated = self.idx
                ran = self.advance_to(now)
                if ran >= k:
                    bufs = [bytearray(nbytes) for _ in range(k)]
                else:
                    for step in range(ran):
                        bufs[(vacated + step) % k] = bytearray(nbytes)
                next_rotation = self._next_rotation
            current = bufs[self.idx]

            # One rotation-free chunk: marks and tests against fixed vectors.
            while position < total:
                now = timestamps[position]
                if now >= next_rotation:
                    break
                indices = indices_seq[position]
                if outbound[position]:
                    for index in indices:
                        byte = index >> 3
                        bit = 1 << (index & 7)
                        for buf in bufs:
                            buf[byte] |= bit
                    marked += 1
                    append(True)
                else:
                    hit = True
                    for index in indices:
                        if not current[index >> 3] & (1 << (index & 7)):
                            hit = False
                            break
                    if hit:
                        hits += 1
                        append(True)
                    else:
                        misses += 1
                        probability = (
                            drop_probabilities[position]
                            if drop_probabilities is not None
                            else drop_probability
                        )
                        if probability >= 1.0 or rng_random() < probability:
                            dropped += 1
                            append(False)
                        else:
                            append(True)
                position += 1

        for vector, buf in zip(self.vectors, bufs):
            vector._bits = int.from_bytes(buf, "little")
        stats.outbound_marked += marked
        stats.inbound_hits += hits
        stats.inbound_misses += misses
        stats.inbound_dropped += dropped
        return verdicts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def current_utilization(self) -> float:
        """U = b/N of the current vector (drives Equation 2)."""
        return self.vectors[self.idx].utilization

    def penetration_probability(self) -> float:
        """Measured p = U^m for a random (unmarked) inbound pair."""
        return self.current_utilization ** self.config.hashes

    def reset(self) -> None:
        """Clear all state (bits, index, schedule, stats)."""
        for vector in self.vectors:
            vector.clear()
        self.idx = 0
        self.stats = BitmapFilterStats()
        self._next_rotation = None
        self._restored_phase = None

    # ------------------------------------------------------------------
    # Persistence — restart the filter without losing the positive list
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable filter state (config + bits + rotation clock + RNG).

        A router restart with a cold filter would drop every in-flight
        connection's return traffic for up to T_e seconds; restoring a
        snapshot avoids that.  The snapshot is plain data (ints/bytes),
        safe for json/pickle/msgpack as the deployment prefers.

        Rotation state is stored twice, for the two restart scenarios:

        * ``rotation_phase`` — the schedule's offset within Δt, for
          restoring onto a *new* clock (a fresh replay, a rebooted router
          whose epoch restarted): an absolute time far in the future would
          silently suppress rotation until the new clock caught up.
        * ``next_rotation`` — the absolute next-rotation time, for a warm
          restart that *continues the same clock* (the live service
          plane): rotations due in the snapshot→restart gap must still
          fire, and re-deriving the anchor from the phase would skip them.

        The drop RNG's state rides along (as plain ints) so a warm
        restart resumes the exact random sequence — without it, verdicts
        under a fractional ``P_d`` diverge from an uninterrupted run.
        """
        if self._next_rotation is not None:
            phase: Optional[float] = self._next_rotation % self.config.rotate_interval
        else:
            phase = self._restored_phase
        version, internal, gauss = self._rng.getstate()
        return {
            "size": self.config.size,
            "vectors": self.config.vectors,
            "hashes": self.config.hashes,
            "rotate_interval": self.config.rotate_interval,
            "field_mode": self.config.field_mode.value,
            "seed": self.config.seed,
            "idx": self.idx,
            "rotation_phase": phase,
            "next_rotation": self._next_rotation,
            "rng_state": [version, list(internal), gauss],
            "stats": self.stats.as_dict(),
            "bits": [vector.to_bytes() for vector in self.vectors],
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict,
        rng: Optional[random.Random] = None,
        clock: str = "reanchor",
    ) -> "BitmapFilter":
        """Rebuild a filter from :meth:`snapshot` output.

        The hash seed is part of the snapshot — bits are meaningless under
        a different hash family.

        ``clock`` selects how the rotation schedule restarts:

        * ``"reanchor"`` (default) — keep only the phase within Δt; the
          first :meth:`advance_to` rebases the schedule onto the new
          clock.  Right for restoring old state into a replay or reboot
          whose timestamps restarted.
        * ``"resume"`` — keep the absolute next-rotation time; rotations
          that fell due between snapshot and restart fire on the next
          :meth:`advance_to`, exactly as an uninterrupted filter's would.
          Right for the warm-restart path of a live service whose clock
          (trace time or epoch time) continues.  Requires a snapshot
          carrying ``next_rotation``; older phase-only snapshots fall
          back to re-anchoring.

        When the snapshot carries the drop RNG's state and no explicit
        ``rng`` is given, the restored filter resumes the exact random
        sequence of the snapshotted one.
        """
        if clock not in ("reanchor", "resume"):
            raise ValueError(f"unknown restore clock mode: {clock!r}")
        config = BitmapFilterConfig(
            size=snapshot["size"],
            vectors=snapshot["vectors"],
            hashes=snapshot["hashes"],
            rotate_interval=snapshot["rotate_interval"],
            field_mode=FieldMode(snapshot["field_mode"]),
            seed=snapshot["seed"],
        )
        filt = cls(config, rng=rng)
        if len(snapshot["bits"]) != config.vectors:
            raise ValueError(
                f"snapshot has {len(snapshot['bits'])} vectors, config says "
                f"{config.vectors}"
            )
        filt.vectors = [
            BitVector.from_bytes(data, config.size) for data in snapshot["bits"]
        ]
        filt.idx = snapshot["idx"]
        if not 0 <= filt.idx < config.vectors:
            raise ValueError(f"snapshot index out of range: {filt.idx}")
        if rng is None and snapshot.get("rng_state") is not None:
            version, internal, gauss = snapshot["rng_state"]
            # JSON round-trips tuples as lists; setstate wants tuples back.
            filt._rng.setstate((version, tuple(internal), gauss))
        if snapshot.get("stats") is not None:
            filt.stats = BitmapFilterStats(**snapshot["stats"])
        absolute = snapshot.get("next_rotation")
        if clock == "resume" and absolute is not None:
            filt._next_rotation = absolute
            filt._restored_phase = None
            return filt
        if "rotation_phase" in snapshot:
            phase = snapshot["rotation_phase"]
        else:
            # Legacy snapshots stored only the absolute next-rotation time;
            # reduce it to its phase so old state restores correctly too.
            phase = None if absolute is None else absolute % config.rotate_interval
        filt._next_rotation = None
        filt._restored_phase = phase
        return filt

    def set_rotate_interval(self, interval: float, now: Optional[float] = None) -> None:
        """Live-reconfigure Δt, re-anchoring the rotation schedule.

        The next rotation fires one *new* interval after ``now`` (the last
        trace time the caller has seen); later rotations follow the new
        period.  An unanchored filter (no packet seen yet) simply adopts
        the new interval — its first :meth:`advance_to` anchors as usual.
        A pending restored phase is discarded: a phase expressed in old-Δt
        units is meaningless under the new period.
        """
        if interval <= 0:
            raise ValueError(f"Δt must be positive, got {interval}")
        self.config.rotate_interval = interval
        self._restored_phase = None
        if self._next_rotation is not None:
            if now is None:
                raise ValueError(
                    "an anchored rotation schedule needs `now` to re-anchor"
                )
            self._next_rotation = now + interval

    def __repr__(self) -> str:  # pragma: no cover
        cfg = self.config
        return (
            f"BitmapFilter(N=2^{cfg.size.bit_length() - 1}, k={cfg.vectors}, "
            f"m={cfg.hashes}, Δt={cfg.rotate_interval}, idx={self.idx})"
        )
