"""Hash families for the bitmap filter.

The paper requires ``m`` hash functions that "should only output an n-bit
value.  An output that exceeds n-bit should be truncated."  We provide a
family built from double hashing (Kirsch & Mitzenmacher: two independent
base hashes combine into arbitrarily many), with FNV-1a and a multiply-shift
mix as the bases.  Double hashing preserves Bloom-filter false-positive
asymptotics while costing two real hash evaluations per key regardless of
``m`` — important because the filter runs per packet.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Sequence, Tuple

#: 64-bit FNV-1a offset basis — also the seed (and hence the empty value)
#: of the replay layer's running verdict fingerprint.
FNV64_OFFSET = 0xCBF29CE484222325
_FNV_OFFSET = FNV64_OFFSET
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

# Odd 64-bit constants for the multiply-shift mixer (splitmix64 finalizer).
_MIX_MUL1 = 0xBF58476D1CE4E5B9
_MIX_MUL2 = 0x94D049BB133111EB


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a over ``data``, optionally seeded."""
    value = (_FNV_OFFSET ^ seed) & _MASK64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-distributed 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * _MIX_MUL1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX_MUL2) & _MASK64
    return value ^ (value >> 31)


def derive_seed(seed: int, index: int) -> int:
    """Derive an independent per-stream RNG seed from ``(seed, index)``.

    The obvious ``(seed << k) ^ index`` layout collides as soon as
    ``index`` outgrows ``k`` bits — e.g. ``(7 << 20) ^ 2**20`` equals
    ``(6 << 20) ^ 0`` — silently reusing RNG streams across connections
    in large traces.  Running both inputs through the splitmix64 bijection
    keeps distinct ``index`` values collision-free under one ``seed`` and
    makes cross-seed collisions statistically negligible instead of
    structural.
    """
    return splitmix64(splitmix64(seed) ^ index)


def mix_tuple(fields: Sequence[int], seed: int = 0) -> int:
    """Hash a tuple of integers (socket-pair fields) to 64 bits.

    This is the hot path: the bitmap filter hashes four or five small
    integers per packet.  Avoiding byte-string construction keeps it cheap.
    """
    value = splitmix64(seed ^ 0x2545F4914F6CDD1D)
    for field in fields:
        value = splitmix64(value ^ field)
    return value


def _numpy():
    """The numpy module when columnar acceleration is enabled, else None.

    Honors the same switch as :mod:`repro.net.table` (tests flip
    ``table._use_numpy`` to pin the stdlib path), read lazily so flipping
    it mid-process takes effect immediately.
    """
    from repro.net import table as _table

    return _table._np if _table._np_enabled() else None


def _mix_tuple_np(np, columns, seed: int):
    """Vectorized :func:`mix_tuple` over uint64 field columns.

    ``columns`` is a 2-D uint64 array, one row per key.  Bit-identical to
    the scalar form: uint64 arithmetic wraps exactly like ``& _MASK64``,
    and XOR/shift/multiply commute with the truncation.
    """
    n = columns.shape[0]
    value = np.full(n, splitmix64(seed ^ 0x2545F4914F6CDD1D), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in range(columns.shape[1]):
            v = value ^ columns[:, column]
            v = (v + np.uint64(0x9E3779B97F4A7C15))
            v = (v ^ (v >> np.uint64(30))) * np.uint64(_MIX_MUL1)
            v = (v ^ (v >> np.uint64(27))) * np.uint64(_MIX_MUL2)
            value = v ^ (v >> np.uint64(31))
    return value


#: Below this many keys, numpy array setup costs more than it saves.
_NP_MIN_KEYS = 32


def _key_matrix(np, keys):
    """``keys`` as an (n, width) uint64 matrix, or None when ragged."""
    try:
        columns = np.asarray(keys, dtype=np.uint64)
    except (TypeError, ValueError, OverflowError):
        return None  # mixed key widths (strict + hole-punching) or non-ints
    if columns.ndim != 2:
        return None
    return columns


class HashFamily:
    """``m`` n-bit hash functions derived from two base hashes.

    ``indices(fields)`` returns the ``m`` bit positions for a key, each in
    ``[0, 2**n)``.  Functions are h_i(x) = h1(x) + i*h2(x) mod 2^n with h2
    forced odd so it is invertible modulo a power of two (all positions
    reachable).
    """

    def __init__(self, m: int, n_bits: int, seed: int = 0) -> None:
        if m <= 0:
            raise ValueError(f"need at least one hash function, got {m}")
        if not 1 <= n_bits <= 32:
            raise ValueError(f"n_bits out of range: {n_bits}")
        self.m = m
        self.n_bits = n_bits
        self.mask = (1 << n_bits) - 1
        self.seed = seed
        self._seed1 = splitmix64(seed)
        self._seed2 = splitmix64(seed ^ 0xA5A5A5A5A5A5A5A5)

    def base_hashes(self, fields: Sequence[int]) -> Tuple[int, int]:
        """The two independent 64-bit base hashes of a key."""
        return mix_tuple(fields, self._seed1), mix_tuple(fields, self._seed2)

    def base_hashes_many(
        self, keys: Sequence[Sequence[int]]
    ) -> List[Tuple[int, int]]:
        """Batch form of :meth:`base_hashes`, numpy-vectorized when enabled.

        Same values as ``[self.base_hashes(k) for k in keys]`` bit for bit;
        ragged or non-integer key sets fall back to the scalar loop.
        """
        np = _numpy() if len(keys) >= _NP_MIN_KEYS else None
        if np is not None:
            columns = _key_matrix(np, keys)
            if columns is not None:
                h1 = _mix_tuple_np(np, columns, self._seed1).tolist()
                h2 = _mix_tuple_np(np, columns, self._seed2).tolist()
                return list(zip(h1, h2))
        seed1 = self._seed1
        seed2 = self._seed2
        return [(mix_tuple(k, seed1), mix_tuple(k, seed2)) for k in keys]

    def indices(self, fields: Sequence[int]) -> List[int]:
        """The m bit positions (n-bit truncated) for a key."""
        h1, h2 = self.base_hashes(fields)
        h2 |= 1  # odd => full-period stepping mod 2**n
        mask = self.mask
        return [(h1 + i * h2) & mask for i in range(self.m)]

    def indices_many(self, keys: Iterable[Sequence[int]]) -> List[Tuple[int, ...]]:
        """Batch form of :meth:`indices`: one call, many keys.

        Hoists the per-call setup (seeds, mask, range) out of the loop so
        columnar replay can hash a whole packet batch without re-paying
        Python call overhead per packet.  When numpy acceleration is on
        (:mod:`repro.net.table`'s switch) and the batch is rectangular,
        both base mixes and the double-hash stepping run as uint64 column
        arithmetic — bit-identical to the scalar loop, since uint64
        wraparound is exactly the ``& _MASK64`` truncation.  Returns one
        tuple of ``m`` bit positions per key, in input order.
        """
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        m = self.m
        mask = self.mask
        seed1 = self._seed1
        seed2 = self._seed2
        np = _numpy() if len(keys) >= _NP_MIN_KEYS else None
        if np is not None:
            columns = _key_matrix(np, keys)
            if columns is not None:
                h1 = _mix_tuple_np(np, columns, seed1)
                h2 = _mix_tuple_np(np, columns, seed2) | np.uint64(1)
                steps_np = np.arange(m, dtype=np.uint64)
                with np.errstate(over="ignore"):
                    positions = (
                        h1[:, None] + steps_np[None, :] * h2[:, None]
                    ) & np.uint64(mask)
                return [tuple(row) for row in positions.tolist()]
        steps = range(m)
        out: List[Tuple[int, ...]] = []
        append = out.append
        for fields in keys:
            h1 = mix_tuple(fields, seed1)
            h2 = mix_tuple(fields, seed2) | 1
            append(tuple((h1 + i * h2) & mask for i in steps))
        return out

    def indices_bytes(self, data: bytes) -> List[int]:
        """As :meth:`indices` but for byte-string keys."""
        h1 = fnv1a_64(data, self._seed1)
        h2 = fnv1a_64(data, self._seed2) | 1
        mask = self.mask
        return [(h1 + i * h2) & mask for i in range(self.m)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"HashFamily(m={self.m}, n_bits={self.n_bits}, seed={self.seed})"


class HashIndexMemo:
    """Bounded LRU cache of key fields → hash-index tuples.

    Traffic is heavily flow-repetitive — a long transfer presents the same
    socket pair thousands of times — so the batched replay path memoizes
    each distinct key's ``m`` bit positions and hashes it exactly once.
    The bound keeps worst-case memory flat under address-scanning traffic;
    eviction is least-recently-used so live flows stay resident.
    """

    def __init__(self, family: HashFamily, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.family = family
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[int, ...], Tuple[int, ...]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fields: Tuple[int, ...]) -> Tuple[int, ...]:
        """The key's hash indices, computed at most once while resident."""
        entries = self._entries
        indices = entries.get(fields)
        if indices is not None:
            self.hits += 1
            entries.move_to_end(fields)
            return indices
        self.misses += 1
        indices = tuple(self.family.indices(fields))
        entries[fields] = indices
        if len(entries) > self.capacity:
            entries.popitem(last=False)
        return indices

    def get_many(self, keys: Sequence[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
        """Resolve a batch of keys, hashing the distinct misses via
        :meth:`HashFamily.indices_many` in one pass.

        Hit/miss accounting matches the per-key :meth:`get` loop exactly:
        a key's *first* occurrence in the batch is a miss when absent, and
        every repeat occurrence — in this batch or a later one — is a hit.
        (A previous version deduped misses before resolving them, so a
        flow's thousands of in-batch repeats were never credited and a
        whole-trace batch reported zero hits despite total reuse.)
        """
        entries = self._entries
        move = entries.move_to_end
        out: List[Tuple[int, ...]] = [()] * len(keys)
        missing: "OrderedDict[Tuple[int, ...], None]" = OrderedDict()
        hits = 0
        for position, key in enumerate(keys):
            indices = entries.get(key)
            if indices is not None:
                hits += 1
                move(key)
                out[position] = indices
            elif key in missing:
                hits += 1
            else:
                missing[key] = None
        self.hits += hits
        if missing:
            self.misses += len(missing)
            distinct = list(missing)
            for key, indices in zip(distinct, self.family.indices_many(distinct)):
                entries[key] = indices
            while len(entries) > self.capacity:
                entries.popitem(last=False)
            for position, key in enumerate(keys):
                if not out[position]:
                    indices = entries.get(key)
                    if indices is None:
                        # Evicted within this very batch (capacity smaller
                        # than the batch's distinct-key count); re-resolve
                        # through the accounted per-key path.
                        indices = self.get(key)
                    out[position] = indices
        return out

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


def make_hash_family(m: int, size: int, seed: int = 0) -> HashFamily:
    """Build a family of ``m`` hashes onto a table of ``size = 2**n`` bits.

    ``size`` must be a power of two, matching the paper's ``N = 2^n``.
    """
    if size <= 0 or size & (size - 1):
        raise ValueError(f"size must be a power of two, got {size}")
    return HashFamily(m, size.bit_length() - 1, seed=seed)


def uniformity_chi2(samples: Iterable[int], buckets: int) -> float:
    """Chi-square statistic of hash outputs against a uniform distribution.

    A helper for the test suite: values near ``buckets - 1`` (the degrees of
    freedom) indicate good uniformity.
    """
    counts = [0] * buckets
    total = 0
    for sample in samples:
        counts[sample % buckets] += 1
        total += 1
    if total == 0:
        raise ValueError("no samples")
    expected = total / buckets
    return sum((count - expected) ** 2 / expected for count in counts)
