"""A classic Bloom filter (Bloom, CACM 1970) — the paper's reference [9].

The bitmap filter is "a composite of k bloom filters of equal size
N = 2^n bits" (section 4.2); this module provides the single-filter
substrate plus the standard closed-form accounting that section 5.1 builds
on.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Union

from repro.core.bitvector import BitVector
from repro.core.hashing import make_hash_family

Key = Union[bytes, Sequence[int]]


class BloomFilter:
    """Approximate-membership set over byte-string or int-tuple keys.

    ``size`` must be a power of two (the paper truncates hash outputs to
    n bits).  ``add`` marks m bits; ``__contains__`` tests the same m bits.
    False positives happen; false negatives never do.
    """

    def __init__(self, size: int, hashes: int, seed: int = 0) -> None:
        self.vector = BitVector(size)
        self.family = make_hash_family(hashes, size, seed=seed)
        self.added = 0

    @property
    def size(self) -> int:
        return self.vector.size

    @property
    def hashes(self) -> int:
        return self.family.m

    def _indices(self, key: Key) -> Iterable[int]:
        if isinstance(key, (bytes, bytearray)):
            return self.family.indices_bytes(bytes(key))
        return self.family.indices(key)

    def add(self, key: Key) -> None:
        self.vector.set_many(self._indices(key))
        self.added += 1

    def __contains__(self, key: Key) -> bool:
        return self.vector.test_all(self._indices(key))

    def clear(self) -> None:
        self.vector.clear()
        self.added = 0

    @property
    def utilization(self) -> float:
        """Fraction of marked bits (``U = b/N``, Equation 2)."""
        return self.vector.utilization

    def false_positive_rate(self) -> float:
        """The paper's penetration probability for *this* filter state:
        ``p = U^m`` (Equation 2), using the measured utilization."""
        return self.utilization ** self.hashes

    def __len__(self) -> int:
        return self.added

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BloomFilter(size={self.size}, hashes={self.hashes}, "
            f"added={self.added}, utilization={self.utilization:.4f})"
        )


def theoretical_fpr(size: int, hashes: int, items: int) -> float:
    """Classic Bloom false-positive rate ``(1 - e^{-km/N})^m``.

    The paper's simplified Equation 3 assumes low utilization (few hash
    collisions), approximating this as ``(c*m/N)^m``; both are provided so
    tests can check the approximation regime.
    """
    if size <= 0 or hashes <= 0 or items < 0:
        raise ValueError("size/hashes must be positive, items non-negative")
    return (1.0 - math.exp(-hashes * items / size)) ** hashes


def optimal_hashes_classic(size: int, items: int) -> float:
    """The textbook optimum ``m = (N/c) ln 2`` for a standard Bloom filter.

    Note the paper derives a different optimum, ``m = N/(e*c)``, because it
    optimizes its *approximate* Equation 3 rather than the exact rate; see
    :func:`repro.core.analysis.optimal_hash_count`.
    """
    if items <= 0:
        raise ValueError("items must be positive")
    return (size / items) * math.log(2.0)
