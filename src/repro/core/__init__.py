"""Core contribution: the {k×N}-bitmap filter and its analytical model.

This package is payload-blind by design — it sees only socket pairs,
directions and byte counts, never packet contents.  That is the point of the
paper: bound P2P upload traffic *without* deep packet inspection.
"""

from repro.core.hashing import HashFamily, make_hash_family
from repro.core.bitvector import BitVector
from repro.core.bloom import BloomFilter
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, FieldMode
from repro.core.dropper import (
    DropPolicy,
    RedDropPolicy,
    StaticDropPolicy,
    SteppedDropPolicy,
)
from repro.core.throughput import EwmaThroughputMeter, SlidingWindowMeter, ThroughputMeter
from repro.core.analysis import (
    capacity_bound,
    expected_utilization,
    optimal_hash_count,
    penetration_probability,
    recommend_parameters,
)

__all__ = [
    "HashFamily",
    "make_hash_family",
    "BitVector",
    "BloomFilter",
    "BitmapFilter",
    "BitmapFilterConfig",
    "FieldMode",
    "DropPolicy",
    "RedDropPolicy",
    "StaticDropPolicy",
    "SteppedDropPolicy",
    "ThroughputMeter",
    "SlidingWindowMeter",
    "EwmaThroughputMeter",
    "capacity_bound",
    "expected_utilization",
    "optimal_hash_count",
    "penetration_probability",
    "recommend_parameters",
]
