"""Shard lifecycles: how a lane comes up, reports health, goes down.

Before this layer existed, three mechanisms each carried a private copy
of the same lifecycle: the parallel backend deep-copied lane filters and
hand-rolled pool teardown, the sharded filter reset its members one way,
and the filter service serialized/rehydrated pipeline state another.
:class:`ShardLifecycle` is the shared contract — launch / ping / stop
plus snapshot–restore delegation — with two in-tree implementations
(:class:`MemberLane` for in-process lanes, :class:`WorkerPool` for the
multiprocess worker set) and a third in :mod:`repro.fleet` (the
shard-daemon subprocess handle).

The merge side lives here too, because every shard mechanism folds lane
results identically:

* :func:`fold_lane_record` — one lane's filter statistics (and
  optionally its blocked-σ rows) into a sharded filter;
* :func:`combine_lane_fingerprints` — per-lane verdict fingerprints into
  one order-independent fleet fingerprint;
* :func:`pipeline_counters` / :func:`restore_pipeline` — the pipeline
  counter block a snapshot persists and a warm restart rehydrates.
"""

from __future__ import annotations

import copy
import multiprocessing
import signal
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.core.bitmap_filter import BitmapFilterStats
from repro.core.hashing import FNV64_OFFSET, splitmix64
from repro.filters.base import PacketFilter, SnapshotUnsupported, Verdict
from repro.net.packet import Packet


class ShardLifecycle(ABC):
    """One shard's lifecycle contract.

    ``launch`` brings the shard up, ``ping`` reports liveness as a plain
    dict (shape varies by implementation: an in-process lane reports its
    counters, a daemon handle reports process health), ``stop`` tears it
    down; all three are idempotent.  Snapshot delegation is optional —
    the default raises :class:`~repro.filters.base.SnapshotUnsupported`,
    matching the filter-snapshot protocol's refusal convention.
    Lifecycles are context managers: ``launch`` on enter, ``stop`` on
    exit (even on error).
    """

    @abstractmethod
    def launch(self) -> None:
        """Bring the shard up (spawn / isolate / bind)."""

    @abstractmethod
    def ping(self) -> dict:
        """Liveness and basic counters, as JSON-safe data."""

    @abstractmethod
    def stop(self) -> None:
        """Tear the shard down, releasing what ``launch`` acquired."""

    def snapshot_state(self) -> Any:
        raise SnapshotUnsupported(
            f"{type(self).__name__} does not delegate snapshots"
        )

    def restore_state(self, state: Any, clock: str = "resume") -> None:
        raise SnapshotUnsupported(
            f"{type(self).__name__} does not delegate restore"
        )

    def __enter__(self) -> "ShardLifecycle":
        self.launch()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class MemberLane(ShardLifecycle):
    """An in-process lane over one member filter.

    This is the lifecycle of a :class:`~repro.filters.sharded.ShardedFilter`
    lane and of the parallel backend's serial (``workers=1``) path:
    ``launch`` optionally deep-copies the member so a measurement replay
    leaves the owner's filter state untouched (the isolation the
    parallel merge contract requires — the owner's filter accumulates
    only the merged statistics afterwards), and snapshot delegation goes
    straight through the filter-snapshot protocol.
    """

    def __init__(
        self, lane: int, member: PacketFilter, isolate: bool = False
    ) -> None:
        self.lane = lane
        self.member = member
        self.isolate = isolate
        self.filter: Optional[PacketFilter] = None

    def launch(self) -> None:
        if self.filter is None:
            self.filter = (
                copy.deepcopy(self.member) if self.isolate else self.member
            )

    def ping(self) -> dict:
        target = self.filter if self.filter is not None else self.member
        return {
            "lane": self.lane,
            "status": "up" if self.filter is not None else "down",
            "packets": target.stats.total,
        }

    def stop(self) -> None:
        self.filter = None

    def snapshot_state(self) -> dict:
        target = self.filter if self.filter is not None else self.member
        return target.snapshot()

    def restore_state(self, state: Any, clock: str = "resume") -> None:
        from repro.filters import restore_filter

        self.member = restore_filter(state, clock=clock)
        self.filter = None


def pool_context():
    """Prefer fork (cheap, inherits read-only state); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _init_worker() -> None:
    """Pool workers ignore SIGINT.

    A terminal Ctrl-C delivers SIGINT to the whole foreground process
    group — parent *and* workers.  If workers die on their own, the
    parent's interrupt handling races a pile of broken-pipe errors from
    mid-pickle corpses; with SIGINT masked in the workers, the parent is
    the single owner of the interrupt and tears the pool down in order
    (terminate, join, re-raise).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerPool(ShardLifecycle):
    """The multiprocess worker set's lifecycle, with guaranteed teardown.

    One :class:`WorkerPool` owns the process lanes of a partitioned
    replay: ``launch`` builds a fork-preferred pool whose workers mask
    SIGINT, :meth:`map` runs lane tasks and — on *any* failure while
    waiting, including SIGINT landing in the parent — terminates and
    joins every worker before re-raising, so an interrupted replay never
    leaks processes.  ``stop`` is the normal reap (close + join).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.workers = workers
        self._pool = None

    def launch(self) -> None:
        if self._pool is None:
            self._pool = pool_context().Pool(
                processes=self.workers, initializer=_init_worker
            )

    def map(self, func: Callable, tasks: Sequence) -> List:
        """Map lane tasks over the workers; terminate-and-join on any
        exception while waiting, so no child outlives a failed map."""
        if self._pool is None:
            raise RuntimeError("worker pool is not launched")
        try:
            return self._pool.map(func, tasks)
        except BaseException:
            self.terminate()
            raise

    def imap(self, func: Callable, tasks: Sequence) -> Iterator:
        """Ordered streaming map: results arrive as they finish, in task
        order, so the consumer overlaps its own work with the workers'.
        Same teardown contract as :meth:`map` — any exception while
        waiting (including SIGINT in the parent) terminates and joins
        every worker before re-raising."""
        if self._pool is None:
            raise RuntimeError("worker pool is not launched")
        results = self._pool.imap(func, tasks)

        def drain() -> Iterator:
            try:
                for result in results:
                    yield result
            except BaseException:
                self.terminate()
                raise

        return drain()

    def ping(self) -> dict:
        processes = getattr(self._pool, "_pool", None) or []
        return {
            "workers": self.workers,
            "status": "up" if self._pool is not None else "down",
            "alive": sum(1 for process in processes if process.is_alive()),
        }

    def stop(self) -> None:
        if self._pool is None:
            return
        self._pool.close()
        self._pool.join()
        self._pool = None

    def terminate(self) -> None:
        """Hard teardown: kill workers mid-task and reap them."""
        if self._pool is None:
            return
        self._pool.terminate()
        self._pool.join()
        self._pool = None


class DefaultLaneFilter(PacketFilter):
    """The default lane's stand-in filter: transit packets matching no
    shard get the sharded filter's ``default_verdict``, exactly as
    :meth:`ShardedFilter.decide` would hand them."""

    name = "default-lane"

    def __init__(self, verdict: Verdict) -> None:
        super().__init__()
        self.verdict = verdict

    def decide(self, packet: Packet) -> Verdict:
        return self.verdict


# -- merge arm ---------------------------------------------------------------

_MASK64 = (1 << 64) - 1
#: Golden-ratio increment; decorrelates the lane key from small indices.
_LANE_SALT = 0x9E3779B97F4A7C15


def combine_lane_fingerprints(lane_fingerprints: Dict[int, int]) -> int:
    """Combine per-lane verdict fingerprints into one 64-bit value.

    A single verdict fingerprint is order-dependent over the interleaved
    stream, which no fleet of independent shards can reproduce — but each
    *lane's* verdict order is identical whether the lane ran in a worker
    process, a daemon, or an offline partitioned replay.  So the fleet
    invariant is lane-keyed: mix each lane's FNV fingerprint with its
    lane index (splitmix64) and sum mod 2^64.  Addition commutes and
    associates, so the combined value is independent of shard reporting
    order, restart history, and aggregation grouping; keying by lane
    index keeps two lanes with swapped streams from colliding.  Lane -1
    is the default (transit) lane.

    Lanes whose fingerprint still sits at the FNV offset basis (the
    empty verdict sequence) contribute nothing — an idle fleet shard and
    a lane the offline partition never materialized combine identically.
    """
    combined = 0
    for lane, fingerprint in lane_fingerprints.items():
        if fingerprint == FNV64_OFFSET:
            continue
        key = splitmix64((lane & _MASK64) ^ _LANE_SALT)
        combined = (combined + splitmix64(key ^ fingerprint)) & _MASK64
    return combined


def fold_lane_record(sharded, record, blocklist=None) -> None:
    """Fold one lane's replay record into a sharded filter.

    ``record`` is anything LaneResult-shaped (``lane``, ``filter_stats``,
    ``core_stats``, ``blocked``, ``suppressed_*``).  Statistics merge
    into the sharded top-level counters and the owning member (plus its
    bitmap core, when both sides have one); default-lane traffic
    (``lane < 0``) is what the sharded filter counts as unrouted.  With a
    ``blocklist``, the lane's blocked-σ rows union in — lanes own
    disjoint connections, so the union is a plain update.  This is the
    one merge arm behind both the offline parallel merge and the fleet
    aggregator.
    """
    sharded.stats.merge(record.filter_stats)
    if record.lane >= 0:
        member = sharded.shards[record.lane][2]
        member.stats.merge(record.filter_stats)
        core = getattr(member, "core", None)
        if core is not None and record.core_stats is not None:
            core.stats.merge(BitmapFilterStats(**record.core_stats))
    else:
        sharded.unrouted_packets += record.filter_stats.total
    if blocklist is not None and record.blocked is not None:
        blocklist._blocked.update(record.blocked)
        blocklist.suppressed_packets += record.suppressed_packets
        blocklist.suppressed_bytes += record.suppressed_bytes


def pipeline_counters(pipeline) -> dict:
    """The pipeline counter block a service snapshot persists — the
    exact complement of :func:`restore_pipeline`."""
    return {
        "inbound": pipeline.inbound,
        "dropped": pipeline.dropped,
        "first_ts": pipeline.first_ts,
        "last_ts": pipeline.last_ts,
        "fingerprint": pipeline.fingerprint,
    }


def restore_pipeline(pipeline, document: dict) -> None:
    """Rehydrate a pipeline from a snapshot document: the router's
    measurement lanes and blocked-σ store, then the counter block."""
    pipeline.router.restore_state(document["router"])
    counters = document["pipeline"]
    pipeline.inbound = counters["inbound"]
    pipeline.dropped = counters["dropped"]
    pipeline.first_ts = counters["first_ts"]
    pipeline.last_ts = counters["last_ts"]
    pipeline.fingerprint = counters["fingerprint"]
