"""Shared shard lifecycle layer: one partition/spawn/merge stack.

Three shard-shaped mechanisms grew up independently in this codebase —
:class:`~repro.filters.sharded.ShardedFilter` lanes (in-process
per-subnet member filters), :mod:`repro.sim.parallel` workers (one
process per lane) and :class:`~repro.service.service.FilterService`
daemons (long-lived shards under a fleet supervisor).  They all answer
the same three questions:

* **Which lane owns a packet?** — :mod:`repro.shard.plan`:
  :class:`ShardPlan` keys the client-address space onto N lanes, either
  by an ordered subnet table (:class:`SubnetShardPlan`, the Figure 6
  core-router placement) or by consistent-hashing client subnets onto a
  ring (:class:`HashShardPlan`, the ISP-scale fleet keying), and
  partitions packet lists and columnar tables into per-lane sub-streams.
* **How does a lane come up, stay up, go down?** —
  :mod:`repro.shard.lifecycle`: the :class:`ShardLifecycle` contract
  (launch / ping / stop / snapshot–restore delegation) implemented by
  the in-process member-filter lane, the multiprocess
  :class:`WorkerPool`, and — in :mod:`repro.fleet` — the shard-daemon
  subprocess handle.
* **How do lane results merge back?** — :func:`fold_lane_record` for
  filter statistics, the metrics ``merge()`` layer for series/windows,
  and :func:`combine_lane_fingerprints` for lane-keyed verdict
  fingerprints (the quantity a fleet aggregates and an offline
  partitioned replay reproduces bit for bit).

:mod:`repro.fleet` builds the N-daemon supervisor on top of this layer.
"""

from repro.shard.lifecycle import (
    DefaultLaneFilter,
    MemberLane,
    ShardLifecycle,
    WorkerPool,
    combine_lane_fingerprints,
    fold_lane_record,
    pipeline_counters,
    restore_pipeline,
)
from repro.shard.plan import (
    HashShardPlan,
    ShardPlan,
    SubnetShardPlan,
    plan_from_spec,
)

__all__ = [
    "DefaultLaneFilter",
    "HashShardPlan",
    "MemberLane",
    "ShardLifecycle",
    "ShardPlan",
    "SubnetShardPlan",
    "WorkerPool",
    "combine_lane_fingerprints",
    "fold_lane_record",
    "pipeline_counters",
    "plan_from_spec",
    "restore_pipeline",
]
