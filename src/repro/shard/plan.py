"""Shard plans: one keying of the client-address space onto N lanes.

A :class:`ShardPlan` answers ``lane_of(inner_address)`` — which lane
owns a client address — and, from that one function, derives the
partition operations every shard-shaped mechanism in the codebase needs:

* :meth:`ShardPlan.partition_packets` splits an object-shaped packet
  stream into per-lane sub-streams plus a default lane of transit
  packets matching no lane;
* :meth:`ShardPlan.partition_table` is its columnar twin, routing by
  interned flow (one ``lane_of`` resolution per ``(pair, direction)``)
  and gathering pool-sharing sub-tables.

The routing invariant both rely on: a packet's lane is decided by its
*inner* address (source when outbound, destination when inbound), a
connection's packets all share one inner address, so every connection
lands wholly inside one lane — per-lane replay is therefore equivalent
to interleaved replay.

Two keyings ship:

* :class:`SubnetShardPlan` — an ordered ``(network, prefix)`` table with
  first-match semantics and a bounded FIFO route cache; the Figure 6
  core-router placement where each lane is one client network.
* :class:`HashShardPlan` — client /``subnet_prefix`` subnets consistent-
  hashed onto a replica ring; the ISP-scale fleet keying where adding a
  shard moves only ~1/N of the subnets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import Dict, Iterable, List, Tuple

from repro.core.hashing import derive_seed, splitmix64
from repro.net.inet import format_ipv4, in_network
from repro.net.packet import Direction, Packet


class ShardPlan(ABC):
    """Maps inner (client-side) IPv4 addresses onto lane indices."""

    #: Number of lanes the plan routes to.
    lanes: int

    @abstractmethod
    def lane_of(self, inner: int) -> int:
        """Index of the lane owning an inner address, or -1 for transit
        traffic no lane claims."""

    @abstractmethod
    def label(self, position: int) -> str:
        """Human-readable key of one lane (subnet CIDR, ring slot...)."""

    @abstractmethod
    def as_spec(self) -> dict:
        """JSON-safe description from which :func:`plan_from_spec`
        rebuilds an identical plan (fleet manifests, offline verify)."""

    # -- routing helpers -------------------------------------------------

    @staticmethod
    def inner_address(packet: Packet) -> int:
        """The client-side address that decides lane ownership: the
        source of an outbound packet, the destination of an inbound one."""
        return (
            packet.pair.src_addr
            if packet.direction is Direction.OUTBOUND
            else packet.pair.dst_addr
        )

    def lane_of_packet(self, packet: Packet) -> int:
        return self.lane_of(self.inner_address(packet))

    # -- partitioning ----------------------------------------------------

    def partition_packets(
        self, packets: Iterable[Packet]
    ) -> Tuple[List[List[Packet]], List[Packet]]:
        """Split a packet stream into per-lane sub-streams plus a default
        lane of transit packets matching no lane.  Each sub-stream
        preserves the input's relative order."""
        lanes: List[List[Packet]] = [[] for _ in range(self.lanes)]
        default_lane: List[Packet] = []
        lane_of = self.lane_of
        inner_address = self.inner_address
        for packet in packets:
            position = lane_of(inner_address(packet))
            if position < 0:
                default_lane.append(packet)
            else:
                lanes[position].append(packet)
        return lanes, default_lane

    def partition_table(self, table):
        """Columnar twin of :meth:`partition_packets`.

        Routes by interned flow instead of per packet: the owning lane
        of each ``(pair_id, direction)`` is resolved once against the
        table's pools, rows are grouped with
        :meth:`~repro.net.table.PacketTable.lane_positions` and gathered
        into pool-sharing sub-tables with
        :meth:`~repro.net.table.PacketTable.select`.  Returns
        ``(lane_tables, default_table)`` with every lane preserving row
        order — the same split :meth:`partition_packets` produces on
        ``table.to_packets()``.
        """
        pairs = table.pairs
        lane_of = self.lane_of
        out_lane: Dict[int, int] = {}
        in_lane: Dict[int, int] = {}
        lane_by_row: List[int] = []
        append = lane_by_row.append
        for pid, is_out in zip(table.pair_ids, table.outbound):
            if is_out:
                lane = out_lane.get(pid)
                if lane is None:
                    lane = out_lane[pid] = lane_of(pairs[pid].src_addr)
            else:
                lane = in_lane.get(pid)
                if lane is None:
                    lane = in_lane[pid] = lane_of(pairs[pid].dst_addr)
            append(lane)
        groups = table.lane_positions(lane_by_row, self.lanes)
        return (
            [table.select(group) for group in groups[:-1]],
            table.select(groups[-1]),
        )

    def __len__(self) -> int:
        return self.lanes


class SubnetShardPlan(ShardPlan):
    """An ordered subnet table: first match wins, like a routing table.

    Overlapping prefixes are allowed (put more-specific first).  The
    prefix scan is O(lanes) and sits on per-packet hot paths, so a small
    FIFO cache memoizes inner-address lookups; first-match semantics are
    preserved because the scan order is what populates it.
    """

    #: Routing-cache bound: distinct inner addresses resident at once.
    ROUTE_CACHE_SIZE = 1 << 16

    def __init__(
        self,
        subnets: List[Tuple[int, int]],
        route_cache_size: int = ROUTE_CACHE_SIZE,
    ) -> None:
        if not subnets:
            raise ValueError("need at least one subnet")
        for network, prefix_len in subnets:
            if not 0 <= prefix_len <= 32:
                raise ValueError(f"bad prefix length {prefix_len}")
            if not 0 <= network < 2 ** 32:
                raise ValueError(f"bad network {network}")
        if route_cache_size <= 0:
            raise ValueError(
                f"route_cache_size must be positive: {route_cache_size}"
            )
        self.subnets = [(network, prefix_len) for network, prefix_len in subnets]
        self.lanes = len(self.subnets)
        self._route_cache_size = route_cache_size
        self._route_cache: Dict[int, int] = {}

    @classmethod
    def from_cidr(
        cls, network: int, prefix_len: int, shard_bits: int, **kwargs
    ) -> "SubnetShardPlan":
        """Split one client CIDR into ``2**shard_bits`` equal subnets —
        the ``--shard-bits`` keying of ``repro filter`` and the default
        fleet layout."""
        shard_prefix = prefix_len + shard_bits
        if shard_bits < 1 or shard_prefix > 32:
            raise ValueError(
                f"shard_bits {shard_bits} does not fit inside /{prefix_len}"
            )
        step = 1 << (32 - shard_prefix)
        return cls(
            [(network + index * step, shard_prefix)
             for index in range(1 << shard_bits)],
            **kwargs,
        )

    def scan(self, inner: int) -> int:
        """Uncached first-match scan of the subnet table (-1 = unrouted)."""
        for position, (network, prefix_len) in enumerate(self.subnets):
            if in_network(inner, network, prefix_len):
                return position
        return -1

    def lane_of(self, inner: int) -> int:
        cache = self._route_cache
        position = cache.get(inner)
        if position is None:
            position = self.scan(inner)
            if len(cache) >= self._route_cache_size:
                # FIFO eviction: drop the oldest insertion, stay bounded.
                del cache[next(iter(cache))]
            cache[inner] = position
        return position

    def label(self, position: int) -> str:
        network, prefix_len = self.subnets[position]
        return f"{format_ipv4(network)}/{prefix_len}"

    def reset_cache(self) -> None:
        self._route_cache = {}

    def as_spec(self) -> dict:
        return {"keying": "subnet", "subnets": [list(s) for s in self.subnets]}


class HashShardPlan(ShardPlan):
    """Consistent-hashed client subnets on a replica ring.

    Every inner address collapses to its /``subnet_prefix`` subnet; the
    subnet hashes (splitmix64) onto a ring carrying ``replicas`` virtual
    points per lane, and the first point clockwise owns it.  Adding or
    removing one lane therefore remaps only ~1/``lanes`` of the subnets —
    the property that lets an ISP fleet grow without re-homing every
    client network.  Hash plans route *everything*: there is no transit
    lane (``lane_of`` never returns -1).
    """

    def __init__(
        self,
        lanes: int,
        subnet_prefix: int = 24,
        replicas: int = 64,
        seed: int = 0,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"need at least one lane: {lanes}")
        if not 0 <= subnet_prefix <= 32:
            raise ValueError(f"bad subnet prefix {subnet_prefix}")
        if replicas < 1:
            raise ValueError(f"need at least one replica: {replicas}")
        self.lanes = lanes
        self.subnet_prefix = subnet_prefix
        self.replicas = replicas
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for lane in range(lanes):
            base = derive_seed(seed, lane)
            for replica in range(replicas):
                points.append((derive_seed(base, replica), lane))
        points.sort()
        self._ring_points = [point for point, _ in points]
        self._ring_lanes = [lane for _, lane in points]
        self._shift = 32 - subnet_prefix

    def lane_of(self, inner: int) -> int:
        key = splitmix64((inner >> self._shift) ^ self.seed)
        position = bisect_right(self._ring_points, key)
        if position == len(self._ring_points):
            position = 0
        return self._ring_lanes[position]

    def label(self, position: int) -> str:
        return f"ring[{position}/{self.lanes}]"

    def as_spec(self) -> dict:
        return {
            "keying": "hash",
            "lanes": self.lanes,
            "subnet_prefix": self.subnet_prefix,
            "replicas": self.replicas,
            "seed": self.seed,
        }


def plan_from_spec(spec: dict) -> ShardPlan:
    """Rebuild a plan from :meth:`ShardPlan.as_spec` output."""
    keying = spec.get("keying")
    if keying == "subnet":
        return SubnetShardPlan(
            [tuple(subnet) for subnet in spec["subnets"]]
        )
    if keying == "hash":
        return HashShardPlan(
            spec["lanes"],
            subnet_prefix=spec["subnet_prefix"],
            replicas=spec["replicas"],
            seed=spec["seed"],
        )
    raise ValueError(f"unknown shard-plan keying: {keying!r}")
