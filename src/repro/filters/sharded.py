"""Per-subnet sharded bitmap filters — the Figure 6 core-router placement.

"The bitmap filter can be installed ... on a core router, which is an
aggregate of two or more client networks."  At an aggregation point an
operator can run one big filter, or one *shard* per client network.
Sharding buys:

* per-network policy — each shard gets its own drop controller, so one
  customer's P2P load cannot push another customer's P_d up;
* capacity isolation — a connection-heavy network cannot raise the
  utilization (and hence the penetration probability, Eq. 2) of its
  neighbours' vectors;
* parallelism — shards touch disjoint memory.

A packet routes to the shard owning its *inner* address: the source for
outbound packets, the destination for inbound ones.  Packets matching no
shard (transit traffic) follow ``default_verdict``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.filters.base import PacketFilter, Verdict
from repro.net.inet import in_network
from repro.net.packet import Direction, Packet


class ShardedFilter(PacketFilter):
    """Route packets to per-client-network member filters."""

    name = "sharded"

    #: Shard-routing cache bound: distinct inner addresses resident at once.
    ROUTE_CACHE_SIZE = 1 << 16

    def __init__(
        self,
        shards: List[Tuple[int, int, PacketFilter]],
        default_verdict: Verdict = Verdict.PASS,
        route_cache_size: int = ROUTE_CACHE_SIZE,
    ) -> None:
        """``shards`` is ``[(network, prefix_len, filter), ...]``.

        Networks are matched in order; overlapping prefixes are allowed
        (put more-specific first, as in a routing table).
        """
        super().__init__()
        if not shards:
            raise ValueError("need at least one shard")
        for network, prefix_len, _ in shards:
            if not 0 <= prefix_len <= 32:
                raise ValueError(f"bad prefix length {prefix_len}")
            if not 0 <= network < 2 ** 32:
                raise ValueError(f"bad network {network}")
        if route_cache_size <= 0:
            raise ValueError(f"route_cache_size must be positive: {route_cache_size}")
        self.shards = shards
        self.default_verdict = default_verdict
        self.unrouted_packets = 0
        # Inner-address → shard-index cache (-1 = no shard).  The prefix
        # scan is O(shards) and sits on the per-packet hot path; client
        # traffic revisits a bounded host population, so a small FIFO
        # cache turns routing into one dict hit.  First-match semantics
        # are preserved because the scan order is what populates it.
        self._route_cache_size = route_cache_size
        self._route_cache: Dict[int, int] = {}

    @staticmethod
    def inner_address(packet: Packet) -> int:
        """The client-side address that decides shard ownership: the
        source of an outbound packet, the destination of an inbound one."""
        return (
            packet.pair.src_addr
            if packet.direction is Direction.OUTBOUND
            else packet.pair.dst_addr
        )

    def _scan_shard_index(self, inner: int) -> int:
        """Uncached first-match scan of the shard table (-1 = unrouted)."""
        for position, (network, prefix_len, _) in enumerate(self.shards):
            if in_network(inner, network, prefix_len):
                return position
        return -1

    def shard_index_for(self, inner: int) -> int:
        """Index of the shard owning an inner address, or -1 for transit
        traffic — memoized through the bounded route cache."""
        cache = self._route_cache
        position = cache.get(inner)
        if position is None:
            position = self._scan_shard_index(inner)
            if len(cache) >= self._route_cache_size:
                # FIFO eviction: drop the oldest insertion, stay bounded.
                del cache[next(iter(cache))]
            cache[inner] = position
        return position

    def _shard_for(self, packet: Packet) -> Optional[PacketFilter]:
        position = self.shard_index_for(self.inner_address(packet))
        if position < 0:
            return None
        return self.shards[position][2]

    def shard_label(self, position: int) -> str:
        """Human-readable ``network/prefix`` key of one shard."""
        from repro.net.inet import format_ipv4

        network, prefix_len, _ = self.shards[position]
        return f"{format_ipv4(network)}/{prefix_len}"

    def partition_packets(
        self, packets: Iterable[Packet]
    ) -> Tuple[List[List[Packet]], List[Packet]]:
        """Split a packet stream into per-shard sub-streams plus a default
        lane of transit packets matching no shard.

        Each sub-stream preserves the input's relative order, and a
        connection's packets all share one inner address, so every
        connection lands wholly inside one lane — the property that makes
        per-lane replay equivalent to interleaved replay.
        """
        lanes: List[List[Packet]] = [[] for _ in self.shards]
        default_lane: List[Packet] = []
        shard_index_for = self.shard_index_for
        inner_address = self.inner_address
        for packet in packets:
            position = shard_index_for(inner_address(packet))
            if position < 0:
                default_lane.append(packet)
            else:
                lanes[position].append(packet)
        return lanes, default_lane

    def partition_table(self, table):
        """Columnar twin of :meth:`partition_packets`.

        Routes by interned flow instead of per packet: the owning shard
        of each ``(pair_id, direction)`` is resolved once against the
        table's pools, rows are grouped with
        :meth:`~repro.net.table.PacketTable.lane_positions` and gathered
        into pool-sharing sub-tables with
        :meth:`~repro.net.table.PacketTable.select`.  Returns
        ``(lane_tables, default_table)`` with every lane preserving row
        order — the same split :meth:`partition_packets` produces on
        ``table.to_packets()``.
        """
        pairs = table.pairs
        shard_index_for = self.shard_index_for
        out_lane: Dict[int, int] = {}
        in_lane: Dict[int, int] = {}
        lane_by_row: List[int] = []
        append = lane_by_row.append
        for pid, is_out in zip(table.pair_ids, table.outbound):
            if is_out:
                lane = out_lane.get(pid)
                if lane is None:
                    lane = out_lane[pid] = shard_index_for(pairs[pid].src_addr)
            else:
                lane = in_lane.get(pid)
                if lane is None:
                    lane = in_lane[pid] = shard_index_for(pairs[pid].dst_addr)
            append(lane)
        groups = table.lane_positions(lane_by_row, len(self.shards))
        return (
            [table.select(group) for group in groups[:-1]],
            table.select(groups[-1]),
        )

    def decide(self, packet: Packet) -> Verdict:
        shard = self._shard_for(packet)
        if shard is None:
            self.unrouted_packets += 1
            return self.default_verdict
        return shard.process(packet)

    def process_batch(self, packets) -> List[Verdict]:
        """Batched decide-and-account: partition, then batch per shard.

        Shards touch disjoint state (a connection's packets share one
        inner address) and each carries its own RNG, so replaying one
        shard's sub-stream contiguously consumes exactly the draws the
        interleaved per-packet loop would — verdicts, member statistics
        and filter state come out bit-identical.  Each member filter gets
        its own :meth:`PacketFilter.process_batch` call, so bitmap shards
        take the fused columnar fast path in-process.
        """
        packet_list = packets if isinstance(packets, list) else list(packets)
        verdicts: List[Optional[Verdict]] = [None] * len(packet_list)
        lanes: Dict[int, List[int]] = {}
        shard_index_for = self.shard_index_for
        inner_address = self.inner_address
        for position, packet in enumerate(packet_list):
            shard_position = shard_index_for(inner_address(packet))
            if shard_position < 0:
                self.unrouted_packets += 1
                verdicts[position] = self.default_verdict
            else:
                lanes.setdefault(shard_position, []).append(position)
        for shard_position, positions in lanes.items():
            shard = self.shards[shard_position][2]
            shard_verdicts = shard.process_batch(
                [packet_list[position] for position in positions]
            )
            for position, verdict in zip(positions, shard_verdicts):
                verdicts[position] = verdict
        account = self.stats.account
        for packet, verdict in zip(packet_list, verdicts):
            account(packet, verdict)
        return verdicts

    def shard_stats(self) -> Dict[str, dict]:
        """Per-shard pass/drop accounting, keyed by network/prefix."""
        from repro.net.inet import format_ipv4

        return {
            f"{format_ipv4(network)}/{prefix_len}": shard.stats.as_dict()
            for network, prefix_len, shard in self.shards
        }

    def reset(self) -> None:
        super().reset()
        self.unrouted_packets = 0
        self._route_cache = {}
        for _, _, shard in self.shards:
            shard.reset()

    def __len__(self) -> int:
        return len(self.shards)
