"""Per-subnet sharded bitmap filters — the Figure 6 core-router placement.

"The bitmap filter can be installed ... on a core router, which is an
aggregate of two or more client networks."  At an aggregation point an
operator can run one big filter, or one *shard* per client network.
Sharding buys:

* per-network policy — each shard gets its own drop controller, so one
  customer's P2P load cannot push another customer's P_d up;
* capacity isolation — a connection-heavy network cannot raise the
  utilization (and hence the penetration probability, Eq. 2) of its
  neighbours' vectors;
* parallelism — shards touch disjoint memory.

A packet routes to the shard owning its *inner* address: the source for
outbound packets, the destination for inbound ones.  Packets matching no
shard (transit traffic) follow ``default_verdict``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.filters.base import PacketFilter, Verdict
from repro.net.inet import in_network
from repro.net.packet import Direction, Packet


class ShardedFilter(PacketFilter):
    """Route packets to per-client-network member filters."""

    name = "sharded"

    def __init__(
        self,
        shards: List[Tuple[int, int, PacketFilter]],
        default_verdict: Verdict = Verdict.PASS,
    ) -> None:
        """``shards`` is ``[(network, prefix_len, filter), ...]``.

        Networks are matched in order; overlapping prefixes are allowed
        (put more-specific first, as in a routing table).
        """
        super().__init__()
        if not shards:
            raise ValueError("need at least one shard")
        for network, prefix_len, _ in shards:
            if not 0 <= prefix_len <= 32:
                raise ValueError(f"bad prefix length {prefix_len}")
            if not 0 <= network < 2 ** 32:
                raise ValueError(f"bad network {network}")
        self.shards = shards
        self.default_verdict = default_verdict
        self.unrouted_packets = 0

    def _shard_for(self, packet: Packet) -> Optional[PacketFilter]:
        inner = (
            packet.pair.src_addr
            if packet.direction is Direction.OUTBOUND
            else packet.pair.dst_addr
        )
        for network, prefix_len, shard in self.shards:
            if in_network(inner, network, prefix_len):
                return shard
        return None

    def decide(self, packet: Packet) -> Verdict:
        shard = self._shard_for(packet)
        if shard is None:
            self.unrouted_packets += 1
            return self.default_verdict
        return shard.process(packet)

    def shard_stats(self) -> Dict[str, dict]:
        """Per-shard pass/drop accounting, keyed by network/prefix."""
        from repro.net.inet import format_ipv4

        return {
            f"{format_ipv4(network)}/{prefix_len}": shard.stats.as_dict()
            for network, prefix_len, shard in self.shards
        }

    def reset(self) -> None:
        super().reset()
        self.unrouted_packets = 0
        for _, _, shard in self.shards:
            shard.reset()

    def __len__(self) -> int:
        return len(self.shards)
