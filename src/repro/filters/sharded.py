"""Per-subnet sharded bitmap filters — the Figure 6 core-router placement.

"The bitmap filter can be installed ... on a core router, which is an
aggregate of two or more client networks."  At an aggregation point an
operator can run one big filter, or one *shard* per client network.
Sharding buys:

* per-network policy — each shard gets its own drop controller, so one
  customer's P2P load cannot push another customer's P_d up;
* capacity isolation — a connection-heavy network cannot raise the
  utilization (and hence the penetration probability, Eq. 2) of its
  neighbours' vectors;
* parallelism — shards touch disjoint memory.

Which lane owns a packet is a :class:`~repro.shard.plan.ShardPlan`
question — the same keying layer the parallel backend and the fleet
supervisor partition with.  The classic constructor builds an ordered
:class:`~repro.shard.plan.SubnetShardPlan` from ``(network, prefix,
filter)`` triples; :meth:`ShardedFilter.from_plan` accepts any plan
(e.g. a consistent-hash ring) with one member filter per lane.  Packets
matching no lane (transit traffic) follow ``default_verdict``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.filters.base import PacketFilter, Verdict
from repro.net.packet import Packet
from repro.shard.plan import ShardPlan, SubnetShardPlan, plan_from_spec


class ShardedFilter(PacketFilter):
    """Route packets to per-lane member filters under a shard plan."""

    name = "sharded"

    #: Shard-routing cache bound: distinct inner addresses resident at once.
    ROUTE_CACHE_SIZE = SubnetShardPlan.ROUTE_CACHE_SIZE

    def __init__(
        self,
        shards: List[Tuple[int, int, PacketFilter]],
        default_verdict: Verdict = Verdict.PASS,
        route_cache_size: int = ROUTE_CACHE_SIZE,
    ) -> None:
        """``shards`` is ``[(network, prefix_len, filter), ...]``.

        Networks are matched in order; overlapping prefixes are allowed
        (put more-specific first, as in a routing table).
        """
        super().__init__()
        if not shards:
            raise ValueError("need at least one shard")
        plan = SubnetShardPlan(
            [(network, prefix_len) for network, prefix_len, _ in shards],
            route_cache_size=route_cache_size,
        )
        self._bind_plan(plan, [member for _, _, member in shards], default_verdict)

    def _bind_plan(
        self, plan: ShardPlan, members: List[PacketFilter], default_verdict: Verdict
    ) -> None:
        if len(members) != plan.lanes:
            raise ValueError(
                f"plan has {plan.lanes} lanes but {len(members)} members given"
            )
        self.plan = plan
        self.members = members
        self.default_verdict = default_verdict
        self.unrouted_packets = 0

    @classmethod
    def from_plan(
        cls,
        plan: ShardPlan,
        members: List[PacketFilter],
        default_verdict: Verdict = Verdict.PASS,
    ) -> "ShardedFilter":
        """Build a sharded filter over any plan, one member per lane."""
        filt = cls.__new__(cls)
        PacketFilter.__init__(filt)
        filt._bind_plan(plan, list(members), default_verdict)
        return filt

    # -- routing (delegated to the plan) --------------------------------

    #: The client-side address that decides shard ownership.
    inner_address = staticmethod(ShardPlan.inner_address)

    @property
    def shards(self) -> List[Tuple[Optional[int], Optional[int], PacketFilter]]:
        """``(network, prefix_len, filter)`` triples view.  Plans without
        subnet keys (hash rings) carry ``None`` in the address slots."""
        subnets = getattr(self.plan, "subnets", None)
        if subnets is None:
            return [(None, None, member) for member in self.members]
        return [
            (network, prefix_len, member)
            for (network, prefix_len), member in zip(subnets, self.members)
        ]

    @property
    def _route_cache(self) -> Dict[int, int]:
        return getattr(self.plan, "_route_cache", {})

    def _scan_shard_index(self, inner: int) -> int:
        """Uncached lane resolution (-1 = unrouted)."""
        scan = getattr(self.plan, "scan", None)
        return scan(inner) if scan is not None else self.plan.lane_of(inner)

    def shard_index_for(self, inner: int) -> int:
        """Index of the shard owning an inner address, or -1 for transit
        traffic — memoized through the plan's bounded route cache."""
        return self.plan.lane_of(inner)

    def _shard_for(self, packet: Packet) -> Optional[PacketFilter]:
        position = self.plan.lane_of(self.inner_address(packet))
        if position < 0:
            return None
        return self.members[position]

    def shard_label(self, position: int) -> str:
        """Human-readable key of one shard (``network/prefix`` for subnet
        plans)."""
        return self.plan.label(position)

    def partition_packets(
        self, packets: Iterable[Packet]
    ) -> Tuple[List[List[Packet]], List[Packet]]:
        """Split a packet stream into per-shard sub-streams plus a default
        lane of transit packets (:meth:`ShardPlan.partition_packets`)."""
        return self.plan.partition_packets(packets)

    def partition_table(self, table):
        """Columnar twin of :meth:`partition_packets`
        (:meth:`ShardPlan.partition_table`)."""
        return self.plan.partition_table(table)

    # -- verdicts --------------------------------------------------------

    def decide(self, packet: Packet) -> Verdict:
        shard = self._shard_for(packet)
        if shard is None:
            self.unrouted_packets += 1
            return self.default_verdict
        return shard.process(packet)

    def process_batch(self, packets) -> List[Verdict]:
        """Batched decide-and-account: partition, then batch per shard.

        Shards touch disjoint state (a connection's packets share one
        inner address) and each carries its own RNG, so replaying one
        shard's sub-stream contiguously consumes exactly the draws the
        interleaved per-packet loop would — verdicts, member statistics
        and filter state come out bit-identical.  Each member filter gets
        its own :meth:`PacketFilter.process_batch` call, so bitmap shards
        take the fused columnar fast path in-process.
        """
        packet_list = packets if isinstance(packets, list) else list(packets)
        verdicts: List[Optional[Verdict]] = [None] * len(packet_list)
        lanes: Dict[int, List[int]] = {}
        lane_of = self.plan.lane_of
        inner_address = self.inner_address
        for position, packet in enumerate(packet_list):
            shard_position = lane_of(inner_address(packet))
            if shard_position < 0:
                self.unrouted_packets += 1
                verdicts[position] = self.default_verdict
            else:
                lanes.setdefault(shard_position, []).append(position)
        for shard_position, positions in lanes.items():
            shard = self.members[shard_position]
            shard_verdicts = shard.process_batch(
                [packet_list[position] for position in positions]
            )
            for position, verdict in zip(positions, shard_verdicts):
                verdicts[position] = verdict
        account = self.stats.account
        for packet, verdict in zip(packet_list, verdicts):
            account(packet, verdict)
        return verdicts

    # -- housekeeping ----------------------------------------------------

    def shard_stats(self) -> Dict[str, dict]:
        """Per-shard pass/drop accounting, keyed by the plan's labels."""
        return {
            self.plan.label(position): member.stats.as_dict()
            for position, member in enumerate(self.members)
        }

    def snapshot(self) -> dict:
        """Full state: the plan spec plus every member's snapshot — the
        document the fleet's offline-verify path rebuilds from."""
        return {
            "kind": self.name,
            "plan": self.plan.as_spec(),
            "default_verdict": self.default_verdict.name,
            "unrouted_packets": self.unrouted_packets,
            "stats": self.stats.snapshot(),
            "members": [member.snapshot() for member in self.members],
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "ShardedFilter":
        from repro.filters import restore_filter
        from repro.filters.base import FilterStats

        filt = cls.from_plan(
            plan_from_spec(snapshot["plan"]),
            [restore_filter(member, clock=clock)
             for member in snapshot["members"]],
            default_verdict=Verdict[snapshot["default_verdict"]],
        )
        filt.unrouted_packets = snapshot["unrouted_packets"]
        filt.stats = FilterStats.restore(snapshot["stats"])
        return filt

    def reset(self) -> None:
        super().reset()
        self.unrouted_packets = 0
        reset_cache = getattr(self.plan, "reset_cache", None)
        if reset_cache is not None:
            reset_cache()
        for member in self.members:
            member.reset()

    def __len__(self) -> int:
        return self.plan.lanes
