"""Throughput-driven drop control shared by every filter.

Couples a :class:`repro.core.throughput.ThroughputMeter` (fed with the
uplink bytes the filter passes) to a :class:`repro.core.dropper.DropPolicy`
(Equation 1).  Filters call :meth:`record_upload` for each passed outbound
packet and :meth:`probability` when an unmatched inbound packet needs a
``P_d``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.dropper import (
    DropPolicy,
    RedDropPolicy,
    StaticDropPolicy,
    restore_policy,
)
from repro.core.throughput import SlidingWindowMeter, ThroughputMeter, restore_meter


class DropController:
    """Glue between the uplink throughput estimate and ``P_d``."""

    def __init__(
        self,
        policy: Optional[DropPolicy] = None,
        meter: Optional[ThroughputMeter] = None,
    ) -> None:
        self.policy = policy if policy is not None else StaticDropPolicy(1.0)
        self.meter = meter if meter is not None else SlidingWindowMeter(window=1.0)

    def record_upload(self, timestamp: float, size_bytes: int) -> None:
        """Account one passed outbound packet toward the uplink rate."""
        self.meter.record(timestamp, size_bytes)

    def throughput_bps(self, now: float) -> float:
        return self.meter.rate_bps(now)

    def probability(self, now: float) -> float:
        """Current ``P_d`` given the measured uplink throughput."""
        return self.policy.probability(self.meter.rate_bps(now))

    def snapshot(self) -> dict:
        """Serializable policy + estimator state (the full ``P_d`` inputs)."""
        return {"policy": self.policy.snapshot(), "meter": self.meter.snapshot()}

    @classmethod
    def restore(cls, snapshot: dict) -> "DropController":
        """Rebuild a controller — policy parameters and the estimator's
        exact observation state — from :meth:`snapshot` output."""
        return cls(
            policy=restore_policy(snapshot["policy"]),
            meter=restore_meter(snapshot["meter"]),
        )

    @classmethod
    def red_mbps(
        cls, low_mbps: float, high_mbps: float, window: float = 1.0
    ) -> "DropController":
        """Convenience: Equation 1 with thresholds in Mbps (the paper uses
        L = 50 Mbps, H = 100 Mbps in section 5.3)."""
        return cls(
            policy=RedDropPolicy(low=low_mbps * 1e6, high=high_mbps * 1e6),
            meter=SlidingWindowMeter(window=window),
        )

    @classmethod
    def always_drop(cls) -> "DropController":
        """P_d = 1 — the Figure 8 configuration ('drop all inbound packets
        without states')."""
        return cls(policy=StaticDropPolicy(1.0))

    @classmethod
    def never_drop(cls) -> "DropController":
        return cls(policy=StaticDropPolicy(0.0))
