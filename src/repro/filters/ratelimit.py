"""Indiscriminate rate-limiting baselines.

What an ISP without the bitmap filter actually deploys: a policer on the
uplink that drops *whatever* exceeds the contracted rate — P2P uploads and
legitimate client request/response traffic alike.  Comparing these against
the bitmap filter quantifies the paper's real selling point: the bitmap
filter limits only *unsolicited inbound* (and the uploads it triggers),
leaving client-initiated traffic untouched.

Two classics:

* :class:`TokenBucketFilter` — token-bucket policing of one direction.
* :class:`RedPolicerFilter` — RED-style probabilistic policing (Equation 1
  applied to every packet of the policed direction, not just unmatched
  inbound packets).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.dropper import DropPolicy, RedDropPolicy, restore_policy
from repro.core.throughput import SlidingWindowMeter, ThroughputMeter, restore_meter
from repro.filters.base import (
    FilterStats,
    PacketFilter,
    Verdict,
    check_resume_clock,
    restore_rng_state,
    rng_state,
)
from repro.net.packet import Direction, Packet


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Tokens are bytes; a packet passes when the bucket holds its size.
    """

    def __init__(self, rate_bytes_per_sec: float, burst_bytes: float) -> None:
        if rate_bytes_per_sec <= 0:
            raise ValueError(f"rate must be positive: {rate_bytes_per_sec}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive: {burst_bytes}")
        self.rate = rate_bytes_per_sec
        self.burst = burst_bytes
        self._tokens = burst_bytes
        self._last = None  # type: Optional[float]

    def consume(self, now: float, size: int) -> bool:
        """Try to take ``size`` tokens at time ``now``."""
        if self._last is None:
            self._last = now
        elif now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
        if self._tokens >= size:
            self._tokens -= size
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class TokenBucketFilter(PacketFilter):
    """Police one direction with a token bucket; the other always passes."""

    name = "token-bucket"

    def __init__(
        self,
        rate_mbps: float,
        burst_bytes: Optional[float] = None,
        direction: Direction = Direction.OUTBOUND,
    ) -> None:
        super().__init__()
        rate_bytes = rate_mbps * 1e6 / 8.0
        self.bucket = TokenBucket(
            rate_bytes, burst_bytes if burst_bytes is not None else rate_bytes * 0.5
        )
        self.direction = direction

    def decide(self, packet: Packet) -> Verdict:
        if packet.direction is not self.direction:
            return Verdict.PASS
        if self.bucket.consume(packet.timestamp, packet.size):
            return Verdict.PASS
        return Verdict.DROP

    def snapshot(self) -> dict:
        """Bucket level and refill stamp — the filter's whole state."""
        return {
            "kind": self.name,
            "rate": self.bucket.rate,
            "burst": self.bucket.burst,
            "tokens": self.bucket._tokens,
            "last": self.bucket._last,
            "direction": self.direction.value,
            "stats": self.stats.snapshot(),
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "TokenBucketFilter":
        if snapshot.get("kind") not in (None, cls.name):
            raise ValueError(
                f"snapshot is for filter kind {snapshot['kind']!r}, not {cls.name!r}"
            )
        check_resume_clock(clock, cls.name)
        filt = cls.__new__(cls)
        PacketFilter.__init__(filt)
        # Rebuild the bucket from raw byte-rate, not a lossy rate_mbps
        # reconversion through the constructor.
        filt.bucket = TokenBucket(snapshot["rate"], snapshot["burst"])
        filt.bucket._tokens = snapshot["tokens"]
        filt.bucket._last = snapshot["last"]
        filt.direction = Direction(snapshot["direction"])
        filt.stats = FilterStats.restore(snapshot["stats"])
        return filt


class RedPolicerFilter(PacketFilter):
    """Equation-1 policing applied to every packet of one direction.

    Unlike the bitmap filter, this cannot distinguish a P2P upload from a
    web response leaving the network — both get the same P_d.
    """

    name = "red-policer"

    def __init__(
        self,
        policy: DropPolicy,
        meter: Optional[ThroughputMeter] = None,
        direction: Direction = Direction.OUTBOUND,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        self.policy = policy
        self.meter = meter if meter is not None else SlidingWindowMeter(window=1.0)
        self.direction = direction
        self._rng = rng or random.Random(0)

    @classmethod
    def mbps(cls, low_mbps: float, high_mbps: float, **kwargs) -> "RedPolicerFilter":
        return cls(RedDropPolicy(low=low_mbps * 1e6, high=high_mbps * 1e6), **kwargs)

    def decide(self, packet: Packet) -> Verdict:
        if packet.direction is not self.direction:
            return Verdict.PASS
        now = packet.timestamp
        probability = self.policy.probability(self.meter.rate_bps(now))
        if probability >= 1.0 or (probability > 0.0 and self._rng.random() < probability):
            return Verdict.DROP
        self.meter.record(now, packet.size)
        return Verdict.PASS

    def snapshot(self) -> dict:
        """Policy parameters, meter observations, RNG position."""
        return {
            "kind": self.name,
            "policy": self.policy.snapshot(),
            "meter": self.meter.snapshot(),
            "direction": self.direction.value,
            "rng": rng_state(self._rng),
            "stats": self.stats.snapshot(),
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "RedPolicerFilter":
        if snapshot.get("kind") not in (None, cls.name):
            raise ValueError(
                f"snapshot is for filter kind {snapshot['kind']!r}, not {cls.name!r}"
            )
        check_resume_clock(clock, cls.name)
        filt = cls.__new__(cls)
        PacketFilter.__init__(filt)
        filt.policy = restore_policy(snapshot["policy"])
        filt.meter = restore_meter(snapshot["meter"])
        filt.direction = Direction(snapshot["direction"])
        filt._rng = restore_rng_state(snapshot["rng"])
        filt.stats = FilterStats.restore(snapshot["stats"])
        return filt
