"""Stateful packet inspection (SPI) baseline filter.

The exact-state comparator of sections 2 and 5.3: a per-flow table keyed by
the canonical socket pair.  Outbound packets install or refresh state and
always pass; inbound packets pass when matching state exists, otherwise they
are dropped with probability ``P_d``.  Idle entries expire after
``idle_timeout`` seconds — the paper sets 240 s, "the default TIME_WAIT
timeout used in the Microsoft Windows operating system".

Unlike the bitmap filter, SPI sees TCP control flags, so it "knows the exact
time of closed connections and can therefore drop packets more precisely":
an RST removes state immediately and a FIN exchange retires it after the
close completes.  Memory and lookup structures grow with the number of live
flows — the O(n) cost the bitmap filter exists to avoid.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.filters.base import (
    FilterStats,
    PacketFilter,
    Verdict,
    check_resume_clock,
    restore_rng_state,
    rng_state,
)
from repro.filters.policy import DropController
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet, SocketPair


class _FlowState:
    """One tracked flow: last activity plus TCP close progress."""

    __slots__ = ("last_seen", "fin_fwd", "fin_rev", "expires_at")

    def __init__(self, now: float) -> None:
        self.last_seen = now
        self.fin_fwd = False
        self.fin_rev = False
        #: Hard deadline once the flow enters TIME_WAIT (None = idle rule).
        self.expires_at: Optional[float] = None

    @property
    def closing(self) -> bool:
        return self.fin_fwd and self.fin_rev


#: Measured per-tracked-flow footprint of the CPython structures: the
#: canonical :class:`SocketPair` key (80 B), a ``__slots__``
#: :class:`_FlowState` (64 B) and the amortized dict slot (~52 B) —
#: what the Figure-8 state/accuracy frontier charges the SPI baseline.
SPI_BYTES_PER_FLOW = 200


class SPIFilter(PacketFilter):
    """Exact per-flow positive-listing filter."""

    name = "spi"

    def __init__(
        self,
        idle_timeout: float = 240.0,
        time_wait: float = 10.0,
        drop_controller: Optional[DropController] = None,
        rng: Optional[random.Random] = None,
        gc_interval: float = 30.0,
    ) -> None:
        super().__init__()
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {idle_timeout}")
        if time_wait < 0:
            raise ValueError(f"time_wait must be non-negative: {time_wait}")
        if gc_interval <= 0:
            raise ValueError(f"gc_interval must be positive: {gc_interval}")
        self.idle_timeout = idle_timeout
        #: How long a FIN-closed flow lingers so the close handshake's own
        #: trailing segments still match state (TIME_WAIT).
        self.time_wait = time_wait
        self.drop_controller = drop_controller or DropController.always_drop()
        self._rng = rng or random.Random(0)
        self._table: Dict[SocketPair, _FlowState] = {}
        self._gc_interval = gc_interval
        self._next_gc: Optional[float] = None
        #: High-water mark of the flow table — the state a real SPI
        #: device must provision for (the frontier's x-axis for the
        #: unbounded-state baseline).  Maintained at both install sites
        #: (here and the fused kernel's).
        self.peak_flows = 0

    @property
    def tracked_flows(self) -> int:
        """Current state-table size — the baseline's O(n) footprint."""
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        """Current state footprint (:data:`SPI_BYTES_PER_FLOW` per flow)."""
        return len(self._table) * SPI_BYTES_PER_FLOW

    @property
    def peak_memory_bytes(self) -> int:
        """Provisioned state: the flow-table high-water mark in bytes."""
        return self.peak_flows * SPI_BYTES_PER_FLOW

    def decide(self, packet: Packet) -> Verdict:
        now = packet.timestamp
        self._maybe_gc(now)
        key = packet.pair.canonical

        if packet.direction is Direction.OUTBOUND:
            state = self._table.get(key)
            if state is None or packet.is_syn:
                # New flow, or a fresh SYN reusing a five-tuple: (re)install.
                state = _FlowState(now)
                self._table[key] = state
                if len(self._table) > self.peak_flows:
                    self.peak_flows = len(self._table)
            else:
                state.last_seen = now
            self._track_close(state, packet, key, forward=True)
            self.drop_controller.record_upload(now, packet.size)
            return Verdict.PASS

        state = self._table.get(key)
        if state is not None and self._alive(state, now):
            state.last_seen = now
            self._track_close(state, packet, key, forward=False)
            return Verdict.PASS
        if state is not None:
            # Idle past the timeout (or TIME_WAIT elapsed): drop the entry.
            del self._table[key]
        probability = self.drop_controller.probability(now)
        # Guarded draw (the RED policer's form): P_d = 0 must not consume
        # from the RNG stream, or a no-drop phase desynchronizes replays.
        if probability >= 1.0 or (probability > 0.0 and self._rng.random() < probability):
            return Verdict.DROP
        return Verdict.PASS

    def _alive(self, state: _FlowState, now: float) -> bool:
        if state.expires_at is not None:
            return now <= state.expires_at
        return now - state.last_seen <= self.idle_timeout

    def _track_close(
        self, state: _FlowState, packet: Packet, key: SocketPair, forward: bool
    ) -> None:
        if packet.pair.protocol != IPPROTO_TCP:
            return
        if packet.is_rst:
            # Abortive close: the connection is gone immediately.
            self._table.pop(key, None)
            return
        if packet.is_fin:
            if forward:
                state.fin_fwd = True
            else:
                state.fin_rev = True
            if state.closing:
                # Orderly close: linger in TIME_WAIT so the handshake's
                # trailing ACK still matches, then expire hard.
                state.expires_at = packet.timestamp + self.time_wait

    def _maybe_gc(self, now: float) -> None:
        """Periodically evict idle flows so the table tracks live state."""
        if self._next_gc is None:
            self._next_gc = now + self._gc_interval
            return
        if now < self._next_gc:
            return
        self._next_gc = now + self._gc_interval
        stale = [key for key, state in self._table.items() if not self._alive(state, now)]
        for key in stale:
            del self._table[key]

    def reset(self) -> None:
        super().reset()
        self._table.clear()
        self._next_gc = None
        self.peak_flows = 0

    def snapshot(self) -> dict:
        """Flow table, timers, RNG position and controller state."""
        return {
            "kind": self.name,
            "idle_timeout": self.idle_timeout,
            "time_wait": self.time_wait,
            "gc_interval": self._gc_interval,
            "next_gc": self._next_gc,
            "peak_flows": self.peak_flows,
            "rng": rng_state(self._rng),
            "controller": self.drop_controller.snapshot(),
            "stats": self.stats.snapshot(),
            "flows": [
                [list(key), state.last_seen, state.fin_fwd, state.fin_rev,
                 state.expires_at]
                for key, state in self._table.items()
            ],
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "SPIFilter":
        if snapshot.get("kind") not in (None, cls.name):
            raise ValueError(
                f"snapshot is for filter kind {snapshot['kind']!r}, not {cls.name!r}"
            )
        check_resume_clock(clock, cls.name)
        filt = cls.__new__(cls)
        PacketFilter.__init__(filt)
        filt.idle_timeout = snapshot["idle_timeout"]
        filt.time_wait = snapshot["time_wait"]
        filt._gc_interval = snapshot["gc_interval"]
        filt._next_gc = snapshot["next_gc"]
        filt._rng = restore_rng_state(snapshot["rng"])
        filt.drop_controller = DropController.restore(snapshot["controller"])
        filt.stats = FilterStats.restore(snapshot["stats"])
        filt._table = {}
        for fields, last_seen, fin_fwd, fin_rev, expires_at in snapshot["flows"]:
            state = _FlowState(last_seen)
            state.fin_fwd = fin_fwd
            state.fin_rev = fin_rev
            state.expires_at = expires_at
            filt._table[SocketPair(*fields)] = state
        # Pre-peak-tracking snapshots: the live table is the best floor.
        filt.peak_flows = snapshot.get("peak_flows", len(filt._table))
        return filt
