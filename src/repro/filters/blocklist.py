"""Blocked-connection persistence for trace replay (section 5.3).

"To simulate a blocked connection, when an inbound packet is decided to be
dropped by the bitmap filter, the socket pair σ of that packet is stored
and all the future packets that match any stored σ or σ̄ are all dropped
without checking the bitmap."

This models what happens in a live network — a dropped connection attempt
never establishes, so none of its later packets exist — which a passive
replay cannot otherwise express.  Entries age out after ``retention``
seconds so a peer retrying much later is treated as a fresh attempt.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.packet import Packet, SocketPair


class BlockedConnectionStore:
    """Remembers dropped connections so their later packets stay dropped."""

    def __init__(self, retention: Optional[float] = 3600.0, gc_interval: float = 300.0):
        if retention is not None and retention <= 0:
            raise ValueError(f"retention must be positive or None: {retention}")
        self.retention = retention
        self._blocked: Dict[SocketPair, float] = {}
        self._gc_interval = gc_interval
        self._next_gc: Optional[float] = None
        self.suppressed_packets = 0
        self.suppressed_bytes = 0

    def __len__(self) -> int:
        return len(self._blocked)

    def block(self, pair: SocketPair, now: float) -> None:
        """Record a dropped connection (stored under its canonical form so
        σ and σ̄ both match)."""
        self._blocked[pair.canonical] = now

    def is_blocked(self, pair: SocketPair, now: float) -> bool:
        stamped = self._blocked.get(pair.canonical)
        if stamped is None:
            return False
        if self.retention is not None and now - stamped > self.retention:
            del self._blocked[pair.canonical]
            return False
        return True

    def suppress(self, packet: Packet) -> bool:
        """True when the packet belongs to a blocked connection; accounts
        it and refreshes the block timestamp (an active retry keeps the
        connection blocked)."""
        return self.suppress_fields(packet.pair, packet.timestamp, packet.size)

    def suppress_fields(self, pair: SocketPair, now: float, size: int) -> bool:
        """Field-wise :meth:`suppress` — the columnar replay path carries
        (pair, timestamp, size) as separate columns and never builds a
        :class:`Packet` just to ask this question."""
        self._maybe_gc(now)
        if not self.is_blocked(pair, now):
            return False
        self._blocked[pair.canonical] = now
        self.suppressed_packets += 1
        self.suppressed_bytes += size
        return True

    def _maybe_gc(self, now: float) -> None:
        if self.retention is None:
            return
        if self._next_gc is None:
            self._next_gc = now + self._gc_interval
            return
        if now < self._next_gc:
            return
        self._next_gc = now + self._gc_interval
        self.compact(now)

    def compact(self, now: float) -> None:
        """Drop every entry already outside ``retention`` as of ``now``.

        Interior GC runs opportunistically (every ``gc_interval`` of
        *observed* packet time), so which expired entries still linger in
        the table depends on the store's packet arrival pattern — e.g. a
        partitioned replay's per-lane stores GC on their own lanes'
        clocks.  Expiry itself is per-connection (``is_blocked`` checks
        each pair's own stamp), so verdicts never depend on GC timing;
        compacting at end of replay makes the *final table contents*
        deterministic too: exactly the entries still within retention.
        """
        if self.retention is None:
            return
        horizon = now - self.retention
        stale = [pair for pair, stamped in self._blocked.items() if stamped < horizon]
        for pair in stale:
            del self._blocked[pair]

    def clear(self) -> None:
        self._blocked.clear()
        self.suppressed_packets = 0
        self.suppressed_bytes = 0
        self._next_gc = None

    def snapshot(self) -> dict:
        """Serializable store state (entries + counters + GC clock).

        Entries travel as flat ``[protocol, src_addr, src_port, dst_addr,
        dst_port, stamp]`` rows — plain JSON-safe data.  A restored store
        keeps refusing exactly the connections the snapshotted one did,
        which is what makes a service warm restart verdict-identical:
        a blocked σ forgotten across the restart would get a fresh trip
        through the filter.
        """
        return {
            "retention": self.retention,
            "gc_interval": self._gc_interval,
            "next_gc": self._next_gc,
            "suppressed_packets": self.suppressed_packets,
            "suppressed_bytes": self.suppressed_bytes,
            "blocked": [
                [*pair, stamp] for pair, stamp in self._blocked.items()
            ],
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "BlockedConnectionStore":
        """Rebuild a store from :meth:`snapshot` output."""
        store = cls(
            retention=snapshot["retention"],
            gc_interval=snapshot["gc_interval"],
        )
        store._next_gc = snapshot["next_gc"]
        store.suppressed_packets = snapshot["suppressed_packets"]
        store.suppressed_bytes = snapshot["suppressed_bytes"]
        for protocol, src_addr, src_port, dst_addr, dst_port, stamp in snapshot[
            "blocked"
        ]:
            store._blocked[
                SocketPair(protocol, src_addr, src_port, dst_addr, dst_port)
            ] = stamp
        return store
