"""The packet-filter interface shared by SPI, naïve and bitmap filters."""

from __future__ import annotations

import enum
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.net.packet import Direction, Packet


class Verdict(enum.Enum):
    """Outcome of filtering one packet (Algorithm 2 returns PASS or DROP)."""

    PASS = "pass"
    DROP = "drop"


class SnapshotUnsupported(RuntimeError):
    """Raised when a filter cannot produce a faithful snapshot.

    A warm restart built on a lossy snapshot silently forgets flow
    tables, counters or RNG positions; refusing loudly is the only safe
    default for filters without explicit snapshot/restore hooks.
    """


def rng_state(rng: random.Random) -> list:
    """A ``random.Random`` state as JSON-safe data (version, words, gauss)."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def restore_rng_state(state) -> random.Random:
    """Rebuild a ``random.Random`` from :func:`rng_state` output."""
    version, internal, gauss = state
    rng = random.Random()
    rng.setstate((version, tuple(internal), gauss))
    return rng


def check_resume_clock(clock: str, name: str) -> None:
    """Reject restore clocks other than ``"resume"``.

    The bitmap filter's ``"reanchor"`` mode rebases a rotation *phase*;
    flow tables, bucket refill stamps and sliding-window samples keep
    absolute trace-time stamps with no phase to rebase, so restoring
    them onto a different clock would be a silent state loss.
    """
    if clock != "resume":
        raise ValueError(
            f"filter {name!r} snapshots can only be restored with "
            f"clock='resume', got {clock!r}"
        )


@dataclass
class FilterStats:
    """Per-direction pass/drop accounting for any filter."""

    passed: Dict[Direction, int] = field(
        default_factory=lambda: {Direction.OUTBOUND: 0, Direction.INBOUND: 0}
    )
    dropped: Dict[Direction, int] = field(
        default_factory=lambda: {Direction.OUTBOUND: 0, Direction.INBOUND: 0}
    )
    passed_bytes: Dict[Direction, int] = field(
        default_factory=lambda: {Direction.OUTBOUND: 0, Direction.INBOUND: 0}
    )
    dropped_bytes: Dict[Direction, int] = field(
        default_factory=lambda: {Direction.OUTBOUND: 0, Direction.INBOUND: 0}
    )

    def account(self, packet: Packet, verdict: Verdict) -> None:
        direction = packet.direction
        if direction is None:
            raise ValueError("packet has no direction set")
        if verdict is Verdict.PASS:
            self.passed[direction] += 1
            self.passed_bytes[direction] += packet.size
        else:
            self.dropped[direction] += 1
            self.dropped_bytes[direction] += packet.size

    @property
    def total(self) -> int:
        return sum(self.passed.values()) + sum(self.dropped.values())

    def drop_rate(self, direction: Direction = Direction.INBOUND) -> float:
        """Fraction of packets dropped in a direction (Figure 8's metric)."""
        seen = self.passed[direction] + self.dropped[direction]
        if seen == 0:
            return 0.0
        return self.dropped[direction] / seen

    def overall_drop_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return sum(self.dropped.values()) / self.total

    def as_dict(self) -> dict:
        return {
            "passed_outbound": self.passed[Direction.OUTBOUND],
            "passed_inbound": self.passed[Direction.INBOUND],
            "dropped_outbound": self.dropped[Direction.OUTBOUND],
            "dropped_inbound": self.dropped[Direction.INBOUND],
            "inbound_drop_rate": self.drop_rate(Direction.INBOUND),
        }

    def snapshot(self) -> dict:
        """Full per-direction counters as plain JSON-safe data (unlike
        :meth:`as_dict`, which is a lossy report shape)."""
        return {
            "passed": {d.value: self.passed[d] for d in self.passed},
            "dropped": {d.value: self.dropped[d] for d in self.dropped},
            "passed_bytes": {d.value: self.passed_bytes[d] for d in self.passed_bytes},
            "dropped_bytes": {
                d.value: self.dropped_bytes[d] for d in self.dropped_bytes
            },
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "FilterStats":
        stats = cls()
        for name in ("passed", "dropped", "passed_bytes", "dropped_bytes"):
            counters = getattr(stats, name)
            for key, count in snapshot[name].items():
                counters[Direction(key)] = count
        return stats

    def merge(self, other: "FilterStats") -> "FilterStats":
        """Accumulate another stats record into this one (in place).

        Counters are pure sums, so merging per-worker stats from a
        partitioned replay is order-independent and exact.  Returns
        ``self`` so merges chain.
        """
        for direction in (Direction.OUTBOUND, Direction.INBOUND):
            self.passed[direction] += other.passed[direction]
            self.dropped[direction] += other.dropped[direction]
            self.passed_bytes[direction] += other.passed_bytes[direction]
            self.dropped_bytes[direction] += other.dropped_bytes[direction]
        return self

    def __add__(self, other: "FilterStats") -> "FilterStats":
        return FilterStats().merge(self).merge(other)


class PacketFilter(ABC):
    """A stateful packet filter at the edge of a client network.

    Subclasses implement :meth:`decide`; :meth:`process` wraps it with
    statistics.  Filters receive packets in timestamp order; any internal
    timers are driven by packet timestamps (trace time), never wall-clock.
    """

    name = "filter"

    def __init__(self) -> None:
        self.stats = FilterStats()

    @abstractmethod
    def decide(self, packet: Packet) -> Verdict:
        """Return PASS or DROP for one packet, updating internal state."""

    def process(self, packet: Packet) -> Verdict:
        """Decide and account one packet."""
        verdict = self.decide(packet)
        self.stats.account(packet, verdict)
        return verdict

    def process_batch(self, packets: Sequence[Packet]) -> List[Verdict]:
        """Decide and account a timestamp-ordered batch of packets.

        A first-class protocol stage: the replay engine's batched backend
        (:class:`repro.sim.pipeline.BatchedBackend`) drives *every*
        filter through this method, so overriding it is all a filter
        needs to do to join the fast path.  The contract is bit-identical
        behavior with the per-packet loop — same verdicts in order, same
        statistics, same RNG consumption.  The default is a plain loop
        over :meth:`process`, which satisfies the contract by
        construction; filters with a genuinely batched implementation
        override it (the bitmap filter's fused columnar loop, the sharded
        filter's per-shard partitioning).
        """
        return [self.process(packet) for packet in packets]

    def reset(self) -> None:
        """Forget all per-flow state and statistics."""
        self.stats = FilterStats()

    def snapshot(self) -> dict:
        """Full internal state as JSON-safe data, or raise.

        Filters that support exact warm restart override this (and a
        matching ``restore`` classmethod).  The default refuses rather
        than letting :class:`repro.service.FilterService` persist a
        snapshot that silently drops state.
        """
        raise SnapshotUnsupported(
            f"filter {self.name!r} ({type(self).__name__}) has no "
            "snapshot/restore hooks; a warm restart would lose its state"
        )


class AcceptAllFilter(PacketFilter):
    """Pass everything — the 'no filtering' control for comparisons."""

    name = "accept-all"

    def decide(self, packet: Packet) -> Verdict:
        return Verdict.PASS
