"""The section 4.2 "naïve solution": exact per-socket-pair timers.

"Suppose that a timer with an initial value of T is associated with the
socket pair σ_out of each outbound packet that is new to an edge router.
If the socket pair σ_out is not new to the router, the value of the
associated timer is simply reset to T.  [...] When the timer expires, the
associated socket pair is deleted.  For each inbound packet, the router
extracts the socket pair σ_in and checks if its inverse exists.  If it
exists, the packet is bypassed; otherwise, it is dropped under certain
probability P_d."

This filter is behaviourally *exact* — it is what the bitmap filter
approximates with constant memory.  It doubles as the reference model in
property-based tests: the bitmap filter must never drop an inbound packet
whose pair was marked within ``(k-1)·Δt`` seconds, which is precisely this
filter with ``T = (k-1)·Δt``.

The countdown timers are implemented as absolute expiry timestamps; an
entry older than ``T`` at lookup time is treated as deleted (lazy expiry)
and periodically garbage-collected.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.core.bitmap_filter import FieldMode
from repro.filters.base import PacketFilter, Verdict
from repro.filters.policy import DropController
from repro.net.packet import Direction, Packet, SocketPair


class NaiveTimerFilter(PacketFilter):
    """Exact positive-listing filter with per-pair expiry timers."""

    name = "naive-timer"

    def __init__(
        self,
        expiry: float = 20.0,
        field_mode: FieldMode = FieldMode.STRICT,
        drop_controller: Optional[DropController] = None,
        rng: Optional[random.Random] = None,
        gc_interval: float = 60.0,
    ) -> None:
        super().__init__()
        if expiry <= 0:
            raise ValueError(f"expiry must be positive: {expiry}")
        self.expiry = expiry
        self.field_mode = field_mode
        self.drop_controller = drop_controller or DropController.always_drop()
        self._rng = rng or random.Random(0)
        self._deadlines: Dict[Tuple[int, ...], float] = {}
        self._gc_interval = gc_interval
        self._next_gc: Optional[float] = None

    @property
    def tracked_pairs(self) -> int:
        return len(self._deadlines)

    def _key(self, pair: SocketPair, direction: Direction) -> Tuple[int, ...]:
        """Outbound-oriented key, honouring the hole-punching field choice
        exactly as :class:`repro.core.bitmap_filter.BitmapFilter` does."""
        if direction is Direction.INBOUND:
            pair = pair.inverse
        if self.field_mode is FieldMode.HOLE_PUNCHING:
            return (pair.protocol, pair.src_addr, pair.src_port, pair.dst_addr)
        return tuple(pair)

    def decide(self, packet: Packet) -> Verdict:
        now = packet.timestamp
        self._maybe_gc(now)
        key = self._key(packet.pair, packet.direction)

        if packet.direction is Direction.OUTBOUND:
            self._deadlines[key] = now + self.expiry
            self.drop_controller.record_upload(now, packet.size)
            return Verdict.PASS

        deadline = self._deadlines.get(key)
        if deadline is not None:
            if now <= deadline:
                return Verdict.PASS
            del self._deadlines[key]  # lazy expiry
        probability = self.drop_controller.probability(now)
        if probability >= 1.0 or self._rng.random() < probability:
            return Verdict.DROP
        return Verdict.PASS

    def knows(self, pair: SocketPair, direction: Direction, now: float) -> bool:
        """Non-mutating membership check (for tests and cross-validation)."""
        deadline = self._deadlines.get(self._key(pair, direction))
        return deadline is not None and now <= deadline

    def _maybe_gc(self, now: float) -> None:
        if self._next_gc is None:
            self._next_gc = now + self._gc_interval
            return
        if now < self._next_gc:
            return
        self._next_gc = now + self._gc_interval
        expired = [key for key, deadline in self._deadlines.items() if deadline < now]
        for key in expired:
            del self._deadlines[key]

    def reset(self) -> None:
        super().reset()
        self._deadlines.clear()
        self._next_gc = None
