"""Filter composition.

A :class:`FilterChain` runs packets through a sequence of filters with
first-DROP-wins semantics, so deployments can stack e.g. a static ACL in
front of the bitmap filter.  Each member filter keeps its own statistics;
the chain aggregates a combined verdict count.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.filters.base import FilterStats, PacketFilter, Verdict
from repro.net.packet import Packet


class FilterChain(PacketFilter):
    """Sequential composition of packet filters (first DROP wins)."""

    name = "chain"

    def __init__(self, filters: Iterable[PacketFilter]) -> None:
        super().__init__()
        self.filters: List[PacketFilter] = list(filters)
        if not self.filters:
            raise ValueError("a chain needs at least one filter")

    def decide(self, packet: Packet) -> Verdict:
        for packet_filter in self.filters:
            if packet_filter.process(packet) is Verdict.DROP:
                return Verdict.DROP
        return Verdict.PASS

    def reset(self) -> None:
        super().reset()
        for packet_filter in self.filters:
            packet_filter.reset()

    def member_stats(self) -> List[FilterStats]:
        return [packet_filter.stats for packet_filter in self.filters]

    def __len__(self) -> int:
        return len(self.filters)
