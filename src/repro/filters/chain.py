"""Filter composition.

A :class:`FilterChain` runs packets through a sequence of filters with
first-DROP-wins semantics, so deployments can stack e.g. a static ACL in
front of the bitmap filter.  Each member filter keeps its own statistics;
the chain aggregates a combined verdict count.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.filters.base import FilterStats, PacketFilter, Verdict
from repro.net.packet import Packet


class FilterChain(PacketFilter):
    """Sequential composition of packet filters (first DROP wins)."""

    name = "chain"

    def __init__(self, filters: Iterable[PacketFilter]) -> None:
        super().__init__()
        self.filters: List[PacketFilter] = list(filters)
        if not self.filters:
            raise ValueError("a chain needs at least one filter")

    def decide(self, packet: Packet) -> Verdict:
        for packet_filter in self.filters:
            if packet_filter.process(packet) is Verdict.DROP:
                return Verdict.DROP
        return Verdict.PASS

    def reset(self) -> None:
        super().reset()
        for packet_filter in self.filters:
            packet_filter.reset()

    def member_stats(self) -> List[FilterStats]:
        return [packet_filter.stats for packet_filter in self.filters]

    def __len__(self) -> int:
        return len(self.filters)

    def snapshot(self) -> dict:
        """Member snapshots in chain order plus the aggregate counters.

        Raises :class:`~repro.filters.base.SnapshotUnsupported` if any
        member lacks snapshot hooks — a chain snapshot missing one
        member's state would be exactly the lossy restart this API
        refuses to produce.
        """
        return {
            "kind": self.name,
            "stats": self.stats.snapshot(),
            "filters": [packet_filter.snapshot() for packet_filter in self.filters],
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "FilterChain":
        from repro.filters import restore_filter  # local import: cycle guard

        if snapshot.get("kind") not in (None, cls.name):
            raise ValueError(
                f"snapshot is for filter kind {snapshot['kind']!r}, not {cls.name!r}"
            )
        chain = cls(
            restore_filter(member, clock=clock) for member in snapshot["filters"]
        )
        chain.stats = FilterStats.restore(snapshot["stats"])
        return chain
