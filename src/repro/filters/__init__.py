"""Packet filters under a common interface.

Three filters implement the paper's positive-listing idea at different
cost/fidelity points:

* :class:`SPIFilter` — exact per-flow state (the Linux-conntrack-style
  baseline of sections 2 and 5.3); O(flows) memory.
* :class:`NaiveTimerFilter` — the section 4.2 "naïve solution": a per-
  socket-pair countdown timer; exact, O(pairs) memory.
* :class:`BitmapPacketFilter` — the paper's contribution; constant memory.

All consume :class:`repro.net.packet.Packet` objects with directions set
and return a :class:`Verdict`.
"""

from repro.filters.base import (
    AcceptAllFilter,
    FilterStats,
    PacketFilter,
    SnapshotUnsupported,
    Verdict,
)
from repro.filters.spi import SPIFilter
from repro.filters.naive import NaiveTimerFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.blocklist import BlockedConnectionStore
from repro.filters.chain import FilterChain
from repro.filters.counting import CountingBitmapFilter
from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter

#: Snapshot ``kind`` tag → restoring filter class.
_SNAPSHOT_KINDS = {
    BitmapPacketFilter.name: BitmapPacketFilter,
    SPIFilter.name: SPIFilter,
    CountingBitmapFilter.name: CountingBitmapFilter,
    TokenBucketFilter.name: TokenBucketFilter,
    RedPolicerFilter.name: RedPolicerFilter,
    FilterChain.name: FilterChain,
}


def restore_filter(snapshot: dict, clock: str = "resume") -> PacketFilter:
    """Rebuild any snapshot-capable filter from its ``snapshot()`` output.

    Dispatches on the snapshot's ``kind`` tag.  Untagged snapshots are
    bitmap-filter state from before tagging existed.  ``clock`` passes
    through to the filter's ``restore`` — only the bitmap filter accepts
    anything other than ``"resume"``.
    """
    kind = snapshot.get("kind")
    if kind is None:
        return BitmapPacketFilter.restore(snapshot, clock=clock)
    if kind == "sharded":
        # Imported on demand: the sharded filter sits on top of the
        # repro.shard plan layer, which this package init stays below.
        from repro.filters.sharded import ShardedFilter

        return ShardedFilter.restore(snapshot, clock=clock)
    filter_cls = _SNAPSHOT_KINDS.get(kind)
    if filter_cls is None:
        raise ValueError(f"unknown filter snapshot kind {kind!r}")
    return filter_cls.restore(snapshot, clock=clock)


__all__ = [
    "Verdict",
    "FilterStats",
    "PacketFilter",
    "AcceptAllFilter",
    "SnapshotUnsupported",
    "SPIFilter",
    "NaiveTimerFilter",
    "BitmapPacketFilter",
    "CountingBitmapFilter",
    "TokenBucketFilter",
    "RedPolicerFilter",
    "BlockedConnectionStore",
    "FilterChain",
    "restore_filter",
]
