"""Packet filters under a common interface.

Three filters implement the paper's positive-listing idea at different
cost/fidelity points:

* :class:`SPIFilter` — exact per-flow state (the Linux-conntrack-style
  baseline of sections 2 and 5.3); O(flows) memory.
* :class:`NaiveTimerFilter` — the section 4.2 "naïve solution": a per-
  socket-pair countdown timer; exact, O(pairs) memory.
* :class:`BitmapPacketFilter` — the paper's contribution; constant memory.

All consume :class:`repro.net.packet.Packet` objects with directions set
and return a :class:`Verdict`.
"""

from repro.filters.base import AcceptAllFilter, FilterStats, PacketFilter, Verdict
from repro.filters.spi import SPIFilter
from repro.filters.naive import NaiveTimerFilter
from repro.filters.bitmap import BitmapPacketFilter
from repro.filters.blocklist import BlockedConnectionStore
from repro.filters.chain import FilterChain
from repro.filters.counting import CountingBitmapFilter
from repro.filters.ratelimit import RedPolicerFilter, TokenBucketFilter

__all__ = [
    "Verdict",
    "FilterStats",
    "PacketFilter",
    "AcceptAllFilter",
    "SPIFilter",
    "NaiveTimerFilter",
    "BitmapPacketFilter",
    "CountingBitmapFilter",
    "TokenBucketFilter",
    "RedPolicerFilter",
    "BlockedConnectionStore",
    "FilterChain",
]
