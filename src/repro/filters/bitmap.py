"""The bitmap filter packaged as a :class:`PacketFilter`.

Wraps :class:`repro.core.bitmap_filter.BitmapFilter` with timestamp-driven
rotation and throughput-driven ``P_d`` so it drops into the same replay
harness as the SPI and naïve baselines.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.filters.base import PacketFilter, Verdict
from repro.filters.policy import DropController
from repro.net.packet import Direction, Packet


class BitmapPacketFilter(PacketFilter):
    """Constant-memory positive-listing filter (the paper's contribution)."""

    name = "bitmap"

    def __init__(
        self,
        config: Optional[BitmapFilterConfig] = None,
        drop_controller: Optional[DropController] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        self.core = BitmapFilter(config, rng=rng or random.Random(0))
        self.drop_controller = drop_controller or DropController.always_drop()

    @property
    def config(self) -> BitmapFilterConfig:
        return self.core.config

    def decide(self, packet: Packet) -> Verdict:
        now = packet.timestamp
        self.core.advance_to(now)

        if packet.direction is Direction.OUTBOUND:
            self.core.mark_outbound(packet.pair)
            self.drop_controller.record_upload(now, packet.size)
            return Verdict.PASS

        probability = self.drop_controller.probability(now)
        passed = self.core.filter(packet.pair, Direction.INBOUND, probability)
        return Verdict.PASS if passed else Verdict.DROP

    @property
    def memory_bytes(self) -> int:
        """Fixed bitmap footprint — independent of flow count, unlike SPI."""
        return self.config.memory_bytes

    def reset(self) -> None:
        super().reset()
        self.core.reset()
