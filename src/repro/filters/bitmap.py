"""The bitmap filter packaged as a :class:`PacketFilter`.

Wraps :class:`repro.core.bitmap_filter.BitmapFilter` with timestamp-driven
rotation and throughput-driven ``P_d`` so it drops into the same replay
harness as the SPI and naïve baselines.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.dropper import StaticDropPolicy
from repro.core.hashing import HashIndexMemo
from repro.filters.base import FilterStats, PacketFilter, Verdict
from repro.filters.policy import DropController
from repro.net.packet import Direction, Packet


class BitmapPacketFilter(PacketFilter):
    """Constant-memory positive-listing filter (the paper's contribution)."""

    name = "bitmap"

    def __init__(
        self,
        config: Optional[BitmapFilterConfig] = None,
        drop_controller: Optional[DropController] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        self.core = BitmapFilter(config, rng=rng or random.Random(0))
        self.drop_controller = drop_controller or DropController.always_drop()
        #: Socket-pair → hash-indices LRU shared by every batched replay of
        #: this filter; a pure function of the hash family, so it survives
        #: :meth:`reset` and repeated batches.
        self.hash_memo = HashIndexMemo(self.core.family)

    @property
    def config(self) -> BitmapFilterConfig:
        return self.core.config

    def decide(self, packet: Packet) -> Verdict:
        now = packet.timestamp
        self.core.advance_to(now)

        if packet.direction is Direction.OUTBOUND:
            self.core.mark_outbound(packet.pair)
            self.drop_controller.record_upload(now, packet.size)
            return Verdict.PASS

        probability = self.drop_controller.probability(now)
        passed = self.core.filter(packet.pair, Direction.INBOUND, probability)
        return Verdict.PASS if passed else Verdict.DROP

    def process_batch(self, packets: Sequence[Packet]) -> List[Verdict]:
        """Batched decide-and-account; identical to per-packet :meth:`process`.

        Columnarizes the batch (precomputed hash indices via the memo),
        pre-computes the per-packet ``P_d`` sequence — the throughput meter
        is fed only by outbound packets, so its trajectory is independent
        of drop decisions — and runs the byte-staged
        :meth:`BitmapFilter.process_batch` core loop.
        """
        from repro.sim.fastpath import PacketColumns

        columns = PacketColumns.from_packets(packets, self)
        controller = self.drop_controller
        probabilities: Optional[List[float]] = None
        if isinstance(controller.policy, StaticDropPolicy):
            drop_probability = controller.policy.probability(0.0)
        else:
            drop_probability = 1.0
            probabilities = [0.0] * len(columns)
            record = controller.meter.record
            probability_at = controller.probability
            for position, is_outbound in enumerate(columns.outbound):
                if is_outbound:
                    record(columns.timestamps[position], columns.sizes[position])
                else:
                    probabilities[position] = probability_at(
                        columns.timestamps[position]
                    )
        passed = self.core.process_batch(
            columns.timestamps,
            columns.outbound,
            columns.indices,
            drop_probability=drop_probability,
            drop_probabilities=probabilities,
        )
        if probabilities is None:
            # Static policy: the meter still has to see the uplink bytes.
            record = controller.meter.record
            for position, is_outbound in enumerate(columns.outbound):
                if is_outbound:
                    record(columns.timestamps[position], columns.sizes[position])
        stats = self.stats
        verdicts: List[Verdict] = []
        append = verdicts.append
        for position, ok in enumerate(passed):
            direction = (
                Direction.OUTBOUND if columns.outbound[position] else Direction.INBOUND
            )
            size = columns.sizes[position]
            if ok:
                stats.passed[direction] += 1
                stats.passed_bytes[direction] += size
                append(Verdict.PASS)
            else:
                stats.dropped[direction] += 1
                stats.dropped_bytes[direction] += size
                append(Verdict.DROP)
        return verdicts

    @property
    def memory_bytes(self) -> int:
        """Fixed bitmap footprint — independent of flow count, unlike SPI."""
        return self.config.memory_bytes

    def reset(self) -> None:
        super().reset()
        self.core.reset()

    # ------------------------------------------------------------------
    # Persistence — the service plane's warm-restart unit
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable filter state: bitmap core (bits, rotation clock,
        drop RNG), pass/drop counters, and the drop controller's policy
        parameters plus estimator observations — everything a warm
        restart needs to resume verdict-for-verdict."""
        return {
            "kind": self.name,
            "core": self.core.snapshot(),
            "stats": self.stats.snapshot(),
            "controller": self.drop_controller.snapshot(),
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "BitmapPacketFilter":
        """Rebuild a filter from :meth:`snapshot` output.

        ``clock`` passes through to :meth:`BitmapFilter.restore`:
        ``"resume"`` (default here — the service plane continues the same
        clock) keeps the absolute rotation schedule so gap rotations
        fire; ``"reanchor"`` rebases the phase onto a new clock.
        """
        if snapshot.get("kind") not in (None, cls.name):
            raise ValueError(
                f"snapshot is for filter kind {snapshot['kind']!r}, not {cls.name!r}"
            )
        filt = cls.__new__(cls)
        PacketFilter.__init__(filt)
        filt.core = BitmapFilter.restore(snapshot["core"], clock=clock)
        filt.drop_controller = DropController.restore(snapshot["controller"])
        filt.hash_memo = HashIndexMemo(filt.core.family)
        filt.stats = FilterStats.restore(snapshot["stats"])
        return filt
