"""Close-aware counting filter — an extension of the bitmap filter.

The bitmap filter expires entries purely by time (``T_e = k·Δt``).  But
TCP close signals (FIN/RST) are visible in packet headers — no payload
inspection — so an extension can *delete* a connection's entry the moment
it closes, cutting the filter's utilization (and therefore its
penetration probability, Equation 2) between rotations.

Design:

* ``k`` rotating :class:`CountingBloomFilter` columns replace the bit
  vectors; marks increment all columns, lookups test the current column,
  rotation clears the oldest — identical geometry to the paper's filter.
* On an outbound RST, the pair is deleted from every column immediately.
* On FIN, full deletion waits for the *second* FIN (an orderly close is
  bidirectional).  Half-closed pairs are tracked in a small exact table —
  per-flow state, but only for flows in the act of closing, so its size
  is bounded by close rate × handshake time, not by live-flow count.

Cost: 4-bit counters need 4× the memory of plain bits at equal ``N``.
``benchmarks/bench_ext_counting.py`` quantifies when the trade wins.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.bitmap_filter import BitmapFilterConfig, FieldMode
from repro.core.counting_bloom import CountingBloomFilter
from repro.filters.base import (
    FilterStats,
    PacketFilter,
    Verdict,
    check_resume_clock,
    restore_rng_state,
    rng_state,
)
from repro.filters.policy import DropController
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet, SocketPair


class CountingBitmapFilter(PacketFilter):
    """Rotating counting-Bloom positive-listing filter with close-aware
    entry deletion."""

    name = "counting-bitmap"

    def __init__(
        self,
        config: Optional[BitmapFilterConfig] = None,
        drop_controller: Optional[DropController] = None,
        rng: Optional[random.Random] = None,
        half_close_timeout: float = 60.0,
    ) -> None:
        super().__init__()
        self.config = config or BitmapFilterConfig()
        if half_close_timeout <= 0:
            raise ValueError(f"half_close_timeout must be positive: {half_close_timeout}")
        self.columns: List[CountingBloomFilter] = [
            CountingBloomFilter(self.config.size, self.config.hashes, seed=self.config.seed)
            for _ in range(self.config.vectors)
        ]
        self.idx = 0
        self.drop_controller = drop_controller or DropController.always_drop()
        self._rng = rng or random.Random(self.config.seed)
        self._next_rotation: Optional[float] = None
        #: Pairs that sent one FIN, awaiting the reverse FIN.
        self._half_closed: Dict[Tuple[int, ...], float] = {}
        self.half_close_timeout = half_close_timeout
        self.deleted_on_close = 0

    # ------------------------------------------------------------------

    def _key(self, pair: SocketPair, direction: Direction) -> Tuple[int, ...]:
        if direction is Direction.INBOUND:
            pair = pair.inverse
        if self.config.field_mode is FieldMode.HOLE_PUNCHING:
            return (pair.protocol, pair.src_addr, pair.src_port, pair.dst_addr)
        return tuple(pair)

    def rotate(self) -> int:
        last = self.idx
        self.idx = (self.idx + 1) % self.config.vectors
        self.columns[last].clear()
        return self.idx

    def advance_to(self, now: float) -> int:
        if self._next_rotation is None:
            self._next_rotation = now + self.config.rotate_interval
            return 0
        ran = 0
        while now >= self._next_rotation:
            self.rotate()
            self._next_rotation += self.config.rotate_interval
            ran += 1
        if ran:
            self._expire_half_closed(now)
        return ran

    def _expire_half_closed(self, now: float) -> None:
        horizon = now - self.half_close_timeout
        stale = [key for key, stamp in self._half_closed.items() if stamp < horizon]
        for key in stale:
            del self._half_closed[key]

    # ------------------------------------------------------------------

    def decide(self, packet: Packet) -> Verdict:
        now = packet.timestamp
        self.advance_to(now)
        key = self._key(packet.pair, packet.direction)

        if packet.direction is Direction.OUTBOUND:
            for column in self.columns:
                column.add(key)
            self.drop_controller.record_upload(now, packet.size)
            self._track_close(packet, key, now)
            return Verdict.PASS

        hit = key in self.columns[self.idx]
        if hit:
            self._track_close(packet, key, now)
            return Verdict.PASS
        probability = self.drop_controller.probability(now)
        if probability >= 1.0 or self._rng.random() < probability:
            return Verdict.DROP
        return Verdict.PASS

    def _track_close(self, packet: Packet, key: Tuple[int, ...], now: float) -> None:
        if packet.pair.protocol != IPPROTO_TCP:
            return
        if packet.is_rst:
            self._delete(key)
            self._half_closed.pop(key, None)
            return
        if packet.is_fin:
            if key in self._half_closed:
                del self._half_closed[key]
                self._delete(key)
            else:
                self._half_closed[key] = now

    def _delete(self, key: Tuple[int, ...]) -> None:
        """Remove the pair from every column.

        Each outbound packet of the flow incremented the counters, so one
        decrement per column leaves residue; decrement until the key stops
        testing positive in that column (bounded by the 15-saturation)."""
        for column in self.columns:
            for _ in range(16):
                if not column.remove(key):
                    break
        self.deleted_on_close += 1

    # ------------------------------------------------------------------

    @property
    def current_utilization(self) -> float:
        return self.columns[self.idx].utilization

    @property
    def memory_bytes(self) -> int:
        """4-bit counters: k · N/2 bytes (4× the plain bitmap)."""
        return sum(column.memory_bytes for column in self.columns)

    @property
    def half_closed_pairs(self) -> int:
        return len(self._half_closed)

    def reset(self) -> None:
        super().reset()
        for column in self.columns:
            column.clear()
        self.idx = 0
        self._next_rotation = None
        self._half_closed.clear()
        self.deleted_on_close = 0

    def snapshot(self) -> dict:
        """Column cells + counters, rotation clock, half-close table, RNG."""
        return {
            "kind": self.name,
            "config": {
                "size": self.config.size,
                "vectors": self.config.vectors,
                "hashes": self.config.hashes,
                "rotate_interval": self.config.rotate_interval,
                "field_mode": self.config.field_mode.value,
                "seed": self.config.seed,
            },
            "idx": self.idx,
            "next_rotation": self._next_rotation,
            "half_close_timeout": self.half_close_timeout,
            "deleted_on_close": self.deleted_on_close,
            "rng": rng_state(self._rng),
            "controller": self.drop_controller.snapshot(),
            "stats": self.stats.snapshot(),
            "columns": [
                {
                    "cells": list(column._cells),
                    "added": column.added,
                    "removed": column.removed,
                    "saturations": column.saturations,
                }
                for column in self.columns
            ],
            "half_closed": [
                [list(key), stamp] for key, stamp in self._half_closed.items()
            ],
        }

    @classmethod
    def restore(cls, snapshot: dict, clock: str = "resume") -> "CountingBitmapFilter":
        if snapshot.get("kind") not in (None, cls.name):
            raise ValueError(
                f"snapshot is for filter kind {snapshot['kind']!r}, not {cls.name!r}"
            )
        check_resume_clock(clock, cls.name)
        config_doc = snapshot["config"]
        filt = cls(
            config=BitmapFilterConfig(
                size=config_doc["size"],
                vectors=config_doc["vectors"],
                hashes=config_doc["hashes"],
                rotate_interval=config_doc["rotate_interval"],
                field_mode=FieldMode(config_doc["field_mode"]),
                seed=config_doc["seed"],
            ),
            half_close_timeout=snapshot["half_close_timeout"],
        )
        for column, column_doc in zip(filt.columns, snapshot["columns"]):
            column._cells[:] = bytearray(column_doc["cells"])
            column.added = column_doc["added"]
            column.removed = column_doc["removed"]
            column.saturations = column_doc["saturations"]
        filt.idx = snapshot["idx"]
        filt._next_rotation = snapshot["next_rotation"]
        filt.deleted_on_close = snapshot["deleted_on_close"]
        filt._rng = restore_rng_state(snapshot["rng"])
        filt.drop_controller = DropController.restore(snapshot["controller"])
        filt.stats = FilterStats.restore(snapshot["stats"])
        filt._half_closed = {
            tuple(key): stamp for key, stamp in snapshot["half_closed"]
        }
        return filt
