"""Packet sources: unbounded chunk streams feeding a live filter service.

A :class:`PacketSource` yields timestamp-ordered
:class:`~repro.net.table.PacketTable` chunks — the same shape every
replay backend consumes — from wherever live traffic comes from:

* :class:`GeneratorSource` — a synthetic :class:`TraceGenerator` stream
  (``iter_tables``), the service plane's load-test feed;
* :class:`PcapSource` — a capture file re-chunked for paced replay;
* :class:`TableSource` — an in-memory table (tests, programmatic use);
* :class:`SocketSource` — length-prefixed frames from another process
  (:mod:`repro.net.stream`);
* :class:`IdleSource` — no traffic at all; keeps a restored service
  alive to serve telemetry and snapshots.

Sources are *consumed once* and support :meth:`PacketSource.skip` —
fast-forwarding over chunks a warm restart already processed.  For
deterministic sources (generator, pcap, table) skipping re-derives the
exact remaining stream, interned pools included, so a resumed service is
bit-identical to one that never stopped.
"""

from __future__ import annotations

import os
import socket as socket_module
import stat
import time
from abc import ABC, abstractmethod
from typing import Iterator, Optional

from repro.net.table import PacketTable


class PacketSource(ABC):
    """An ordered stream of packet-table chunks."""

    @abstractmethod
    def __iter__(self) -> Iterator[PacketTable]:
        """Yield timestamp-ordered chunks until the stream ends."""

    def skip(self, chunks: int) -> None:
        """Fast-forward over the first ``chunks`` chunks (warm restart).

        Must be called before iteration starts.  The default consumes
        and discards — correct for every deterministic source, since
        discarded chunks still advance interned pools and generator
        state exactly as processing them would have.
        """
        if chunks < 0:
            raise ValueError(f"cannot skip a negative chunk count: {chunks}")
        iterator = iter(self)
        for _ in range(chunks):
            if next(iterator, None) is None:
                break

    def close(self) -> None:
        """Release any transport resources (idempotent)."""

    def describe(self) -> str:
        return type(self).__name__


class GeneratorSource(PacketSource):
    """Chunks from a synthetic :class:`TraceGenerator` trace.

    The generator's ``iter_tables`` stream shares one interned flow pool
    across chunks, and re-creating the source from the same
    :class:`TraceConfig` reproduces the identical stream — which is what
    makes :meth:`skip`-based warm restart exact.
    """

    def __init__(self, generator, chunk_size: int = 4096) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        self.generator = generator
        self.chunk_size = chunk_size
        self._iterator: Optional[Iterator[PacketTable]] = None

    def _stream(self) -> Iterator[PacketTable]:
        if self._iterator is None:
            self._iterator = self.generator.iter_tables(self.chunk_size)
        return self._iterator

    def __iter__(self) -> Iterator[PacketTable]:
        return self._stream()

    def skip(self, chunks: int) -> None:
        if chunks < 0:
            raise ValueError(f"cannot skip a negative chunk count: {chunks}")
        stream = self._stream()
        for _ in range(chunks):
            if next(stream, None) is None:
                break

    def describe(self) -> str:
        return f"generator(chunk_size={self.chunk_size})"


class TableSource(PacketSource):
    """Chunks sliced from one in-memory table (pool-sharing slices)."""

    def __init__(self, table: PacketTable, chunk_size: int = 4096) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        self.table = table
        self.chunk_size = chunk_size
        self._position = 0

    def __iter__(self) -> Iterator[PacketTable]:
        while self._position < len(self.table):
            start = self._position
            self._position = min(start + self.chunk_size, len(self.table))
            yield self.table.slice(start, self._position)

    def skip(self, chunks: int) -> None:
        if chunks < 0:
            raise ValueError(f"cannot skip a negative chunk count: {chunks}")
        self._position = min(chunks * self.chunk_size, len(self.table))

    def describe(self) -> str:
        return f"table({len(self.table)} rows, chunk_size={self.chunk_size})"


class PcapSource(TableSource):
    """Chunks from a pcap capture, classified against the client CIDR."""

    def __init__(
        self,
        path: str,
        network: int,
        prefix_len: int,
        chunk_size: int = 4096,
        payload_limit: Optional[int] = None,
    ) -> None:
        table = PacketTable.from_pcap(
            path, network, prefix_len, payload_limit=payload_limit
        )
        super().__init__(table, chunk_size=chunk_size)
        self.path = path

    def describe(self) -> str:
        return f"pcap({self.path}, {len(self.table)} rows)"


class SocketSource(PacketSource):
    """Chunks from a length-prefixed socket feed (:mod:`repro.net.stream`).

    Listens on a unix path or TCP ``(host, port)``, accepts one feeder
    connection and yields one table chunk per frame until the feeder
    closes the stream.  All chunks spawn from one pool table, so
    ``pair_ids`` stay stable across frames.

    A socket feed is not replayable, so :meth:`skip` counts the frames
    to discard from the live stream — the feeder is expected to resend
    from the beginning of its epoch (or the caller accepts the gap).
    """

    def __init__(self, listener: socket_module.socket,
                 unix_path: Optional[str] = None) -> None:
        self.listener = listener
        self._pool = PacketTable()
        self._skip = 0
        self._connection: Optional[socket_module.socket] = None
        self._unix_path = unix_path

    @classmethod
    def unix(cls, path: str, backlog: int = 1) -> "SocketSource":
        # A crashed or warm-restarted daemon leaves its socket inode
        # behind, and rebinding the same path then fails with EADDRINUSE.
        # A stale *socket* is safe to unlink — nothing is listening on it
        # (we are about to be the listener) — but any other file type at
        # the path is someone else's data and stays a hard error.
        if os.path.exists(path):
            if not stat.S_ISSOCK(os.stat(path).st_mode):
                raise OSError(
                    f"refusing to unlink {path!r}: exists and is not a socket"
                )
            os.unlink(path)
        listener = socket_module.socket(socket_module.AF_UNIX)
        listener.bind(path)
        listener.listen(backlog)
        return cls(listener, unix_path=path)

    @classmethod
    def tcp(cls, host: str, port: int, backlog: int = 1) -> "SocketSource":
        listener = socket_module.socket(socket_module.AF_INET)
        listener.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
        )
        listener.bind((host, port))
        listener.listen(backlog)
        return cls(listener)

    @property
    def address(self):
        return self.listener.getsockname()

    def skip(self, chunks: int) -> None:
        if chunks < 0:
            raise ValueError(f"cannot skip a negative chunk count: {chunks}")
        self._skip = chunks

    def __iter__(self) -> Iterator[PacketTable]:
        from repro.net.stream import decode_table, read_frame

        connection, _ = self.listener.accept()
        self._connection = connection
        stream = connection.makefile("rb")
        try:
            while True:
                payload = read_frame(stream)
                if payload is None:
                    return
                if not payload:
                    # Keepalive frame: no chunk, no skip consumed.
                    continue
                table = decode_table(payload, pool=self._pool)
                if self._skip:
                    self._skip -= 1
                    continue
                yield table
        finally:
            stream.close()
            connection.close()
            self._connection = None

    def close(self) -> None:
        # Snapshot the attribute: the iterator's finally (in the ingest
        # thread) nulls it when the shutdown below wakes its read, and
        # re-reading here would race that write.  Double-close of the
        # socket object itself is harmless.
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.shutdown(socket_module.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
        self.listener.close()
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            self._unix_path = None

    def describe(self) -> str:
        return f"socket({self.address})"


class IdleSource(PacketSource):
    """No traffic — blocks until closed, yielding nothing.

    A restored service with nothing to replay still has work to do:
    serve telemetry, answer snapshot requests, hold the warm filter.
    The iterator polls a closed flag so the service's ingest thread
    wakes up promptly on shutdown.
    """

    def __init__(self, poll_interval: float = 0.05) -> None:
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive: {poll_interval}")
        self.poll_interval = poll_interval
        self._closed = False

    def __iter__(self) -> Iterator[PacketTable]:
        while not self._closed:
            time.sleep(self.poll_interval)
        return
        yield  # pragma: no cover - makes this a generator

    def skip(self, chunks: int) -> None:
        if chunks < 0:
            raise ValueError(f"cannot skip a negative chunk count: {chunks}")

    def close(self) -> None:
        self._closed = True

    def describe(self) -> str:
        return "idle"
