"""Control/telemetry plane: JSON lines over a unix or TCP socket.

Protocol: one request per line, one response per line, both JSON
objects.  Requests carry ``{"cmd": <name>, ...params}``; responses are
``{"ok": true, ...payload}`` or ``{"ok": false, "error": <message>}``.

Commands:

``stats``     full telemetry document (:func:`~repro.service.telemetry.service_stats`)
``health``    cheap liveness view
``config``    live reconfiguration: ``low_mbps``/``high_mbps`` (RED
              thresholds), ``probability`` (static policy),
              ``rotate_interval`` (Δt, phase re-anchored on the trace clock)
``snapshot``  persist full service state; returns the file path
``drain``     stop ingesting, process the queue, finalize; returns the
              final summary (the response waits for completion)
``shutdown``  like drain but discards queued chunks

Addresses are ``unix:/path/to.sock`` or ``tcp:host:port`` —
:func:`parse_control_address` is shared by server, client and CLI.
"""

from __future__ import annotations

import asyncio
import json
import socket as socket_module
import time
from typing import Any, Optional, Tuple

from repro.service.service import FilterService, ServiceError
from repro.service.telemetry import service_health, service_stats


def parse_control_address(spec: str) -> Tuple[str, Any]:
    """``unix:/path`` → ``("unix", path)``; ``tcp:host:port`` →
    ``("tcp", (host, port))``."""
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path: {spec!r}")
        return "unix", path
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"tcp control address must be tcp:host:port: {spec!r}"
            )
        return "tcp", (host, int(port))
    raise ValueError(
        f"control address must start with unix: or tcp:, got {spec!r}"
    )


async def handle_command(service: FilterService, request: dict) -> dict:
    """Dispatch one decoded request; returns the response payload."""
    command = request.get("cmd")
    if command == "stats":
        return {"ok": True, "stats": service_stats(service)}
    if command == "health":
        return {"ok": True, "health": service_health(service)}
    if command == "config":
        params = {
            key: value for key, value in request.items() if key != "cmd"
        }
        applied = await service.reconfigure(**params)
        return {"ok": True, "applied": applied}
    if command == "snapshot":
        path = await service.request_snapshot()
        return {"ok": True, "path": path}
    if command == "drain":
        summary = await service.drain()
        return {"ok": True, "summary": summary}
    if command == "shutdown":
        summary = await service.shutdown()
        return {"ok": True, "summary": summary}
    return {"ok": False, "error": f"unknown command: {command!r}"}


async def _serve_connection(
    service: FilterService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            request: dict = {}
            try:
                decoded = json.loads(line)
                if not isinstance(decoded, dict):
                    raise ValueError("request must be a JSON object")
                request = decoded
                response = await handle_command(service, request)
            except (ValueError, ServiceError) as error:
                response = {"ok": False, "error": str(error)}
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
            if request.get("cmd") in ("drain", "shutdown") and response.get("ok"):
                return
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    except asyncio.CancelledError:
        # Service shutdown with the connection still open: close it
        # quietly instead of surfacing a cancelled handler task.
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ControlServer:
    """The listening server plus its live connection tasks, so shutdown
    can close idle client connections instead of leaking them into the
    event loop's teardown."""

    def __init__(self, server: asyncio.AbstractServer, connections: set) -> None:
        self._server = server
        self._connections = connections

    def close(self) -> None:
        self._server.close()

    async def wait_closed(self) -> None:
        """Stop accepting, let in-flight responses flush, then cancel.

        A drain/shutdown handler may have just had its future resolved
        and not yet written the response; cancelling immediately would
        eat the reply the client is waiting on.  Handlers that finish a
        terminal command return on their own; only idle connections
        (clients sitting in ``readline``) hit the cancel.
        """
        await self._server.wait_closed()
        tasks = [task for task in self._connections if not task.done()]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            for task in pending:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass


async def start_control_server(service: FilterService, spec: str) -> ControlServer:
    """Start the asyncio control server for ``spec``; returns the server
    (close + ``wait_closed`` to stop)."""
    kind, address = parse_control_address(spec)
    connections: set = set()

    async def handler(reader, writer):
        task = asyncio.current_task()
        connections.add(task)
        task.add_done_callback(connections.discard)
        await _serve_connection(service, reader, writer)

    if kind == "unix":
        server = await asyncio.start_unix_server(handler, path=address)
    else:
        host, port = address
        server = await asyncio.start_server(handler, host=host, port=port)
    return ControlServer(server, connections)


class ControlError(RuntimeError):
    """The control server rejected a request or closed unexpectedly."""


#: Sentinel for "no per-request override": ``None`` must stay usable as
#: an explicit "block forever".
_DEFAULT_TIMEOUT = object()


class ControlClient:
    """Synchronous control-socket client (``repro ctl``, tests, scripts).

    ``timeout`` bounds each request/response round trip; a per-request
    override (``request(..., timeout=...)``) serves calls with known
    longer deadlines — a ``drain`` flushing a deep queue — without
    loosening every other call.

    ``connect_retry`` is the connect patience budget in seconds: while it
    lasts, refused or not-yet-bound sockets are retried with bounded
    exponential backoff (50ms doubling to 1s), which is how a supervisor
    polls shard daemons that are still booting without racing the socket
    bind.  The default (``None``) keeps the historical single-attempt
    behavior and raises the OS error as-is.
    """

    #: First retry sleep; doubles per attempt up to the cap below.
    RETRY_INITIAL = 0.05
    RETRY_MAX = 1.0

    def __init__(
        self,
        spec: str,
        timeout: Optional[float] = 30.0,
        *,
        connect_retry: Optional[float] = None,
    ) -> None:
        kind, address = parse_control_address(spec)
        self._timeout = timeout
        deadline = (
            None if connect_retry is None
            else time.monotonic() + connect_retry
        )
        delay = self.RETRY_INITIAL
        while True:
            try:
                self._socket = self._connect(kind, address, timeout)
                break
            except (ConnectionError, FileNotFoundError, OSError) as error:
                if deadline is None:
                    raise
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ControlError(
                        f"control socket {spec} not reachable after "
                        f"{connect_retry:.1f}s: {error}"
                    ) from error
                time.sleep(min(delay, remaining))
                delay = min(delay * 2, self.RETRY_MAX)
        self._stream = self._socket.makefile("rwb")

    @staticmethod
    def _connect(kind: str, address, timeout: Optional[float]):
        if kind == "unix":
            sock = socket_module.socket(socket_module.AF_UNIX)
            sock.settimeout(timeout)
            try:
                sock.connect(address)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket_module.create_connection(address, timeout=timeout)

    def request(
        self, cmd: str, timeout: Any = _DEFAULT_TIMEOUT, **params: Any
    ) -> dict:
        """Send one command, wait for its response; raises
        :class:`ControlError` on a ``{"ok": false}`` reply.  ``timeout``
        overrides the client default for this round trip only (``None``
        = wait indefinitely)."""
        message = {"cmd": cmd, **params}
        override = timeout is not _DEFAULT_TIMEOUT
        if override:
            self._socket.settimeout(timeout)
        try:
            self._stream.write(json.dumps(message).encode("utf-8") + b"\n")
            self._stream.flush()
            line = self._stream.readline()
        finally:
            if override:
                self._socket.settimeout(self._timeout)
        if not line:
            raise ControlError(f"control server closed during {cmd!r}")
        response = json.loads(line)
        if not response.get("ok"):
            raise ControlError(response.get("error", "unknown control error"))
        return response

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def health(self) -> dict:
        return self.request("health")["health"]

    def configure(self, **params: Any) -> dict:
        return self.request("config", **params)["applied"]

    def snapshot(self) -> str:
        return self.request("snapshot")["path"]

    def drain(self, timeout: Any = _DEFAULT_TIMEOUT) -> dict:
        return self.request("drain", timeout=timeout)["summary"]

    def shutdown(self, timeout: Any = _DEFAULT_TIMEOUT) -> dict:
        return self.request("shutdown", timeout=timeout)["summary"]

    def close(self) -> None:
        self._stream.close()
        self._socket.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
