"""Snapshot files: the service plane's warm-restart persistence.

One snapshot file is a JSON document::

    {
      "format": "repro-service-snapshot/1",
      "sequence": 12,            # monotonically increasing per service run
      "wall_time": 1754500000.0, # when it was written (informational)
      "chunks_done": 340,        # source chunks fully processed
      "pipeline": {              # ReplayPipeline counters
        "inbound": ..., "dropped": ...,
        "first_ts": ..., "last_ts": ...,
        "fingerprint": ...       # running verdict fingerprint (int)
      },
      "filter": {...},           # BitmapPacketFilter.snapshot()
      "router": {...}            # EdgeRouter.snapshot() (metrics + blocklist)
    }

Binary payloads inside component snapshots (the bitmap's bit vectors)
are JSON-encoded as ``{"__b64__": "<base64>"}`` wrappers; everything
else is plain data.  Writes are atomic (tmp file + rename), so a crash
mid-write never corrupts the latest good snapshot.
"""

from __future__ import annotations

import base64
import json
import os
import re
import tempfile
import time
from typing import Any, Optional

SNAPSHOT_FORMAT = "repro-service-snapshot/1"

_SNAPSHOT_NAME = re.compile(r"^snapshot-(\d{8})\.json$")


def _encode(value: Any) -> Any:
    """Recursively wrap ``bytes`` for JSON."""
    if isinstance(value, bytes):
        return {"__b64__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


def _decode(value: Any) -> Any:
    """Undo :func:`_encode`."""
    if isinstance(value, dict):
        if set(value) == {"__b64__"}:
            return base64.b64decode(value["__b64__"])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def snapshot_name(sequence: int) -> str:
    return f"snapshot-{sequence:08d}.json"


def write_snapshot(path: str, payload: dict) -> str:
    """Atomically write one snapshot document; returns the path.

    ``payload`` must carry ``chunks_done``, ``pipeline``, ``filter`` and
    ``router`` (the service assembles it); the format tag and wall time
    are stamped here.
    """
    document = dict(payload)
    document["format"] = SNAPSHOT_FORMAT
    document.setdefault("wall_time", time.time())
    encoded = json.dumps(_encode(document), separators=(",", ":"))
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".snapshot-", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def read_snapshot(path: str) -> dict:
    """Load and validate one snapshot document."""
    with open(path, "r") as handle:
        document = _decode(json.load(handle))
    tag = document.get("format")
    if tag != SNAPSHOT_FORMAT:
        raise ValueError(
            f"{path}: not a service snapshot (format {tag!r}, "
            f"expected {SNAPSHOT_FORMAT!r})"
        )
    for key in ("chunks_done", "pipeline", "filter", "router"):
        if key not in document:
            raise ValueError(f"{path}: snapshot missing {key!r}")
    return document


def latest_snapshot(directory: str) -> Optional[str]:
    """Path of the highest-sequence snapshot in a directory, or None."""
    best: Optional[str] = None
    best_sequence = -1
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return None
    for name in names:
        match = _SNAPSHOT_NAME.match(name)
        if match is None:
            continue
        sequence = int(match.group(1))
        if sequence > best_sequence:
            best_sequence = sequence
            best = os.path.join(directory, name)
    return best
