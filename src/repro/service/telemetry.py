"""Telemetry assembly: the control plane's ``stats`` and ``health`` views.

Read-only summaries over a running :class:`~repro.service.service.FilterService`.
Counters are sampled without pausing the filter loop — a chunk may be
mid-flight in the worker thread, so numbers are eventually consistent
between fields (the packet counter can be a chunk ahead of the series
bins).  Anything that must be exact-at-a-boundary goes through the
snapshot path instead, which quiesces between chunks.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.net.packet import Direction


def throughput_tail(series, direction: Direction, points: int) -> List[Tuple[float, float]]:
    """The last ``points`` (time, Mbps) samples of one series lane."""
    tail = series.series_mbps(direction)
    return tail[-points:] if points else tail


def service_stats(service, series_points: int = 60) -> dict:
    """The full ``stats`` document served over the control socket."""
    pipeline = service.stepper.pipeline
    router = pipeline.router
    blocklist = router.blocklist
    inbound = pipeline.inbound
    stats = {
        "uptime": time.time() - service.started_wall,
        "state": service.state,
        "source": service.source.describe(),
        "backend": service.backend.describe(),
        "speed": service.speed,
        "chunks_done": service.chunks_done,
        "ingest_error": getattr(service, "ingest_error", None),
        "queue_depth": service.queue_size,
        "queue_limit": service.queue_depth,
        "packets": router.packets,
        "inbound_packets": inbound,
        "inbound_dropped": pipeline.dropped,
        "inbound_drop_rate": (pipeline.dropped / inbound) if inbound else 0.0,
        "fingerprint": pipeline.fingerprint,
        "trace": {"first_ts": pipeline.first_ts, "last_ts": pipeline.last_ts},
        "filter": service.filter.stats.snapshot(),
        "throughput": {
            "interval": router.passed.interval,
            "passed_out_mbps": throughput_tail(
                router.passed, Direction.OUTBOUND, series_points
            ),
            "passed_in_mbps": throughput_tail(
                router.passed, Direction.INBOUND, series_points
            ),
            "offered_out_mbps": throughput_tail(
                router.offered, Direction.OUTBOUND, series_points
            ),
            "offered_in_mbps": throughput_tail(
                router.offered, Direction.INBOUND, series_points
            ),
        },
        "snapshots": {
            "directory": service.snapshot_dir,
            "interval": service.snapshot_interval,
            "sequence": service.snapshot_sequence,
        },
    }
    if blocklist is not None:
        stats["blocklist"] = {
            "entries": len(blocklist),
            "suppressed_packets": blocklist.suppressed_packets,
            "suppressed_bytes": blocklist.suppressed_bytes,
        }
    else:
        stats["blocklist"] = None
    core = getattr(service.filter, "core", None)
    if core is not None:
        stats["rotation"] = {
            "interval": core.config.rotate_interval,
            "expiry": core.config.rotate_interval * core.config.vectors,
        }
        controller = getattr(service.filter, "drop_controller", None)
        if controller is not None:
            stats["drop_policy"] = controller.policy.snapshot()
    return stats


def service_health(service) -> dict:
    """The cheap liveness view: is the loop alive, is it keeping up."""
    return {
        "status": service.state,
        "uptime": time.time() - service.started_wall,
        "chunks_done": service.chunks_done,
        "queue_depth": service.queue_size,
        "queue_limit": service.queue_depth,
    }
