"""Live service plane: streaming filter daemon, control API, warm restart.

The offline engine (:mod:`repro.sim`) replays finite traces;
:class:`FilterService` runs the same stage pipeline against unbounded
:class:`PacketSource` streams under wall-clock pacing, with a JSON
control/telemetry socket and snapshot-based warm restart.  See
``docs/architecture.md`` ("Service plane") for the design.
"""

from repro.service.control import (
    ControlClient,
    ControlError,
    parse_control_address,
    start_control_server,
)
from repro.service.service import FilterService, ServiceError
from repro.service.sources import (
    GeneratorSource,
    IdleSource,
    PacketSource,
    PcapSource,
    SocketSource,
    TableSource,
)
from repro.service.state import (
    SNAPSHOT_FORMAT,
    latest_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.service.telemetry import service_health, service_stats

__all__ = [
    "ControlClient",
    "ControlError",
    "FilterService",
    "GeneratorSource",
    "IdleSource",
    "PacketSource",
    "PcapSource",
    "SNAPSHOT_FORMAT",
    "ServiceError",
    "SocketSource",
    "TableSource",
    "latest_snapshot",
    "parse_control_address",
    "read_snapshot",
    "service_health",
    "service_stats",
    "start_control_server",
    "write_snapshot",
]
