"""The streaming filter daemon: wall-clock pacing, backpressure, warm restart.

:class:`FilterService` wraps any steppable
:class:`~repro.sim.pipeline.ExecutionBackend` around an open-ended
:class:`~repro.service.sources.PacketSource` and runs it as a
long-lived asyncio process:

* an **ingest task** pulls chunks from the (blocking) source in a worker
  thread and feeds a bounded queue — a slow filter backpressures ingest
  instead of buffering without bound;
* the **filter task** paces chunks against the wall clock (``speed`` is
  a trace-time multiplier; ``None`` replays flat out), feeds each chunk
  to the backend's :class:`~repro.sim.pipeline.ReplayStepper` in a
  worker thread, and applies control actions — reconfiguration,
  snapshots, drain/shutdown — only *between* chunks, so every action
  observes a consistent filter;
* an optional **snapshot task** persists the full service state
  (filter bits + RNG, blocklist, metrics, pipeline counters, verdict
  fingerprint) every ``snapshot_interval`` seconds;
* an optional **control server** (:mod:`repro.service.control`) serves
  stats/health and accepts the same actions over a unix or TCP socket.

Warm restart is :meth:`FilterService.restore`: rebuild the filter from
the latest snapshot on the *same* clock (gap rotations still fire),
restore the router's measurement lanes and blocked-σ store, fast-forward
the source over the chunks already processed, and keep going — the
resumed run's verdicts, blocklist and fingerprint are identical to a run
that never stopped (``tests/service/test_service.py`` holds that
equivalence against an offline :func:`~repro.sim.replay.replay`).
"""

from __future__ import annotations

import asyncio
import functools
import os
import signal
import time
from typing import Any, Optional, Tuple

from repro.core.dropper import RedDropPolicy, StaticDropPolicy
from repro.filters import restore_filter
from repro.filters.base import PacketFilter
from repro.net.table import PacketTable
from repro.shard.lifecycle import pipeline_counters, restore_pipeline
from repro.sim.pipeline import (
    BatchedBackend,
    ExecutionBackend,
    PipelineConfig,
    ReplayResult,
)
from repro.service.sources import PacketSource
from repro.service.state import (
    latest_snapshot,
    read_snapshot,
    snapshot_name,
    write_snapshot,
)


class ServiceError(RuntimeError):
    """A control action was invalid for the service's current state."""


class FilterService:
    """A long-running edge filter over an unbounded packet source."""

    def __init__(
        self,
        source: PacketSource,
        packet_filter: PacketFilter,
        backend: Optional[ExecutionBackend] = None,
        *,
        speed: Optional[float] = None,
        use_blocklist: bool = True,
        throughput_interval: float = 1.0,
        drop_window: float = 10.0,
        queue_depth: int = 8,
        snapshot_dir: Optional[str] = None,
        snapshot_interval: Optional[float] = None,
        control: Optional[str] = None,
        handle_signals: bool = False,
    ) -> None:
        if speed is not None and speed <= 0:
            raise ValueError(f"speed must be positive: {speed}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1: {queue_depth}")
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise ValueError(
                f"snapshot_interval must be positive: {snapshot_interval}"
            )
        if snapshot_interval is not None and snapshot_dir is None:
            raise ValueError("snapshot_interval needs a snapshot_dir")
        self.source = source
        self.filter = packet_filter
        self.backend = backend or BatchedBackend()
        self.speed = speed
        self.queue_depth = queue_depth
        self.snapshot_dir = snapshot_dir
        self.snapshot_interval = snapshot_interval
        self.control_address = control
        #: Install SIGTERM/SIGINT handlers while running: the first
        #: signal drains gracefully (and schedules a final snapshot when
        #: a snapshot_dir is configured), a second one force-discards.
        self.handle_signals = handle_signals
        # The stepper is built eagerly so restore() can rehydrate its
        # pipeline before the loop starts.
        self.stepper = self.backend.stepper(PipelineConfig(
            packet_filter=packet_filter,
            use_blocklist=use_blocklist,
            throughput_interval=throughput_interval,
            drop_window=drop_window,
            record_fingerprint=True,
        ))
        self.chunks_done = 0
        self.snapshot_sequence = 0
        #: What ended the ingest stream abnormally (None = clean EOF or
        #: deliberate stop); surfaced in the finalize summary and stats.
        self.ingest_error: Optional[str] = None
        self.result: Optional[ReplayResult] = None
        self.started_wall = time.time()
        self.state = "created"  # created → running → draining → finished
        self._stopping = False
        self._discard_remaining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self._actions: Optional[asyncio.Queue] = None
        self._control_server = None
        self._pace_trace0: Optional[float] = None
        self._pace_wall0: Optional[float] = None
        self._signal_seen = False
        self._final_snapshot = False

    # -- warm restart ---------------------------------------------------

    @classmethod
    def restore(
        cls,
        snapshot_path: str,
        source: PacketSource,
        backend: Optional[ExecutionBackend] = None,
        **kwargs: Any,
    ) -> "FilterService":
        """Rebuild a service from a snapshot file (or a directory, whose
        latest snapshot is used) and fast-forward ``source`` past the
        chunks the snapshotted run already processed.

        The filter resumes on the *same* clock (``clock="resume"``):
        rotations that came due between snapshot and restart fire on the
        first packet, exactly as an uninterrupted run would have rotated.
        """
        if os.path.isdir(snapshot_path):
            found = latest_snapshot(snapshot_path)
            if found is None:
                raise FileNotFoundError(
                    f"no snapshot files in {snapshot_path}"
                )
            snapshot_path = found
        document = read_snapshot(snapshot_path)
        packet_filter = restore_filter(document["filter"], clock="resume")
        use_blocklist = document["router"]["blocklist"] is not None
        kwargs.setdefault("use_blocklist", use_blocklist)
        service = cls(source, packet_filter, backend, **kwargs)
        restore_pipeline(service.stepper.pipeline, document)
        service.chunks_done = document["chunks_done"]
        service.snapshot_sequence = document.get("sequence", 0)
        source.skip(document["chunks_done"])
        return service

    # -- introspection --------------------------------------------------

    @property
    def queue_size(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def finished(self) -> bool:
        return self.state == "finished"

    # -- lifecycle ------------------------------------------------------

    async def run(self) -> ReplayResult:
        """Run the service until the source ends or a drain/shutdown
        action finalizes it; returns the unified replay result."""
        if self.state != "created":
            raise ServiceError(f"service already {self.state}")
        self.state = "running"
        self.started_wall = time.time()
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._actions = asyncio.Queue()
        if self.control_address is not None:
            from repro.service.control import start_control_server

            self._control_server = await start_control_server(
                self, self.control_address
            )
        signals_installed = []
        if self.handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self._handle_signal, signum
                    )
                    signals_installed.append(signum)
                except (NotImplementedError, RuntimeError):
                    # Platforms without loop signal support (or non-main
                    # threads) just run unsupervised.
                    break
        ingest = asyncio.create_task(self._ingest())
        snapshotter = (
            asyncio.create_task(self._snapshot_loop())
            if self.snapshot_interval is not None
            else None
        )
        try:
            await self._filter_loop()
        finally:
            for signum in signals_installed:
                self._loop.remove_signal_handler(signum)
            self._stopping = True
            self.source.close()
            ingest.cancel()
            if snapshotter is not None:
                snapshotter.cancel()
            for task in (ingest, snapshotter):
                if task is not None:
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
            if self._control_server is not None:
                self._control_server.close()
                await self._control_server.wait_closed()
                self._control_server = None
        assert self.result is not None
        return self.result

    def run_forever(self) -> ReplayResult:
        """Synchronous entry point (the CLI's ``repro serve``)."""
        return asyncio.run(self.run())

    # -- control actions ------------------------------------------------

    async def _submit(self, kind: str, payload: Any = None) -> Any:
        """Queue one action for the filter loop and await its outcome."""
        if self.state == "finished" or self._actions is None:
            raise ServiceError("service is not running")
        future = self._loop.create_future()
        await self._actions.put((kind, payload, future))
        return await future

    async def reconfigure(self, **params: Any) -> dict:
        """Live-adjust drop-policy thresholds and/or the rotation
        interval; applied between chunks, returns what changed."""
        return await self._submit("config", params)

    async def request_snapshot(self) -> str:
        """Persist full service state between chunks; returns the path."""
        if self.snapshot_dir is None:
            raise ServiceError("service has no snapshot_dir")
        return await self._submit("snapshot")

    async def drain(self) -> dict:
        """Stop ingesting, process everything queued, finalize."""
        return await self._submit("drain")

    async def shutdown(self) -> dict:
        """Stop ingesting, discard the queue, finalize."""
        return await self._submit("shutdown")

    # -- signal supervision ---------------------------------------------

    def _handle_signal(self, signum: int) -> None:
        """SIGTERM/SIGINT policy: first signal drains gracefully (process
        the queued backlog, then finalize and — with a snapshot_dir — write
        one last snapshot, so a supervisor can restart from it); a second
        signal discards the backlog and shuts down now."""
        if not self._signal_seen:
            self._signal_seen = True
            if self.snapshot_dir is not None:
                self._final_snapshot = True
            self._loop.create_task(self._signal_stop(self.drain))
        else:
            self._discard_remaining = True
            self._loop.create_task(self._signal_stop(self.shutdown))

    async def _signal_stop(self, action) -> None:
        try:
            await action()
        except ServiceError:
            pass  # already draining or finished; nothing to stop

    # -- internal tasks -------------------------------------------------

    async def _ingest(self) -> None:
        """Pull chunks from the blocking source in a worker thread.

        No try/finally around the sentinel: if this task is *cancelled*
        (only done after the filter loop has already exited) the
        sentinel is moot, and an unconditional ``put(None)`` could block
        forever on a full queue with no consumer left.
        """
        iterator = iter(self.source)
        pull = functools.partial(next, iterator, None)
        while not self._stopping:
            try:
                chunk = await self._loop.run_in_executor(None, pull)
            except Exception as error:
                # A closed socket source raises mid-read on shutdown;
                # anything else also ends the stream (the filter loop
                # finalizes what it has).  Record what killed the feed —
                # a daemon that silently finalized on a corrupt frame is
                # indistinguishable from one that drained cleanly.
                if not self._stopping:
                    self.ingest_error = f"{type(error).__name__}: {error}"
                break
            if chunk is None or self._stopping:
                break
            await self._queue.put(chunk)
        await self._queue.put(None)

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                await self.request_snapshot()
            except ServiceError:
                return

    async def _pace(self, chunk: PacketTable) -> None:
        """Hold the chunk until its trace time comes due on the wall
        clock (scaled by ``speed``); the first chunk anchors the clocks.

        A draining service flushes its backlog flat out — pacing the
        queue after ingest has stopped would only delay the finalize the
        drain caller is waiting on."""
        if self.speed is None or self._stopping or not len(chunk):
            return
        first = chunk.timestamps[0]
        now = self._loop.time()
        if self._pace_trace0 is None:
            self._pace_trace0 = first
            self._pace_wall0 = now
            return
        target = self._pace_wall0 + (first - self._pace_trace0) / self.speed
        if target > now:
            await asyncio.sleep(target - now)

    async def _filter_loop(self) -> None:
        """The service's heart: chunks and control actions, interleaved.

        Persistent ``get`` tasks on both queues (never cancelled
        mid-wait, so no item is ever lost) race each other; actions win
        ties and always run between chunks.
        """
        chunk_get: Optional[asyncio.Task] = None
        action_get: Optional[asyncio.Task] = None
        finalizers = []
        stream_ended = False
        try:
            while True:
                if chunk_get is None:
                    chunk_get = asyncio.create_task(self._queue.get())
                if action_get is None:
                    action_get = asyncio.create_task(self._actions.get())
                done, _ = await asyncio.wait(
                    {chunk_get, action_get},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if action_get in done:
                    action = action_get.result()
                    action_get = None
                    if self._run_action(action, finalizers):
                        # Drain/shutdown: fall through to consume the
                        # chunk queue to its sentinel.
                        break
                    continue
                chunk = chunk_get.result()
                chunk_get = None
                if chunk is None:
                    stream_ended = True
                    break
                await self._process_chunk(chunk)
            # Drain/shutdown requested: consume what remains in the
            # chunk queue to its sentinel, then finalize.
            while not stream_ended:
                if chunk_get is None:
                    chunk_get = asyncio.create_task(self._queue.get())
                chunk = await chunk_get
                chunk_get = None
                if chunk is None:
                    break
                if not self._discard_remaining:
                    await self._process_chunk(chunk)
        finally:
            for task in (chunk_get, action_get):
                if task is not None:
                    task.cancel()
            self.result = self.stepper.finish()
            if self._final_snapshot:
                # Signal-initiated stop: persist the drained end state so
                # a supervisor restart resumes exactly here.  Post-finalize
                # timing is deliberate — the filter is quiescent and the
                # blocklist already compacted.
                try:
                    self.write_snapshot()
                except Exception:
                    pass  # dying is no reason to lose the drain result
            self.state = "finished"
            summary = self._summary()
            for future in finalizers:
                if not future.done():
                    future.set_result(summary)
            # Actions that arrived too late fail cleanly.
            while self._actions is not None and not self._actions.empty():
                _, _, future = self._actions.get_nowait()
                if not future.done():
                    future.set_exception(ServiceError("service finished"))

    async def _process_chunk(self, chunk: PacketTable) -> None:
        await self._pace(chunk)
        await self._loop.run_in_executor(None, self.stepper.feed, chunk)
        self.chunks_done += 1

    # -- action implementations -----------------------------------------

    def _run_action(self, action: Tuple[str, Any, asyncio.Future], finalizers) -> bool:
        """Execute one control action between chunks.  Returns True when
        the action ends the service (drain/shutdown)."""
        kind, payload, future = action
        try:
            if kind == "config":
                future.set_result(self._apply_config(payload or {}))
            elif kind == "snapshot":
                future.set_result(self.write_snapshot())
            elif kind == "drain":
                self._stopping = True
                self.state = "draining"
                self.source.close()
                finalizers.append(future)
                return True
            elif kind == "shutdown":
                self._stopping = True
                self._discard_remaining = True
                self.state = "draining"
                self.source.close()
                finalizers.append(future)
                return True
            else:
                raise ServiceError(f"unknown action: {kind!r}")
        except Exception as error:
            if not future.done():
                future.set_exception(error)
        return False

    def _apply_config(self, params: dict) -> dict:
        """Adjust drop-policy thresholds / rotation interval in place."""
        allowed = {"low_mbps", "high_mbps", "probability", "rotate_interval"}
        unknown = set(params) - allowed
        if unknown:
            raise ServiceError(f"unknown config keys: {sorted(unknown)}")
        applied: dict = {}
        controller = getattr(self.filter, "drop_controller", None)
        low = params.get("low_mbps")
        high = params.get("high_mbps")
        if low is not None or high is not None:
            if controller is None or not isinstance(
                controller.policy, RedDropPolicy
            ):
                raise ServiceError(
                    "filter has no RED drop policy to retune"
                )
            policy = controller.policy
            new_low = policy.low if low is None else low * 1e6
            new_high = policy.high if high is None else high * 1e6
            if new_low < 0 or new_high <= new_low:
                raise ServiceError(
                    f"need 0 <= low < high, got low={new_low} high={new_high}"
                )
            policy.low, policy.high = new_low, new_high
            applied["low_mbps"] = new_low / 1e6
            applied["high_mbps"] = new_high / 1e6
        if "probability" in params:
            if controller is None or not isinstance(
                controller.policy, StaticDropPolicy
            ):
                raise ServiceError(
                    "filter has no static drop policy to retune"
                )
            probability = params["probability"]
            if not 0.0 <= probability <= 1.0:
                raise ServiceError(f"probability out of [0,1]: {probability}")
            controller.policy._probability = probability
            applied["probability"] = probability
        interval = params.get("rotate_interval")
        if interval is not None:
            core = getattr(self.filter, "core", None)
            if core is None:
                raise ServiceError("filter has no rotating bitmap core")
            core.set_rotate_interval(
                interval, now=self.stepper.pipeline.last_ts
            )
            applied["rotate_interval"] = interval
        if not applied:
            raise ServiceError("no recognized config keys given")
        return applied

    def write_snapshot(self) -> str:
        """Persist full service state; must run while the filter is
        quiescent (the action path guarantees between-chunks timing)."""
        if self.snapshot_dir is None:
            raise ServiceError("service has no snapshot_dir")
        os.makedirs(self.snapshot_dir, exist_ok=True)
        self.snapshot_sequence += 1
        pipeline = self.stepper.pipeline
        payload = {
            "sequence": self.snapshot_sequence,
            "chunks_done": self.chunks_done,
            "pipeline": pipeline_counters(pipeline),
            "filter": self.filter.snapshot(),
            "router": pipeline.router.snapshot(),
            "source": self.source.describe(),
        }
        path = os.path.join(
            self.snapshot_dir, snapshot_name(self.snapshot_sequence)
        )
        return write_snapshot(path, payload)

    def _summary(self) -> dict:
        result = self.result
        return {
            "chunks_done": self.chunks_done,
            "packets": result.packets if result else 0,
            "inbound_packets": result.inbound_packets if result else 0,
            "inbound_dropped": result.inbound_dropped if result else 0,
            "fingerprint": result.fingerprint if result else None,
            "ingest_error": self.ingest_error,
        }
