"""Parallel trace materialization: the synthesiser's process-pool path.

Spec synthesis is cheap and inherently serial (one shared RNG walks the
Poisson arrival loop), but materialization — expanding each
:class:`~repro.workload.apps.ConnectionSpec` to packet rows — is seeded
*per spec* via ``derive_seed(seed, index)``, so any partition of the
spec list can be expanded anywhere.  :func:`parallel_tables` exploits
that split:

1. the parent partitions the (start-sorted) spec list into contiguous
   batches and ships them to a :class:`~repro.shard.lifecycle.WorkerPool`;
2. each worker expands its specs with their private RNGs and returns a
   :class:`RowBatch` — ready-made ``array`` columns plus a *batch-local*
   payload pool (arrays pickle as raw buffers, so a batch crosses the
   process boundary as a handful of byte blobs, the same
   columns-not-objects idea as :mod:`repro.net.stream`);
3. the parent interns pairs/payloads into the shared pool in the exact
   order the serial path would (pairs per spec in index order, payloads
   in first-appearance row order — batch-local pools remap cleanly
   because batches are consumed in spec order), then feeds the columns
   through the same :class:`~repro.workload.generator._PendingMerger` /
   :class:`~repro.workload.generator._ChunkEmitter` machinery the serial
   path uses.

The emitted chunk stream is **byte-identical** to the serial
``iter_tables`` for every worker count: the merge is a stable timestamp
sort over rows appended in admission order (same tiebreak invariant),
and chunk boundaries are consecutive ``chunk_size`` windows of the
merged stream regardless of flush cadence.
``tests/workload/test_parallel_generation.py`` pins all of this.
"""

from __future__ import annotations

import random
import time
from array import array
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.hashing import derive_seed
from repro.net import table as _table_mod
from repro.net.table import PacketTable
from repro.shard.lifecycle import WorkerPool
from repro.workload.apps import ConnectionSpec, connection_rows
from repro.workload.generator import _ChunkEmitter, _PendingMerger

__all__ = ["GenerationStats", "RowBatch", "parallel_tables"]


@dataclass
class GenerationStats:
    """Utilization accounting for one parallel generation run.

    ``busy_s`` sums the workers' in-materialization wall clock; compared
    against ``wall_s × workers`` it shows how much of the pool actually
    worked — the per-worker utilization the benchmark JSONs record.
    """

    workers: int = 0
    batches: int = 0
    rows: int = 0
    #: Summed worker-side materialization seconds (across all batches).
    busy_s: float = 0.0
    #: Parent wall clock from pool launch to the last emitted chunk.
    wall_s: float = 0.0

    def utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent materializing."""
        if self.wall_s <= 0.0 or self.workers <= 0:
            return 0.0
        return self.busy_s / (self.wall_s * self.workers)


@dataclass
class RowBatch:
    """One worker's expanded spec batch, shipped back as raw columns.

    ``counts[j]`` is the row count of spec ``base_index + j`` — zero
    counts are reported so the parent can skip pair interning for empty
    specs exactly like the serial path does.  ``py_local`` indexes the
    *batch-local* ``payloads`` pool (0 = empty payload, ``i`` = the
    pool's ``i-1``-th entry); the parent remaps it onto the shared pool.
    """

    base_index: int
    counts: array
    ts: array
    ob: array
    sz: array
    fl: array
    py_local: array
    payloads: List[bytes] = field(default_factory=list)
    #: Worker-side seconds spent materializing this batch.
    busy_s: float = 0.0


def _materialize_batch(task: Tuple[int, int, Sequence[ConnectionSpec]]) -> RowBatch:
    """Worker entry: expand a contiguous spec slice to column arrays.

    Runs in a pool process.  Every spec uses its private
    ``derive_seed(seed, spec_index)`` RNG — the same stream the serial
    path would draw — so the rows are bit-identical to a serial
    expansion of the same slice.
    """
    seed, base_index, specs = task
    started = time.perf_counter()
    counts = array("l")
    ts = array("d")
    ob = array("b")
    sz = array("q")
    fl = array("I")
    py_local = array("l")
    pool_index = {}
    payloads: List[bytes] = []
    for offset, spec in enumerate(specs):
        rows = connection_rows(
            spec, random.Random(derive_seed(seed, base_index + offset))
        )
        counts.append(len(rows))
        if not rows:
            continue
        ts.extend([row[0] for row in rows])
        ob.extend([1 if row[1] else 0 for row in rows])
        sz.extend([row[2] for row in rows])
        fl.extend([row[3] for row in rows])
        for row in rows:
            payload = row[4]
            if not payload:
                py_local.append(0)
                continue
            pid = pool_index.get(payload)
            if pid is None:
                pid = len(payloads) + 1
                pool_index[payload] = pid
                payloads.append(payload)
            py_local.append(pid)
    return RowBatch(
        base_index=base_index,
        counts=counts,
        ts=ts,
        ob=ob,
        sz=sz,
        fl=fl,
        py_local=py_local,
        payloads=payloads,
        busy_s=time.perf_counter() - started,
    )


def _batch_size_for(spec_count: int, workers: int) -> int:
    """Batches per worker ≈ 4: small enough that the ordered consumption
    pipeline stays busy, large enough that per-batch dispatch overhead
    (task pickle + result unpickle) amortizes.  Batch size provably does
    not affect output — only wall clock."""
    return max(16, min(4096, -(-spec_count // (workers * 4))))


def parallel_tables(
    generator,
    chunk_size: Optional[int] = 65536,
    workers: int = 2,
    batch_size: Optional[int] = None,
    stats: Optional[GenerationStats] = None,
) -> Iterator[PacketTable]:
    """``TraceGenerator.iter_tables`` on a process pool.

    Yields the byte-identical chunk stream of the serial path (same
    columns, same shared pools, same chunk boundaries) while the heavy
    per-connection materialization runs on ``workers`` processes.
    Ordered ``imap`` consumption keeps memory bounded by a few in-flight
    batches plus the pending merge window, and overlaps the parent's
    interning/merging with the workers' materialization.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
    if workers < 2:
        yield from generator.iter_tables(chunk_size=chunk_size)
        return

    specs = generator.specs()
    seed = generator.config.seed
    pool_table = PacketTable()
    intern_pair = pool_table._pair_id
    intern_payload = pool_table._payload_id
    flush_floor = max(chunk_size or 0, 65536)

    merger = _PendingMerger()
    emitter = _ChunkEmitter(pool_table, chunk_size)
    use_numpy = merger.use_numpy
    np = _table_mod._np

    if batch_size is None:
        batch_size = _batch_size_for(len(specs), workers)
    tasks = [
        (seed, base, specs[base:base + batch_size])
        for base in range(0, len(specs), batch_size)
    ]
    if stats is not None:
        stats.workers = workers
        stats.batches = len(tasks)

    # Fresh columns pending the next merge.  numpy mode buffers the
    # batches' ndarrays and concatenates at flush; stdlib mode keeps six
    # flat lists (what the stdlib merge consumes).
    buffers: List[list] = [[], [], [], [], [], []]

    def take_fresh() -> tuple:
        nonlocal buffers
        if use_numpy:
            dtypes = (np.float64, np.int64, np.uint32, np.int64,
                      np.int8, np.int64)
            fresh = tuple(
                np.concatenate(buf) if buf else np.empty(0, dtype=dtype)
                for buf, dtype in zip(buffers, dtypes)
            )
        else:
            fresh = tuple(buffers)
        buffers = [[], [], [], [], [], []]
        return fresh

    def append_batch(batch: RowBatch, batch_specs: Sequence[ConnectionSpec]) -> None:
        """Intern the batch into the shared pools (serial order contract)
        and stage its six columns for the next merge."""
        if use_numpy:
            counts = np.asarray(batch.counts, dtype=np.int64)
            ts = np.asarray(batch.ts, dtype=np.float64)
            ob = np.asarray(batch.ob, dtype=np.int8)
            sz = np.asarray(batch.sz, dtype=np.int64)
            fl = np.asarray(batch.fl, dtype=np.uint32)
            # Pairs: per spec in index order, empty specs skipped — the
            # serial path's interning order exactly.
            outs = np.zeros(len(counts), dtype=np.int64)
            ins = np.zeros(len(counts), dtype=np.int64)
            for j, count in enumerate(counts.tolist()):
                if not count:
                    continue
                base_pair = batch_specs[j].pair_from_client
                outs[j] = intern_pair(base_pair)
                ins[j] = intern_pair(base_pair.inverse)
            pi = np.where(ob != 0, np.repeat(outs, counts), np.repeat(ins, counts))
            # Payloads: the batch-local pool lists payloads in first-
            # appearance row order, so interning it front to back lands
            # new payloads at the exact global ids the serial path's
            # row-order interning would assign.
            remap = np.empty(len(batch.payloads) + 1, dtype=np.int64)
            remap[0] = 0
            for k, payload in enumerate(batch.payloads):
                remap[k + 1] = intern_payload(payload)
            py = remap[np.asarray(batch.py_local, dtype=np.int64)]
            staged = (ts, sz, fl, py, ob, pi)
            for buf, column in zip(buffers, staged):
                buf.append(column)
        else:
            ob = list(batch.ob)
            remap = [0] + [intern_payload(payload) for payload in batch.payloads]
            py = [remap[index] for index in batch.py_local]
            pi: List[int] = []
            position = 0
            for j, count in enumerate(batch.counts):
                if not count:
                    continue
                base_pair = batch_specs[j].pair_from_client
                pid_out = intern_pair(base_pair)
                pid_in = intern_pair(base_pair.inverse)
                pi.extend(
                    pid_out if ob[position + row] else pid_in
                    for row in range(count)
                )
                position += count
            staged = (list(batch.ts), list(batch.sz), list(batch.fl),
                      py, ob, pi)
            for buf, column in zip(buffers, staged):
                buf.extend(column)

    pool = WorkerPool(workers)
    pool.launch()
    started = time.perf_counter()
    completed = False
    try:
        grown = 0
        results = pool.imap(_materialize_batch, tasks)
        for (_, base, batch_specs), batch in zip(tasks, results):
            if grown >= flush_floor:
                grown = 0
                # Valid frontier: every row of this batch and all later
                # ones is timestamped at or after this batch's first
                # spec start (specs are start-sorted; rows never precede
                # their spec's start).
                columns, cut = merger.merge(take_fresh(), batch_specs[0].start)
                if cut:
                    yield from emitter.emit(columns, cut)
            append_batch(batch, batch_specs)
            grown += len(batch.ts)
            if stats is not None:
                stats.rows += len(batch.ts)
                stats.busy_s += batch.busy_s
        columns, cut = merger.merge(take_fresh(), None)
        yield from emitter.emit(columns, cut)
        if len(emitter.current):
            yield emitter.current
        completed = True
    finally:
        if stats is not None:
            stats.wall_s = time.perf_counter() - started
        if completed:
            pool.stop()
        else:
            # Abandoned mid-stream (consumer stopped early or an error
            # propagated): close() would wait out every queued batch.
            pool.terminate()
