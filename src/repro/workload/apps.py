"""Per-application connection models.

Each model produces :class:`ConnectionSpec` objects — a declarative
description of one connection (who initiates, ports, payload prefixes,
byte volumes, pacing) — and :func:`connection_packets` expands a spec into
a time-ordered packet schedule.

Payload prefixes are crafted to match the Table 1 identification patterns,
so the section-3 traffic analyzer classifies the synthetic trace the same
way the paper's analyzer classified the campus trace.  The *unknown* model
emits high-entropy payloads on random high ports — the paper's
protocol-encrypted P2P traffic that defeats payload inspection and
motivates the bitmap filter in the first place.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.net.headers import TCPFlags
from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import Direction, Packet, SocketPair

#: One packet of a connection schedule, before socket pairs are attached:
#: ``(timestamp, from_client, size, flags, payload)``.  The columnar
#: generator consumes rows directly; :func:`connection_packets` wraps them
#: into :class:`Packet` objects.
ConnectionRow = Tuple[float, bool, int, int, bytes]
from repro.workload.distributions import (
    connection_lifetime,
    out_in_delay,
    p2p_listen_port,
    split_bytes,
)
from repro.workload.topology import AddressSpace, HostModel

# Application labels — ground truth carried on specs, and the vocabulary
# the analyzer's classifier reports.
APP_HTTP = "http"
APP_FTP = "ftp"
APP_FTP_DATA = "ftp-data"
APP_DNS = "dns"
APP_SMTP = "smtp"
APP_SSH = "ssh"
APP_IMAP = "imap"
APP_BITTORRENT = "bittorrent"
APP_EDONKEY = "edonkey"
APP_GNUTELLA = "gnutella"
APP_FASTTRACK = "fasttrack"
APP_UNKNOWN = "unknown"
APP_OTHER = "other"

#: The paper's P2P category (Table 2 rows bittorrent/gnutella/edonkey).
P2P_APPS = frozenset({APP_BITTORRENT, APP_EDONKEY, APP_GNUTELLA, APP_FASTTRACK})

IP_HEADER = 20
TCP_HEADER = 20
UDP_HEADER = 8


class Initiator(enum.Enum):
    """Who opens the connection, seen from the client network."""

    CLIENT = "client"  # outbound-initiated
    REMOTE = "remote"  # inbound-initiated (what the bitmap filter refuses)


@dataclass
class ScriptedMessage:
    """A protocol message at a fixed offset into the data phase."""

    offset: float
    from_initiator: bool
    payload: bytes


@dataclass
class ConnectionSpec:
    """Declarative description of one connection."""

    app: str
    start: float
    protocol: int
    client_addr: int
    client_port: int
    remote_addr: int
    remote_port: int
    initiator: Initiator
    #: First data payload sent by the initiator / responder (drives the
    #: analyzer's pattern matching; empty means no distinguishing payload).
    request_payload: bytes = b""
    response_payload: bytes = b""
    #: Bulk payload bytes beyond the scripted/first messages.
    bytes_client_to_remote: int = 0
    bytes_remote_to_client: int = 0
    duration: float = 1.0
    rtt: float = 0.05
    mean_packet: int = 1200
    #: Extra protocol messages (e.g. FTP control dialogue).
    script: List[ScriptedMessage] = field(default_factory=list)
    #: UDP only: request/response rounds.
    udp_exchanges: int = 1
    #: Close with RST instead of a FIN handshake.
    abortive_close: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.bytes_client_to_remote < 0 or self.bytes_remote_to_client < 0:
            raise ValueError("byte volumes must be non-negative")
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive: {self.rtt}")

    @property
    def pair_from_client(self) -> SocketPair:
        return SocketPair(
            self.protocol,
            self.client_addr,
            self.client_port,
            self.remote_addr,
            self.remote_port,
        )

    @property
    def is_p2p(self) -> bool:
        return self.app in P2P_APPS

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def total_payload_bytes(self) -> int:
        return (
            self.bytes_client_to_remote
            + self.bytes_remote_to_client
            + len(self.request_payload)
            + len(self.response_payload)
            + sum(len(message.payload) for message in self.script)
        )


def _row(
    spec: ConnectionSpec,
    timestamp: float,
    from_client: bool,
    payload_len: int,
    flags: int = 0,
    payload: bytes = b"",
) -> ConnectionRow:
    """Build one schedule row of a connection with a correct wire size."""
    transport = TCP_HEADER if spec.protocol == IPPROTO_TCP else UDP_HEADER
    size = IP_HEADER + transport + max(payload_len, len(payload))
    return (timestamp, from_client, size, flags, payload)


def _tcp_rows(spec: ConnectionSpec, rng: random.Random) -> List[ConnectionRow]:
    """Expand a TCP spec: handshake, scripted dialogue, bulk data with
    delayed ACKs, and a FIN/RST close — all inside ``spec.duration`` so the
    SYN-to-FIN lifetime matches the drawn value."""
    rows: List[ConnectionRow] = []
    append = rows.append
    initiator_is_client = spec.initiator is Initiator.CLIENT
    rtt = spec.rtt
    syn = TCPFlags.SYN
    synack = TCPFlags.SYN | TCPFlags.ACK
    ack = TCPFlags.ACK
    psh_ack = TCPFlags.PSH | TCPFlags.ACK
    # Every _tcp_rows row is TCP, so the _row() helper's per-call header
    # arithmetic collapses to one hoisted constant (this function builds
    # every data packet and ACK of every trace).
    bare = IP_HEADER + TCP_HEADER

    t0 = spec.start
    append((t0, initiator_is_client, bare, syn, b""))
    append((t0 + rtt, not initiator_is_client, bare, synack, b""))
    append((t0 + rtt + rtt * 0.1, initiator_is_client, bare, ack, b""))

    data_start = t0 + rtt * 1.2
    close_start = max(data_start + rtt, spec.end - 2.2 * rtt)

    # First payloads: initiator's request, responder's reply one RTT later.
    cursor = data_start
    if spec.request_payload:
        payload = spec.request_payload
        append((cursor, initiator_is_client, bare + len(payload), psh_ack, payload))
        cursor += rtt
    if spec.response_payload:
        payload = spec.response_payload
        append((cursor, not initiator_is_client, bare + len(payload), psh_ack, payload))
        cursor += rtt * 0.5

    # Scripted dialogue (offsets relative to the data phase).
    for message in spec.script:
        when = min(data_start + message.offset, close_start - rtt * 0.5)
        from_client = initiator_is_client == message.from_initiator
        payload = message.payload
        append((when, from_client, bare + len(payload), psh_ack, payload))

    # Bulk data, paced across the remaining window, with stretch ACKs from
    # the receiving side (bidirectionality matters for the filters).
    bulk_start = max(cursor, data_start)
    span = max(close_start - bulk_start, rtt)
    random = rng.random
    for from_client, total in (
        (True, spec.bytes_client_to_remote),
        (False, spec.bytes_remote_to_client),
    ):
        if total <= 0:
            continue
        not_from_client = not from_client
        chunks = split_bytes(rng, total, spec.mean_packet)
        gap = span / (len(chunks) + 1)
        for index, chunk in enumerate(chunks, start=1):
            when = bulk_start + index * gap * (1.0 + 0.1 * (random() - 0.5))
            append((when, from_client, bare + chunk, psh_ack, b""))
            if index % 2 == 0:  # delayed ACK from the receiver (RFC 1122)
                ack_delay = min(out_in_delay(rng), gap * 1.8, 1.0)
                append((when + ack_delay, not_from_client, bare, ack, b""))

    # Close.
    if spec.abortive_close:
        closer_is_client = initiator_is_client if rng.random() < 0.5 else not initiator_is_client
        append((spec.end, closer_is_client, bare, TCPFlags.RST, b""))
    else:
        fin_ack = TCPFlags.FIN | TCPFlags.ACK
        append((spec.end, initiator_is_client, bare, fin_ack, b""))
        append((spec.end + rtt, not initiator_is_client, bare, fin_ack, b""))
        append((spec.end + 1.1 * rtt, initiator_is_client, bare, ack, b""))

    rows.sort(key=_row_time)
    return rows


def _udp_rows(spec: ConnectionSpec, rng: random.Random) -> List[ConnectionRow]:
    """Expand a UDP spec into request/response datagram rounds."""
    rows: List[ConnectionRow] = []
    initiator_is_client = spec.initiator is Initiator.CLIENT
    rounds = max(1, spec.udp_exchanges)
    gap = spec.duration / rounds
    request_extra = _chunked(spec.bytes_client_to_remote if initiator_is_client
                             else spec.bytes_remote_to_client, rounds)
    response_extra = _chunked(spec.bytes_remote_to_client if initiator_is_client
                              else spec.bytes_client_to_remote, rounds)
    for index in range(rounds):
        when = spec.start + index * gap * (1.0 + 0.05 * (rng.random() - 0.5))
        request_payload = spec.request_payload if index == 0 else b""
        response_payload = spec.response_payload if index == 0 else b""
        rows.append(
            _row(
                spec,
                when,
                initiator_is_client,
                request_extra[index],
                payload=request_payload,
            )
        )
        delay = min(out_in_delay(rng), gap if gap > 0 else spec.rtt)
        rows.append(
            _row(
                spec,
                when + max(delay, spec.rtt * 0.5),
                not initiator_is_client,
                response_extra[index],
                payload=response_payload,
            )
        )
    rows.sort(key=_row_time)
    return rows


def _row_time(row: ConnectionRow) -> float:
    return row[0]


def _chunked(total: int, rounds: int) -> List[int]:
    """Spread ``total`` bytes across ``rounds`` datagrams (UDP stays small:
    the paper's trace carries 99.5 % of bytes over TCP)."""
    base = total // rounds
    sizes = [min(base, 1400)] * rounds
    sizes[0] += min(total - base * rounds, 1400 - sizes[0]) if rounds else 0
    return sizes


def connection_rows(spec: ConnectionSpec, rng: random.Random) -> List[ConnectionRow]:
    """All schedule rows of a connection, in timestamp order.

    A row is ``(timestamp, from_client, size, flags, payload)`` — the
    connection's two socket pairs (client→remote and its inverse) are
    attached by the consumer, so columnar trace assembly interns each
    pair once per connection instead of constructing one per packet.
    """
    if spec.protocol == IPPROTO_TCP:
        return _tcp_rows(spec, rng)
    return _udp_rows(spec, rng)


def connection_packets(spec: ConnectionSpec, rng: random.Random) -> List[Packet]:
    """All packets of a connection, in timestamp order."""
    pair = spec.pair_from_client
    inverse = pair.inverse
    outbound, inbound = Direction.OUTBOUND, Direction.INBOUND
    return [
        Packet(
            timestamp,
            pair if from_client else inverse,
            size=size,
            flags=flags,
            payload=payload,
            direction=outbound if from_client else inbound,
        )
        for timestamp, from_client, size, flags, payload in connection_rows(spec, rng)
    ]


# ---------------------------------------------------------------------------
# Payload builders matching the Table 1 patterns
# ---------------------------------------------------------------------------


def bittorrent_handshake(rng: random.Random) -> bytes:
    """``\\x13BitTorrent protocol`` + reserved + info-hash + peer-id."""
    return (
        b"\x13BitTorrent protocol"
        + bytes(8)
        + _random_bytes(rng, 20)
        + b"-AZ2504-"
        + _random_bytes(rng, 12)
    )


def bittorrent_dht_query(rng: random.Random) -> bytes:
    """A bencoded DHT ping: ``d1:ad2:id20:...``."""
    return b"d1:ad2:id20:" + _random_bytes(rng, 20) + b"e1:q4:ping1:t2:aa1:y1:qe"


def edonkey_hello(rng: random.Random) -> bytes:
    """eMule TCP hello: ``\\xe3`` + little-endian length + opcode 0x01."""
    body = b"\x01" + _random_bytes(rng, 40)
    return b"\xe3" + len(body).to_bytes(4, "little") + body


def edonkey_udp_ping(rng: random.Random) -> bytes:
    """eMule UDP: protocol byte 0xe5 + a server-status opcode."""
    return b"\xe5\x96" + _random_bytes(rng, 6)


def gnutella_connect() -> bytes:
    return b"GNUTELLA CONNECT/0.6\r\nUser-Agent: LimeWire/4.12\r\n\r\n"

def gnutella_ok() -> bytes:
    return b"GNUTELLA/0.6 200 OK\r\n\r\n"


def gnutella_udp(rng: random.Random) -> bytes:
    """Gnutella2-style UDP: ``GND`` + flags."""
    return b"GND\x02" + _random_bytes(rng, 12)


def fasttrack_get(rng: random.Random) -> bytes:
    return b"GET /.hash=" + _random_hex(rng, 32) + b" HTTP/1.1\r\n\r\n"


def http_get(rng: random.Random, host: str = "www.example.com") -> bytes:
    path = "/" + _random_hex(rng, 6).decode()
    return (
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
        "User-Agent: Mozilla/5.0\r\nAccept: */*\r\n\r\n"
    ).encode()


def http_response() -> bytes:
    return (
        b"HTTP/1.1 200 OK\r\nServer: Apache/2.0\r\n"
        b"Content-Type: text/html\r\nContent-Length: 12345\r\n\r\n<html>"
    )


def ftp_banner() -> bytes:
    return b"220 ProFTPD 1.3.0 FTP Server ready.\r\n"


def dns_query(rng: random.Random) -> bytes:
    """A plausible DNS query packet (header + one QNAME)."""
    header = _random_bytes(rng, 2) + b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
    qname = b"\x03www" + bytes([7]) + _random_hex(rng, 7)[:7] + b"\x03com\x00"
    return header + qname + b"\x00\x01\x00\x01"


def random_encrypted(rng: random.Random, length: int = 96) -> bytes:
    """High-entropy bytes — protocol-encrypted P2P (MSE/PE) payloads that
    defeat every Table 1 pattern."""
    return _random_bytes(rng, length)


def _random_bytes(rng: random.Random, length: int) -> bytes:
    return bytes(rng.getrandbits(8) for _ in range(length))


def _random_hex(rng: random.Random, length: int) -> bytes:
    return bytes(rng.choice(b"0123456789abcdef") for _ in range(length))


# ---------------------------------------------------------------------------
# Application factories
# ---------------------------------------------------------------------------

#: Factory signature: (rng, host, address space, start time) -> specs.
AppFactory = Callable[[random.Random, HostModel, AddressSpace, float], List[ConnectionSpec]]

EDONKEY_TCP_PORT = 4662
EDONKEY_UDP_PORTS = (4661, 4665, 4672)
BITTORRENT_PORTS = tuple(range(6881, 6890))
GNUTELLA_PORTS = (6346, 6347)


def _listen_port(host: HostModel, rng: random.Random, app: str, well_known: Sequence[int]) -> int:
    """The host's stable P2P listen port (random high port usually)."""
    port = host.listen_ports.get(app)
    if port is None:
        port = p2p_listen_port(rng, well_known, well_known_weight=0.25)
        host.listen_ports[app] = port
    return port


def _short_duration(rng: random.Random, cap: float = 44.0) -> float:
    return min(connection_lifetime(rng), cap)


def make_http(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    """A client-initiated web fetch — download-heavy, short-lived."""
    server = rng.choice(addresses.sticky_peers("web", 40))
    port = rng.choices([80, 8080, 3128, 443], weights=[80, 6, 4, 10], k=1)[0]
    payload = random_encrypted(rng, 80) if port == 443 else http_get(rng)
    response = b"" if port == 443 else http_response()
    return [
        ConnectionSpec(
            app=APP_HTTP,
            start=start,
            protocol=IPPROTO_TCP,
            client_addr=host.addr,
            client_port=host.ports.allocate(start),
            remote_addr=server,
            remote_port=port,
            initiator=Initiator.CLIENT,
            request_payload=payload,
            response_payload=response,
            bytes_client_to_remote=rng.randint(200, 2000),
            bytes_remote_to_client=int(connection_lifetime(rng) * 2400) + rng.randint(2000, 40000),
            duration=connection_lifetime(rng),
            rtt=out_in_delay(rng) * 0.5 + 0.01,
        )
    ]


def make_ftp(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    """An FTP session: a control connection whose dialogue names the data
    connection (active PORT or passive PASV), plus that data connection —
    the paper's second identification strategy exercises exactly this."""
    server = rng.choice(addresses.sticky_peers("ftp", 6))
    control_port = host.ports.allocate(start)
    duration = max(8.0, _short_duration(rng, cap=120.0))
    passive = rng.random() < 0.6
    data_start = start + 3.0

    if passive:
        data_port = rng.randint(20000, 50000)
        data_spec = ConnectionSpec(
            app=APP_FTP_DATA,
            start=data_start,
            protocol=IPPROTO_TCP,
            client_addr=host.addr,
            client_port=host.ports.allocate(data_start),
            remote_addr=server,
            remote_port=data_port,
            initiator=Initiator.CLIENT,
            bytes_remote_to_client=rng.randint(30_000, 700_000),
            duration=max(4.0, duration - 4.0),
            rtt=out_in_delay(rng) * 0.5 + 0.01,
        )
        pasv_reply = _ftp_endpoint_line(b"227 Entering Passive Mode (", server, data_port)
        script = [
            ScriptedMessage(0.5, True, b"USER anonymous\r\n"),
            ScriptedMessage(1.0, False, b"331 Anonymous login ok\r\n"),
            ScriptedMessage(1.5, True, b"PASV\r\n"),
            ScriptedMessage(2.0, False, pasv_reply),
            ScriptedMessage(2.5, True, b"RETR somefile.iso\r\n"),
            ScriptedMessage(3.0, False, b"150 Opening BINARY mode data connection\r\n"),
        ]
    else:
        data_port = rng.randint(1024, 5000)
        data_spec = ConnectionSpec(
            app=APP_FTP_DATA,
            start=data_start,
            protocol=IPPROTO_TCP,
            client_addr=host.addr,
            client_port=data_port,
            remote_addr=server,
            remote_port=20,
            initiator=Initiator.REMOTE,
            bytes_remote_to_client=rng.randint(30_000, 700_000),
            duration=max(4.0, duration - 4.0),
            rtt=out_in_delay(rng) * 0.5 + 0.01,
        )
        port_cmd = _ftp_endpoint_line(b"PORT ", host.addr, data_port, trailing=b"\r\n")
        script = [
            ScriptedMessage(0.5, True, b"USER anonymous\r\n"),
            ScriptedMessage(1.0, False, b"331 Anonymous login ok\r\n"),
            ScriptedMessage(1.5, True, port_cmd),
            ScriptedMessage(2.0, False, b"200 PORT command successful\r\n"),
            ScriptedMessage(2.5, True, b"RETR somefile.iso\r\n"),
            ScriptedMessage(3.0, False, b"150 Opening BINARY mode data connection\r\n"),
        ]

    control = ConnectionSpec(
        app=APP_FTP,
        start=start,
        protocol=IPPROTO_TCP,
        client_addr=host.addr,
        client_port=control_port,
        remote_addr=server,
        remote_port=21,
        initiator=Initiator.CLIENT,
        response_payload=ftp_banner(),
        script=script,
        duration=duration,
        rtt=out_in_delay(rng) * 0.5 + 0.01,
    )
    return [control, data_spec]


def _ftp_endpoint_line(prefix: bytes, addr: int, port: int, trailing: bytes = b")\r\n") -> bytes:
    octets = ",".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))
    return prefix + f"{octets},{port >> 8},{port & 0xFF}".encode() + trailing


def make_dns(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    resolver = addresses.sticky_peers("dns", 2)[0]
    return [
        ConnectionSpec(
            app=APP_DNS,
            start=start,
            protocol=IPPROTO_UDP,
            client_addr=host.addr,
            client_port=rng.randint(1024, 65000),
            remote_addr=resolver,
            remote_port=53,
            initiator=Initiator.CLIENT,
            request_payload=dns_query(rng),
            bytes_remote_to_client=rng.randint(60, 400),
            duration=0.2,
            rtt=0.02,
            udp_exchanges=1,
        )
    ]


def make_other(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    """Miscellaneous traditional services (SMTP/SSH/IMAP) on their ports."""
    app, port, request, response = rng.choice(
        [
            (APP_SMTP, 25, b"EHLO client.example\r\n", b"220 mail.example.com ESMTP Postfix\r\n"),
            (APP_SSH, 22, b"SSH-2.0-OpenSSH_4.3\r\n", b"SSH-2.0-OpenSSH_4.2\r\n"),
            (APP_IMAP, 143, b"a001 LOGIN user pass\r\n", b"* OK IMAP4rev1 ready\r\n"),
        ]
    )
    return [
        ConnectionSpec(
            app=app,
            start=start,
            protocol=IPPROTO_TCP,
            client_addr=host.addr,
            client_port=host.ports.allocate(start),
            remote_addr=addresses.random_remote(rng),
            remote_port=port,
            initiator=Initiator.CLIENT,
            request_payload=request,
            response_payload=response,
            bytes_client_to_remote=rng.randint(500, 20_000),
            bytes_remote_to_client=rng.randint(500, 20_000),
            duration=connection_lifetime(rng),
            rtt=out_in_delay(rng) * 0.5 + 0.01,
        )
    ]


def _p2p_transfer_spec(
    rng: random.Random,
    host: HostModel,
    addresses: AddressSpace,
    start: float,
    app: str,
    peer_pool: str,
    listen_ports: Sequence[int],
    request_payload: bytes,
    response_payload: bytes,
    serving_probability: float,
    upload_scale: int,
) -> ConnectionSpec:
    """A P2P TCP transfer: with ``serving_probability`` the remote peer
    initiates and our client *uploads* (the traffic the paper bounds);
    otherwise the client leeches."""
    peer = rng.choice(addresses.sticky_peers(peer_pool, 120))
    duration = connection_lifetime(rng)
    serving = rng.random() < serving_probability
    # Transfers are rate-bound (an upload slot) but go idle on long-lived
    # connections, so bytes scale with lifetime only up to a few minutes —
    # this also keeps the lifetime tail from producing monster flows.
    transfer_bytes = int(min(duration, 240.0) * upload_scale)
    if serving:
        return ConnectionSpec(
            app=app,
            start=start,
            protocol=IPPROTO_TCP,
            client_addr=host.addr,
            client_port=_listen_port(host, rng, app, listen_ports),
            remote_addr=peer,
            remote_port=rng.randint(1024, 65000),
            initiator=Initiator.REMOTE,
            request_payload=request_payload,
            response_payload=response_payload,
            bytes_client_to_remote=int(transfer_bytes * rng.uniform(0.5, 1.5)),
            bytes_remote_to_client=rng.randint(500, 5_000),
            duration=duration,
            rtt=out_in_delay(rng) * 0.5 + 0.01,
            abortive_close=rng.random() < 0.15,
        )
    return ConnectionSpec(
        app=app,
        start=start,
        protocol=IPPROTO_TCP,
        client_addr=host.addr,
        client_port=host.ports.allocate(start),
        remote_addr=peer,
        remote_port=p2p_listen_port(rng, listen_ports, well_known_weight=0.25),
        initiator=Initiator.CLIENT,
        request_payload=request_payload,
        response_payload=response_payload,
        # Leeching peers still upload pieces in return (tit-for-tat), which
        # is the 20 % of upload bytes the paper sees on *outbound*
        # connections.
        bytes_client_to_remote=int(transfer_bytes * rng.uniform(0.3, 0.5)),
        bytes_remote_to_client=int(transfer_bytes * rng.uniform(0.05, 0.2)),
        duration=duration,
        rtt=out_in_delay(rng) * 0.5 + 0.01,
        abortive_close=rng.random() < 0.15,
    )


def make_bittorrent(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    """BitTorrent: mostly tiny UDP DHT chatter, some TCP peer transfers."""
    if rng.random() < 0.80:  # DHT ping/query — the UDP connection flood
        remote_first = rng.random() < 0.35
        return [
            ConnectionSpec(
                app=APP_BITTORRENT,
                start=start,
                protocol=IPPROTO_UDP,
                client_addr=host.addr,
                client_port=_listen_port(host, rng, APP_BITTORRENT + "-udp", BITTORRENT_PORTS),
                remote_addr=addresses.random_remote(rng),
                remote_port=rng.randint(1024, 65000),
                initiator=Initiator.REMOTE if remote_first else Initiator.CLIENT,
                request_payload=bittorrent_dht_query(rng),
                response_payload=bittorrent_dht_query(rng),
                bytes_client_to_remote=rng.randint(0, 300),
                bytes_remote_to_client=rng.randint(0, 300),
                duration=rng.uniform(0.2, 3.0),
                rtt=0.05,
                udp_exchanges=rng.randint(1, 3),
            )
        ]
    handshake = bittorrent_handshake(rng)
    return [
        _p2p_transfer_spec(
            rng,
            host,
            addresses,
            start,
            app=APP_BITTORRENT,
            peer_pool="bt-swarm",
            listen_ports=BITTORRENT_PORTS,
            request_payload=handshake,
            response_payload=bittorrent_handshake(rng),
            serving_probability=0.70,
            upload_scale=3_100,  # bytes of upload per second of lifetime
        )
    ]


def make_edonkey(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    if rng.random() < 0.72:  # KAD / server-status UDP
        remote_first = rng.random() < 0.35
        return [
            ConnectionSpec(
                app=APP_EDONKEY,
                start=start,
                protocol=IPPROTO_UDP,
                client_addr=host.addr,
                client_port=rng.choice(EDONKEY_UDP_PORTS)
                if rng.random() < 0.5
                else rng.randint(1024, 65000),
                remote_addr=addresses.random_remote(rng),
                remote_port=rng.choice(EDONKEY_UDP_PORTS),
                initiator=Initiator.REMOTE if remote_first else Initiator.CLIENT,
                request_payload=edonkey_udp_ping(rng),
                response_payload=edonkey_udp_ping(rng),
                duration=rng.uniform(0.1, 2.0),
                rtt=0.06,
                udp_exchanges=rng.randint(1, 2),
            )
        ]
    return [
        _p2p_transfer_spec(
            rng,
            host,
            addresses,
            start,
            app=APP_EDONKEY,
            peer_pool="ed2k-peers",
            listen_ports=(EDONKEY_TCP_PORT,),
            request_payload=edonkey_hello(rng),
            response_payload=edonkey_hello(rng),
            serving_probability=0.70,
            upload_scale=7_100,
        )
    ]


def make_gnutella(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    if rng.random() < 0.45:  # Gnutella UDP pings
        return [
            ConnectionSpec(
                app=APP_GNUTELLA,
                start=start,
                protocol=IPPROTO_UDP,
                client_addr=host.addr,
                client_port=_listen_port(host, rng, APP_GNUTELLA + "-udp", GNUTELLA_PORTS),
                remote_addr=addresses.random_remote(rng),
                remote_port=rng.randint(1024, 65000),
                initiator=Initiator.CLIENT if rng.random() < 0.6 else Initiator.REMOTE,
                request_payload=gnutella_udp(rng),
                response_payload=gnutella_udp(rng),
                duration=rng.uniform(0.1, 1.5),
                rtt=0.05,
                udp_exchanges=1,
            )
        ]
    return [
        _p2p_transfer_spec(
            rng,
            host,
            addresses,
            start,
            app=APP_GNUTELLA,
            peer_pool="gnutella-peers",
            listen_ports=GNUTELLA_PORTS,
            request_payload=gnutella_connect(),
            response_payload=gnutella_ok(),
            serving_probability=0.70,
            upload_scale=7_400,
        )
    ]


def make_unknown(
    rng: random.Random, host: HostModel, addresses: AddressSpace, start: float
) -> List[ConnectionSpec]:
    """Protocol-encrypted P2P: P2P traffic shape, unidentifiable payloads.

    The paper: "we believe that many of those unidentified connections have
    a high probability to also be peer-to-peer traffic" — port distribution
    close to P2P, heavy upload.
    """
    if rng.random() < 0.55:  # encrypted UDP chatter
        return [
            ConnectionSpec(
                app=APP_UNKNOWN,
                start=start,
                protocol=IPPROTO_UDP,
                client_addr=host.addr,
                client_port=_listen_port(host, rng, APP_UNKNOWN + "-udp", ()),
                remote_addr=addresses.random_remote(rng),
                remote_port=rng.randint(10000, 40000),
                initiator=Initiator.CLIENT if rng.random() < 0.6 else Initiator.REMOTE,
                request_payload=random_encrypted(rng, rng.randint(30, 120)),
                response_payload=random_encrypted(rng, rng.randint(30, 120)),
                duration=rng.uniform(0.2, 2.5),
                rtt=0.05,
                udp_exchanges=rng.randint(1, 3),
            )
        ]
    return [
        _p2p_transfer_spec(
            rng,
            host,
            addresses,
            start,
            app=APP_UNKNOWN,
            peer_pool="mse-peers",
            listen_ports=(),
            request_payload=random_encrypted(rng, 96),
            response_payload=random_encrypted(rng, 96),
            serving_probability=0.72,
            upload_scale=9_800,
        )
    ]


#: The default application factory registry.
APP_FACTORIES: Dict[str, AppFactory] = {
    APP_HTTP: make_http,
    APP_FTP: make_ftp,
    APP_DNS: make_dns,
    APP_OTHER: make_other,
    APP_BITTORRENT: make_bittorrent,
    APP_EDONKEY: make_edonkey,
    APP_GNUTELLA: make_gnutella,
    APP_UNKNOWN: make_unknown,
}
