"""Random distributions used by the workload models.

Everything takes an explicit :class:`random.Random` so traces are fully
reproducible from a seed.  The shapes are chosen to match the paper's
measured marginals:

* connection lifetimes — heavy-tailed: 90 % under 45 s, 95 % under 240 s,
  fewer than 1 % over 810 s, mean ≈ 46 s (Figure 4);
* out-in packet delays — 99 % under 2.8 s with a sub-second mode
  (Figure 5);
* P2P listen ports — "a great deal of random ports between port 10000 and
  port 40000" (Figure 2).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple


def bounded_pareto(rng: random.Random, alpha: float, low: float, high: float) -> float:
    """Pareto sample truncated to ``[low, high]`` by inverse transform."""
    if not low < high:
        raise ValueError(f"need low < high, got {low}, {high}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive: {alpha}")
    u = rng.random()
    ha = (low / high) ** alpha
    return low / ((1.0 - u * (1.0 - ha)) ** (1.0 / alpha))


def lognormal(rng: random.Random, median: float, sigma: float) -> float:
    """Log-normal sample parameterized by its median."""
    if median <= 0:
        raise ValueError(f"median must be positive: {median}")
    return median * math.exp(sigma * rng.gauss(0.0, 1.0))


def connection_lifetime(rng: random.Random) -> float:
    """Lifetime matching Figure 4's quantiles.

    A mixture: the mass of short request/response connections (log-normal,
    median ≈ 4 s), a mid tail, and a thin long tail capped at six hours
    (the paper's observed maximum).
    """
    u = rng.random()
    if u < 0.91:
        # Short interactive connections: the 90 % mass under 45 s (a hair
        # over 0.90 so the empirical 90th percentile sits below the knee).
        value = lognormal(rng, median=7.0, sigma=1.35)
        return min(value, 44.0)
    if u < 0.955:
        # Medium: up to the 4-minute knee (95th percentile at 240 s).
        return rng.uniform(44.0, 240.0)
    if u < 0.992:
        # Long: up to the 810 s knee (<1 % exceed it).
        return rng.uniform(240.0, 810.0)
    # Very long tail, capped at six hours (the paper's observed maximum).
    return bounded_pareto(rng, alpha=1.8, low=810.0, high=21600.0)


def out_in_delay(rng: random.Random) -> float:
    """Network round-trip component of the out-in packet delay.

    99 % below 2.8 s (Figure 5-c): mostly tens-to-hundreds of milliseconds
    with a delayed-ACK / queueing tail.
    """
    u = rng.random()
    if u < 0.90:
        return rng.uniform(0.005, 0.45)
    if u < 0.99:
        return rng.uniform(0.45, 2.8)
    return rng.uniform(2.8, 12.0)


def p2p_listen_port(rng: random.Random, well_known: Sequence[int], well_known_weight: float) -> int:
    """A P2P service port: occasionally a well-known default, otherwise a
    random high port in [10000, 40000]."""
    if well_known and rng.random() < well_known_weight:
        return rng.choice(list(well_known))
    return rng.randint(10000, 40000)


def zipf_choice(rng: random.Random, items: Sequence, skew: float = 1.2) -> object:
    """Pick from ``items`` with Zipf-like preference for the head."""
    if not items:
        raise ValueError("no items")
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
    return rng.choices(list(items), weights=weights, k=1)[0]


def poisson_arrivals(
    rng: random.Random, rate: float, duration: float, start: float = 0.0
) -> List[float]:
    """Arrival times of a Poisson process over ``[start, start+duration)``."""
    if rate < 0 or duration < 0:
        raise ValueError("rate and duration must be non-negative")
    times = []
    now = start
    end = start + duration
    if rate == 0:
        return times
    while True:
        now += rng.expovariate(rate)
        if now >= end:
            return times
        times.append(now)


def diurnal_rate(base_rate: float, time_of_day: float, amplitude: float = 0.3) -> float:
    """A mild sinusoidal day/night modulation of an arrival rate.

    ``time_of_day`` in seconds; period 24 h.  The campus trace spans 7.5
    daytime hours, so the default amplitude is gentle.
    """
    if base_rate < 0:
        raise ValueError("base_rate must be non-negative")
    phase = 2.0 * math.pi * (time_of_day % 86400.0) / 86400.0
    return base_rate * (1.0 + amplitude * math.sin(phase))


def split_bytes(
    rng: random.Random, total: int, mean_packet: int, jitter: float = 0.3
) -> List[int]:
    """Chop ``total`` payload bytes into packet-sized chunks around
    ``mean_packet`` (≤ 1460, a TCP MSS)."""
    if total < 0:
        raise ValueError(f"negative total: {total}")
    mean_packet = min(mean_packet, 1460)
    chunks: List[int] = []
    append = chunks.append
    random = rng.random
    remaining = total
    # Unrolled max(1, min(size, 1460, remaining)) — this loop runs once
    # per data packet of every generated trace.
    while remaining > 0:
        size = int(mean_packet * (1.0 + jitter * (random() * 2.0 - 1.0)))
        if size > 1460:
            size = 1460
        if size > remaining:
            size = remaining
        if size < 1:
            size = 1
        append(size)
        remaining -= size
    return chunks


def weighted_mix(rng: random.Random, mix: Sequence[Tuple[object, float]]) -> object:
    """Pick one item from ``[(item, weight), ...]``."""
    if not mix:
        raise ValueError("empty mix")
    items = [item for item, _ in mix]
    weights = [weight for _, weight in mix]
    return rng.choices(items, weights=weights, k=1)[0]
