"""Preset traffic mixes — the paper's campus network and counterfactuals.

The paper evaluates on one trace with one application mix.  A natural
robustness question: does the bitmap filter's behaviour depend on that
mix?  These presets span the regimes an ISP actually sees, so the
`bench_ext_mixes.py` ablation can answer it:

* ``CAMPUS_2007`` — the paper's Table 2 mix (the default everywhere).
* ``WEB_ENTERPRISE`` — client/server-dominated: HTTP and traditional
  services, little P2P.  The filter should be nearly invisible here
  (almost everything is client-initiated).
* ``P2P_SATURATED`` — a worst-case swarm-heavy network; the filter's
  reason to exist.
* ``BALANCED`` — an even split, the crossover regime.

Each preset also carries the connection rate multiplier that keeps the
offered *byte* load comparable across mixes (P2P connections average far
fewer bytes than web fetches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.workload.apps import (
    APP_BITTORRENT,
    APP_DNS,
    APP_EDONKEY,
    APP_FTP,
    APP_GNUTELLA,
    APP_HTTP,
    APP_OTHER,
    APP_UNKNOWN,
)
from repro.workload.calibrate import DEFAULT_APP_MIX
from repro.workload.generator import TraceConfig


@dataclass(frozen=True)
class MixPreset:
    """A named application mix with a load-normalising rate factor."""

    name: str
    description: str
    app_mix: Dict[str, float] = field(default_factory=dict)
    #: Multiply a baseline connection rate by this to hold byte load
    #: roughly constant across presets.
    rate_factor: float = 1.0

    def config(
        self, duration: float = 120.0, base_rate: float = 15.0, seed: int = 2
    ) -> TraceConfig:
        return TraceConfig(
            duration=duration,
            connection_rate=base_rate * self.rate_factor,
            seed=seed,
            app_mix=dict(self.app_mix),
        )


CAMPUS_2007 = MixPreset(
    name="campus-2007",
    description="the paper's Table 2 mix: P2P-dominated campus clients",
    app_mix=dict(DEFAULT_APP_MIX),
    rate_factor=1.0,
)

WEB_ENTERPRISE = MixPreset(
    name="web-enterprise",
    description="client/server traffic: web, mail, ssh; trace P2P only",
    app_mix={
        APP_HTTP: 0.62,
        APP_DNS: 0.20,
        APP_OTHER: 0.10,
        APP_FTP: 0.02,
        APP_BITTORRENT: 0.03,
        APP_UNKNOWN: 0.03,
    },
    # Web fetches carry ~6x the bytes of an average campus connection.
    rate_factor=0.35,
)

P2P_SATURATED = MixPreset(
    name="p2p-saturated",
    description="worst case: nothing but file-sharing swarms",
    app_mix={
        APP_BITTORRENT: 0.40,
        APP_EDONKEY: 0.22,
        APP_GNUTELLA: 0.10,
        APP_UNKNOWN: 0.27,
        APP_DNS: 0.01,
    },
    rate_factor=1.1,
)

BALANCED = MixPreset(
    name="balanced",
    description="half traditional services, half P2P",
    app_mix={
        APP_HTTP: 0.28,
        APP_DNS: 0.10,
        APP_OTHER: 0.06,
        APP_FTP: 0.01,
        APP_BITTORRENT: 0.25,
        APP_EDONKEY: 0.12,
        APP_GNUTELLA: 0.05,
        APP_UNKNOWN: 0.13,
    },
    rate_factor=0.6,
)

ALL_PRESETS = (CAMPUS_2007, WEB_ENTERPRISE, P2P_SATURATED, BALANCED)


def preset_by_name(name: str) -> MixPreset:
    for preset in ALL_PRESETS:
        if preset.name == name:
            return preset
    raise KeyError(f"no preset named {name!r} "
                   f"(have: {', '.join(p.name for p in ALL_PRESETS)})")
