"""Synthetic client-network workload generation.

The paper evaluates on a 7.5-hour campus trace we cannot obtain; this
package synthesises a header-accurate substitute.  Per-application models
(:mod:`repro.workload.apps`) emit connection specifications whose packet
schedules reproduce the traffic characteristics the paper publishes —
protocol mix (Table 2), port usage (Figures 2-3), connection lifetimes
(Figure 4), out-in packet delays (Figure 5), the 89.8 % upload share, and
the 80/20 split of upload bytes between inbound- and outbound-initiated
connections.  Calibration targets live in :mod:`repro.workload.calibrate`.
"""

from repro.workload.topology import AddressSpace, ClientNetwork, PortAllocator
from repro.workload.apps import (
    APP_BITTORRENT,
    APP_DNS,
    APP_EDONKEY,
    APP_FTP,
    APP_GNUTELLA,
    APP_HTTP,
    APP_OTHER,
    APP_UNKNOWN,
    ConnectionSpec,
    Initiator,
    connection_packets,
)
from repro.workload.generator import TraceConfig, TraceGenerator, generate_trace
from repro.workload.parallel import GenerationStats, parallel_tables
from repro.workload.progress import ProgressReporter
from repro.workload.calibrate import PAPER_TARGETS, CalibrationTargets
from repro.workload.mixes import (
    ALL_PRESETS,
    BALANCED,
    CAMPUS_2007,
    P2P_SATURATED,
    WEB_ENTERPRISE,
    MixPreset,
    preset_by_name,
)

__all__ = [
    "AddressSpace",
    "ClientNetwork",
    "PortAllocator",
    "ConnectionSpec",
    "Initiator",
    "connection_packets",
    "APP_HTTP",
    "APP_FTP",
    "APP_DNS",
    "APP_BITTORRENT",
    "APP_EDONKEY",
    "APP_GNUTELLA",
    "APP_UNKNOWN",
    "APP_OTHER",
    "TraceConfig",
    "TraceGenerator",
    "generate_trace",
    "GenerationStats",
    "parallel_tables",
    "ProgressReporter",
    "PAPER_TARGETS",
    "CalibrationTargets",
    "MixPreset",
    "ALL_PRESETS",
    "CAMPUS_2007",
    "WEB_ENTERPRISE",
    "P2P_SATURATED",
    "BALANCED",
    "preset_by_name",
]
