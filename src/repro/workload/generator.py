"""The trace synthesiser: connection arrivals → merged packet stream.

Connections arrive as a Poisson process over the trace duration; each
arrival picks a client host and an application model (Table 2 mix by
default).  A small fraction of client-initiated P2P transfers schedule a
*reconnect* to the same remote endpoint reusing the same source port after
the host's OS port-reuse timeout — the mechanism behind the Figure 5
port-reuse peaks at multiples of 60 seconds.

Packet streams are produced by a lazy k-way merge so memory stays
proportional to the number of *concurrent* connections, not trace length.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.headers import encode_packet
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Packet
from repro.net.pcap import PcapWriter
from repro.workload.apps import (
    APP_FACTORIES,
    ConnectionSpec,
    Initiator,
    connection_packets,
)
from repro.workload.calibrate import DEFAULT_APP_MIX
from repro.workload.topology import AddressSpace, ClientNetwork, HostModel


@dataclass
class TraceConfig:
    """Knobs of a synthetic trace.

    The defaults produce a small-but-representative client network; the
    benchmark harness scales ``duration`` and ``connection_rate`` per
    experiment.  ``connection_rate`` is arrivals per second; with the
    default application mix one arrival averages roughly 70 kB and 50
    packets, so aggregate offered load ≈ ``connection_rate × 0.56`` Mbps.
    """

    duration: float = 120.0
    connection_rate: float = 20.0
    hosts: int = 120
    seed: int = 7
    network: str = "10.1.0.0"
    prefix_len: int = 16
    app_mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_APP_MIX))
    #: Fraction of client-initiated P2P TCP transfers that later reconnect
    #: to the same endpoint with the same source port (port-reuse artifact).
    port_reuse_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.connection_rate <= 0:
            raise ValueError(f"connection_rate must be positive: {self.connection_rate}")
        if self.hosts <= 0:
            raise ValueError(f"hosts must be positive: {self.hosts}")
        if not self.app_mix:
            raise ValueError("app_mix must not be empty")
        unknown = set(self.app_mix) - set(APP_FACTORIES)
        if unknown:
            raise ValueError(f"unknown apps in mix: {sorted(unknown)}")
        if not 0.0 <= self.port_reuse_fraction <= 1.0:
            raise ValueError(f"port_reuse_fraction out of [0,1]: {self.port_reuse_fraction}")


class TraceGenerator:
    """Deterministic synthetic-trace factory for a :class:`TraceConfig`."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self.network = ClientNetwork(
            self.config.network, self.config.prefix_len, hosts=self.config.hosts
        )
        self.addresses = AddressSpace(self.network, seed=self.config.seed)
        self._rng = random.Random(self.config.seed)
        self._hosts: Dict[int, HostModel] = {}
        self._specs: Optional[List[ConnectionSpec]] = None

    def _host(self, addr: int) -> HostModel:
        host = self._hosts.get(addr)
        if host is None:
            host = HostModel(addr, self._rng)
            self._hosts[addr] = host
        return host

    # ------------------------------------------------------------------
    # Connection specs
    # ------------------------------------------------------------------

    def specs(self) -> List[ConnectionSpec]:
        """All connection specifications of the trace (ground truth)."""
        if self._specs is not None:
            return self._specs
        rng = self._rng
        config = self.config
        apps = list(config.app_mix.keys())
        weights = list(config.app_mix.values())
        specs: List[ConnectionSpec] = []

        now = 0.0
        while True:
            now += rng.expovariate(config.connection_rate)
            if now >= config.duration:
                break
            app = rng.choices(apps, weights=weights, k=1)[0]
            host = self._host(self.network.random_client(rng))
            new_specs = APP_FACTORIES[app](rng, host, self.addresses, now)
            specs.extend(new_specs)
            for spec in new_specs:
                reconnect = self._maybe_port_reuse_reconnect(rng, host, spec)
                if reconnect is not None:
                    specs.append(reconnect)

        specs.sort(key=lambda spec: spec.start)
        self._specs = specs
        return specs

    def _maybe_port_reuse_reconnect(
        self, rng: random.Random, host: HostModel, spec: ConnectionSpec
    ) -> Optional[ConnectionSpec]:
        """Re-establish a P2P session on the same five-tuple after the
        peer's retry timer (drawn from the 60 s-multiple OS timeouts).

        The reconnect is *remote-initiated* — a peer calling back on an
        endpoint it remembers (hole-punched mapping / retry) — so its
        first packet is inbound and hits the stale σ entry in the out-in
        delay measurement, producing the Figure 5-a artifact peaks the
        paper attributes to port reuse within its T_e = 600 s window.
        """
        if (
            spec.protocol != IPPROTO_TCP
            or spec.initiator is not Initiator.CLIENT
            or not spec.is_p2p
            or rng.random() >= self.config.port_reuse_fraction
        ):
            return None
        gap = host.ports.reuse_timeout * rng.choice((1, 2)) + rng.uniform(0.0, 1.5)
        restart = spec.end + gap
        if restart >= self.config.duration:
            return None
        return ConnectionSpec(
            app=spec.app,
            start=restart,
            protocol=spec.protocol,
            client_addr=spec.client_addr,
            client_port=spec.client_port,  # the remembered endpoint
            remote_addr=spec.remote_addr,
            remote_port=spec.remote_port,
            initiator=Initiator.REMOTE,
            request_payload=spec.response_payload,
            response_payload=spec.request_payload,
            bytes_client_to_remote=spec.bytes_client_to_remote // 2,
            bytes_remote_to_client=spec.bytes_remote_to_client // 2,
            duration=max(1.0, spec.duration / 2),
            rtt=spec.rtt,
        )

    # ------------------------------------------------------------------
    # Packet stream
    # ------------------------------------------------------------------

    def packets(self) -> Iterator[Packet]:
        """Lazily merged, timestamp-ordered packet stream of the trace."""
        specs = self.specs()
        heap: List[Tuple[float, int, int, List[Packet]]] = []
        admit_index = 0
        counter = 0

        while heap or admit_index < len(specs):
            while admit_index < len(specs) and (
                not heap or specs[admit_index].start <= heap[0][0]
            ):
                spec = specs[admit_index]
                rng = random.Random((self.config.seed << 20) ^ admit_index)
                schedule = connection_packets(spec, rng)
                if schedule:
                    heapq.heappush(
                        heap, (schedule[0].timestamp, counter, 0, schedule)
                    )
                    counter += 1
                admit_index += 1
            timestamp, ident, position, schedule = heapq.heappop(heap)
            yield schedule[position]
            if position + 1 < len(schedule):
                heapq.heappush(
                    heap,
                    (schedule[position + 1].timestamp, ident, position + 1, schedule),
                )

    def packet_list(self) -> List[Packet]:
        """The whole trace in memory (convenient for repeated replays)."""
        return list(self.packets())

    def write_pcap(self, path: str, snaplen: int = 65535) -> int:
        """Serialize the trace to a pcap file in wire format.

        Bulk data packets carry zero padding up to their declared size so
        the file is structurally faithful; identification payloads are real.
        Returns the number of packets written.
        """
        written = 0
        with open(path, "wb") as fileobj:
            writer = PcapWriter(fileobj, snaplen=snaplen)
            for packet in self.packets():
                transport = 20 if packet.pair.protocol == IPPROTO_TCP else 8
                payload_room = max(0, packet.size - 20 - transport)
                data = encode_packet(
                    packet.pair,
                    payload=packet.payload[:payload_room],
                    flags=packet.flags,
                    pad_to=payload_room,
                )
                writer.write(packet.timestamp, data)
                written += 1
        return written


def generate_trace(config: Optional[TraceConfig] = None) -> List[Packet]:
    """One-call convenience: a full in-memory synthetic trace."""
    return TraceGenerator(config).packet_list()
