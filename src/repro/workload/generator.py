"""The trace synthesiser: connection arrivals → merged packet stream.

Connections arrive as a Poisson process over the trace duration; each
arrival picks a client host and an application model (Table 2 mix by
default).  A small fraction of client-initiated P2P transfers schedule a
*reconnect* to the same remote endpoint reusing the same source port after
the host's OS port-reuse timeout — the mechanism behind the Figure 5
port-reuse peaks at multiples of 60 seconds.

Packet streams are produced by a lazy k-way merge so memory stays
proportional to the number of *concurrent* connections, not trace length.

The synthesiser is split in two phases with a determinism contract
between them:

* **spec synthesis** (:meth:`TraceGenerator.specs`) walks one shared RNG
  through the Poisson arrival loop — cheap, inherently serial, and the
  single source of truth for connection count and ordering;
* **materialization** expands each spec to packet rows with a *private*
  RNG seeded by ``derive_seed(config.seed, spec_index)`` — no spec's
  rows depend on any other spec's draws, which is what lets
  ``workers=N`` farm materialization out to a process pool
  (:mod:`repro.workload.parallel`) and still produce byte-identical
  column streams.
"""

from __future__ import annotations

import heapq
import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.hashing import derive_seed
from repro.net import table as _table_mod
from repro.net.headers import encode_packet
from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Packet
from repro.net.pcap import PcapWriter
from repro.net.table import PacketTable
from repro.workload.apps import (
    APP_FACTORIES,
    ConnectionSpec,
    Initiator,
    connection_packets,
    connection_rows,
)
from repro.workload.calibrate import DEFAULT_APP_MIX
from repro.workload.topology import AddressSpace, ClientNetwork, HostModel

#: :meth:`TraceGenerator.packet_list` warns once past this many ``Packet``
#: objects — at that size the columnar stream (:meth:`TraceGenerator.table`
#: / :meth:`TraceGenerator.iter_tables`) is the right representation.
MATERIALIZE_WARNING_THRESHOLD = 5_000_000


@dataclass
class TraceConfig:
    """Knobs of a synthetic trace.

    The defaults produce a small-but-representative client network; the
    benchmark harness scales ``duration`` and ``connection_rate`` per
    experiment.  ``connection_rate`` is arrivals per second; with the
    default application mix one arrival averages roughly 70 kB and 50
    packets, so aggregate offered load ≈ ``connection_rate × 0.56`` Mbps.
    """

    duration: float = 120.0
    connection_rate: float = 20.0
    hosts: int = 120
    seed: int = 7
    network: str = "10.1.0.0"
    prefix_len: int = 16
    app_mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_APP_MIX))
    #: Fraction of client-initiated P2P TCP transfers that later reconnect
    #: to the same endpoint with the same source port (port-reuse artifact).
    port_reuse_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.connection_rate <= 0:
            raise ValueError(f"connection_rate must be positive: {self.connection_rate}")
        if self.hosts <= 0:
            raise ValueError(f"hosts must be positive: {self.hosts}")
        if not self.app_mix:
            raise ValueError("app_mix must not be empty")
        unknown = set(self.app_mix) - set(APP_FACTORIES)
        if unknown:
            raise ValueError(f"unknown apps in mix: {sorted(unknown)}")
        if not 0.0 <= self.port_reuse_fraction <= 1.0:
            raise ValueError(f"port_reuse_fraction out of [0,1]: {self.port_reuse_fraction}")


class _PendingMerger:
    """The timestamp merge shared by the serial and parallel streams.

    Merge columns are ordered (timestamps, sizes, flags, payload_ids,
    outbound, pair_ids) — the order :class:`_ChunkEmitter` writes them
    into a :class:`PacketTable`.

    Pending rows live as six parallel columns, not row tuples — merging
    is an *index* sort by timestamp plus a gather per column, which
    numpy's stable argsort turns into a few C passes.  The heap merge's
    total order is (timestamp, admission counter, schedule position) —
    and rows enter the pending columns in exactly (counter, position)
    order, an order every *stable* timestamp sort preserves on ties, so
    sorting by timestamp alone reproduces the heap stream without
    carrying tiebreak fields.  (After a flush the surviving tail is kept
    timestamp-sorted with ties in counter order, and newly appended rows
    carry strictly larger counters, so the invariant holds across
    flushes.)

    The numpy path keeps the surviving (already-sorted) tail as numpy
    arrays between flushes — only the rows appended since the last flush
    cross the Python-object boundary, once.  The mode is latched at
    construction so tail state stays one type for the stream's lifetime.
    The numpy and stdlib paths compute the identical permutation (both
    are stable sorts keyed on timestamp with insertion-order ties).
    """

    __slots__ = ("use_numpy", "_np", "_dtypes", "tails")

    def __init__(self) -> None:
        self.use_numpy = _table_mod._np_enabled()
        self._np = _table_mod._np
        if self.use_numpy:
            np = self._np
            self._dtypes = (np.float64, np.int64, np.uint32, np.int64,
                            np.int8, np.int64)
            self.tails = [np.empty(0, dtype=dtype) for dtype in self._dtypes]
        else:
            self._dtypes = None
            self.tails = [[], [], [], [], [], []]

    def merge(self, fresh: Sequence, frontier: Optional[float]) -> Tuple[tuple, int]:
        """Stable-sort the pending rows (sorted tail + fresh columns) by
        timestamp and split them at ``frontier``: rows timestamped at or
        before it are final (every future row is no earlier and carries a
        larger admission counter).  Returns ``(columns, count)`` — six
        merged columns of which the first ``count`` rows are ready to
        emit — and retains the rest, still sorted, as the new tail.

        ``fresh`` is six same-length column sequences in merge order; on
        the numpy path they may be lists, ``array.array`` columns, or
        ndarrays, on the stdlib path they must be plain lists.
        """
        if self.use_numpy:
            np = self._np
            combined = [
                np.concatenate([tail, np.asarray(values, dtype=dtype)])
                if len(values) else tail
                for tail, values, dtype in zip(self.tails, fresh, self._dtypes)
            ]
            ts = combined[0]
            order = np.argsort(ts, kind="stable")
            merged_ts = ts[order]
            cut = (
                len(order) if frontier is None
                else int(np.searchsorted(merged_ts, frontier, side="right"))
            )
            head, rest = order[:cut], order[cut:]
            columns = [merged_ts[:cut]]
            new_tails = [merged_ts[cut:]]
            for column in combined[1:]:
                columns.append(column[head])
                new_tails.append(column[rest])
            self.tails = new_tails
        else:
            combined = [tail + values for tail, values in zip(self.tails, fresh)]
            ts = combined[0]
            order = sorted(range(len(ts)), key=ts.__getitem__)
            if frontier is None:
                cut = len(order)
            else:
                # Manual bisect over the permutation — 3.9's bisect
                # has no key=.
                lo, hi = 0, len(order)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if ts[order[mid]] <= frontier:
                        lo = mid + 1
                    else:
                        hi = mid
                cut = lo
            head, rest = order[:cut], order[cut:]
            columns = []
            new_tails = []
            for column in combined:
                columns.append([column[i] for i in head])
                new_tails.append([column[i] for i in rest])
            self.tails = new_tails
        return tuple(columns), cut


class _ChunkEmitter:
    """Fills bounded :class:`PacketTable` chunks from merged columns.

    All chunks spawn from one pool table so ``pair_ids``/``payload_ids``
    stay valid across the whole stream.  Emitted chunk boundaries are a
    pure function of the merged row stream and ``limit`` — consecutive
    ``limit``-row windows — so they are independent of *when* the caller
    flushed, which is what lets the parallel driver flush on batch
    boundaries and still emit the exact chunks the serial path emits.
    """

    __slots__ = ("pool", "limit", "current")

    def __init__(self, pool: PacketTable, limit: Optional[int]) -> None:
        self.pool = pool
        self.limit = limit
        self.current = pool.spawn()

    def emit(self, columns: tuple, count: int) -> List[PacketTable]:
        """Append ``count`` merged rows to the current chunk; return the
        chunks that filled up.  numpy columns land via raw-buffer
        ``frombytes`` (same element layout as the array typecodes);
        list columns via plain ``extend``.
        """
        limit = self.limit
        current = self.current
        done: List[PacketTable] = []
        start = 0
        raw = not isinstance(columns[0], list)
        while start < count:
            take = count - start
            if limit is not None:
                take = min(take, limit - len(current))
            stop = start + take
            targets = (
                current.timestamps, current.sizes, current.flags,
                current.payload_ids, current.outbound, current.pair_ids,
            )
            if raw:
                for target, column in zip(targets, columns):
                    target.frombytes(column[start:stop].tobytes())
            else:
                for target, column in zip(targets, columns):
                    target.extend(column[start:stop])
            start = stop
            if limit is not None and len(current) >= limit:
                done.append(current)
                current = self.pool.spawn()
        self.current = current
        return done


class TraceGenerator:
    """Deterministic synthetic-trace factory for a :class:`TraceConfig`."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self.network = ClientNetwork(
            self.config.network, self.config.prefix_len, hosts=self.config.hosts
        )
        self.addresses = AddressSpace(self.network, seed=self.config.seed)
        self._rng = random.Random(self.config.seed)
        self._hosts: Dict[int, HostModel] = {}
        self._specs: Optional[List[ConnectionSpec]] = None

    def _host(self, addr: int) -> HostModel:
        host = self._hosts.get(addr)
        if host is None:
            host = HostModel(addr, self._rng)
            self._hosts[addr] = host
        return host

    # ------------------------------------------------------------------
    # Connection specs
    # ------------------------------------------------------------------

    def specs(self) -> List[ConnectionSpec]:
        """All connection specifications of the trace (ground truth)."""
        if self._specs is not None:
            return self._specs
        rng = self._rng
        config = self.config
        apps = list(config.app_mix.keys())
        weights = list(config.app_mix.values())
        specs: List[ConnectionSpec] = []

        now = 0.0
        while True:
            now += rng.expovariate(config.connection_rate)
            if now >= config.duration:
                break
            app = rng.choices(apps, weights=weights, k=1)[0]
            host = self._host(self.network.random_client(rng))
            new_specs = APP_FACTORIES[app](rng, host, self.addresses, now)
            specs.extend(new_specs)
            for spec in new_specs:
                reconnect = self._maybe_port_reuse_reconnect(rng, host, spec)
                if reconnect is not None:
                    specs.append(reconnect)

        specs.sort(key=lambda spec: spec.start)
        self._specs = specs
        return specs

    def _maybe_port_reuse_reconnect(
        self, rng: random.Random, host: HostModel, spec: ConnectionSpec
    ) -> Optional[ConnectionSpec]:
        """Re-establish a P2P session on the same five-tuple after the
        peer's retry timer (drawn from the 60 s-multiple OS timeouts).

        The reconnect is *remote-initiated* — a peer calling back on an
        endpoint it remembers (hole-punched mapping / retry) — so its
        first packet is inbound and hits the stale σ entry in the out-in
        delay measurement, producing the Figure 5-a artifact peaks the
        paper attributes to port reuse within its T_e = 600 s window.
        """
        if (
            spec.protocol != IPPROTO_TCP
            or spec.initiator is not Initiator.CLIENT
            or not spec.is_p2p
            or rng.random() >= self.config.port_reuse_fraction
        ):
            return None
        gap = host.ports.reuse_timeout * rng.choice((1, 2)) + rng.uniform(0.0, 1.5)
        restart = spec.end + gap
        if restart >= self.config.duration:
            return None
        return ConnectionSpec(
            app=spec.app,
            start=restart,
            protocol=spec.protocol,
            client_addr=spec.client_addr,
            client_port=spec.client_port,  # the remembered endpoint
            remote_addr=spec.remote_addr,
            remote_port=spec.remote_port,
            initiator=Initiator.REMOTE,
            request_payload=spec.response_payload,
            response_payload=spec.request_payload,
            bytes_client_to_remote=spec.bytes_client_to_remote // 2,
            bytes_remote_to_client=spec.bytes_remote_to_client // 2,
            duration=max(1.0, spec.duration / 2),
            rtt=spec.rtt,
        )

    # ------------------------------------------------------------------
    # Packet stream
    # ------------------------------------------------------------------

    def packets(self) -> Iterator[Packet]:
        """Lazily merged, timestamp-ordered packet stream of the trace."""
        specs = self.specs()
        heap: List[Tuple[float, int, int, List[Packet]]] = []
        admit_index = 0
        counter = 0

        while heap or admit_index < len(specs):
            while admit_index < len(specs) and (
                not heap or specs[admit_index].start <= heap[0][0]
            ):
                spec = specs[admit_index]
                rng = random.Random(derive_seed(self.config.seed, admit_index))
                schedule = connection_packets(spec, rng)
                if schedule:
                    heapq.heappush(
                        heap, (schedule[0].timestamp, counter, 0, schedule)
                    )
                    counter += 1
                admit_index += 1
            timestamp, ident, position, schedule = heapq.heappop(heap)
            yield schedule[position]
            if position + 1 < len(schedule):
                heapq.heappush(
                    heap,
                    (schedule[position + 1].timestamp, ident, position + 1, schedule),
                )

    def packet_list(self) -> List[Packet]:
        """The whole trace in memory (convenient for repeated replays).

        Warns once past :data:`MATERIALIZE_WARNING_THRESHOLD` packets —
        ``Packet`` objects cost two orders of magnitude more memory than
        columnar rows, so 10M+-packet traces belong in :meth:`table` /
        :meth:`iter_tables`.
        """
        packets: List[Packet] = []
        threshold: Optional[int] = MATERIALIZE_WARNING_THRESHOLD
        for packet in self.packets():
            packets.append(packet)
            if threshold is not None and len(packets) >= threshold:
                threshold = None
                warnings.warn(
                    f"packet_list() is materializing more than {len(packets):,} "
                    f"Packet objects; use TraceGenerator.table() or "
                    f"iter_tables() for traces this large",
                    stacklevel=2,
                )
        return packets

    # ------------------------------------------------------------------
    # Columnar packet stream
    # ------------------------------------------------------------------

    def iter_tables(
        self,
        chunk_size: Optional[int] = 65536,
        workers: int = 1,
        stats=None,
    ) -> Iterator[PacketTable]:
        """The trace as a stream of :class:`PacketTable` chunks.

        Emits the *same packets in the same order* as :meth:`packets`
        (``tests/workload/test_table_generation.py`` holds the two
        representations field-identical), but never builds a
        ``List[Packet]``: each connection expands straight to schedule
        rows, rows are merged by sorting — valid because every packet of
        a connection is timestamped at or after its spec's start, so a
        row is final once the next unexpanded spec starts later than it —
        and chunks of at most ``chunk_size`` rows are emitted as they
        fill.  Memory stays bounded by the rows of *concurrent*
        connections plus one chunk, exactly the heap merge's guarantee.

        All chunks share one growing interned-flow pool
        (:meth:`PacketTable.spawn`), so ``pair_ids`` are stable across the
        whole stream and consumers can carry per-flow state between
        chunks.  ``chunk_size=None`` emits a single table at the end —
        that is :meth:`table`.

        ``workers > 1`` materializes connections on a process pool
        (:func:`repro.workload.parallel.parallel_tables`) — the emitted
        chunk stream is **byte-identical** (columns, pools, chunk
        boundaries) for every worker count; ``stats`` (a
        :class:`repro.workload.parallel.GenerationStats`) then receives
        per-worker utilization accounting.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if workers > 1:
            from repro.workload.parallel import parallel_tables

            yield from parallel_tables(
                self, chunk_size=chunk_size, workers=workers, stats=stats
            )
            return

        specs = self.specs()
        seed = self.config.seed
        pool = PacketTable()
        intern_pair = pool._pair_id
        intern_payload = pool._payload_id
        flush_floor = max(chunk_size or 0, 65536)

        merger = _PendingMerger()
        emitter = _ChunkEmitter(pool, chunk_size)
        ts_l: List[float] = []
        sz_l: List[int] = []
        fl_l: List[int] = []
        py_l: List[int] = []
        ob_l: List[int] = []
        pi_l: List[int] = []

        # Flush on *growth* since the last sort, not absolute pending size:
        # long-lived connections keep O(concurrent rows) pending at all
        # times, and re-sorting that floor per spec would be quadratic.
        grown = 0
        for index, spec in enumerate(specs):
            if grown >= flush_floor:
                grown = 0
                fresh = (ts_l, sz_l, fl_l, py_l, ob_l, pi_l)
                ts_l, sz_l, fl_l, py_l, ob_l, pi_l = [], [], [], [], [], []
                columns, cut = merger.merge(fresh, spec.start)
                if cut:
                    for chunk in emitter.emit(columns, cut):
                        yield chunk
            rows = connection_rows(spec, random.Random(derive_seed(seed, index)))
            if not rows:
                continue
            base = spec.pair_from_client
            pid_out = intern_pair(base)
            pid_in = intern_pair(base.inverse)
            ts_l += [row[0] for row in rows]
            ob_l += [1 if row[1] else 0 for row in rows]
            sz_l += [row[2] for row in rows]
            fl_l += [row[3] for row in rows]
            py_l += [intern_payload(row[4]) if row[4] else 0 for row in rows]
            pi_l += [pid_out if row[1] else pid_in for row in rows]
            grown += len(rows)

        columns, cut = merger.merge((ts_l, sz_l, fl_l, py_l, ob_l, pi_l), None)
        for chunk in emitter.emit(columns, cut):
            yield chunk
        if len(emitter.current):
            yield emitter.current

    def table(self, workers: int = 1, stats=None) -> PacketTable:
        """The whole trace as one :class:`PacketTable`."""
        result: Optional[PacketTable] = None
        for chunk in self.iter_tables(chunk_size=None, workers=workers,
                                      stats=stats):
            result = chunk
        return result if result is not None else PacketTable()

    def write_pcap(
        self,
        path: str,
        snaplen: int = 65535,
        workers: int = 1,
        progress=None,
    ) -> int:
        """Serialize the trace to a pcap file in wire format.

        Bulk data packets carry zero padding up to their declared size so
        the file is structurally faithful; identification payloads are real.
        Returns the number of packets written.  ``workers`` parallelizes
        trace materialization (byte-identical output); ``progress``, if
        given, is called as ``progress(packets_written, trace_time)``
        after every chunk (see
        :class:`repro.workload.progress.ProgressReporter`).
        """
        written = 0
        with open(path, "wb") as fileobj:
            writer = PcapWriter(fileobj, snaplen=snaplen)
            # Stream columnar chunks and read rows through the reused
            # view cursor: bounded memory, no per-packet objects.
            last_timestamp = 0.0
            for chunk in self.iter_tables(workers=workers):
                for view in chunk.iter_views():
                    pair = view.pair
                    transport = 20 if pair.protocol == IPPROTO_TCP else 8
                    payload_room = max(0, view.size - 20 - transport)
                    data = encode_packet(
                        pair,
                        payload=view.payload[:payload_room],
                        flags=view.flags,
                        pad_to=payload_room,
                    )
                    writer.write(view.timestamp, data)
                    written += 1
                    last_timestamp = view.timestamp
                if progress is not None:
                    progress(written, last_timestamp)
        return written


def generate_trace(
    config: Optional[TraceConfig] = None, workers: int = 1
) -> List[Packet]:
    """One-call convenience: a full in-memory synthetic trace.

    ``workers > 1`` materializes the trace on a process pool and converts
    the columnar stream back to ``Packet`` objects (field-identical to
    the serial path).  Either way the full object list is built — see
    :meth:`TraceGenerator.packet_list` for the size warning; tables are
    the representation for 10M+-packet traces.
    """
    generator = TraceGenerator(config)
    if workers <= 1:
        return generator.packet_list()
    table = generator.table(workers=workers)
    if len(table) >= MATERIALIZE_WARNING_THRESHOLD:
        warnings.warn(
            f"generate_trace() is materializing {len(table):,} Packet "
            f"objects; use TraceGenerator.table() or iter_tables() for "
            f"traces this large",
            stacklevel=2,
        )
    return table.to_packets()
