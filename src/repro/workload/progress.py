"""Throttled progress reporting for long trace generations.

A 100M-packet synthesis runs for minutes; :class:`ProgressReporter`
keeps the operator informed without drowning short runs in noise: lines
go to stderr (stdout stays machine-readable), at most one per
``interval`` wall-clock seconds, and a run that finishes inside the
first interval prints nothing at all — so tests and quick CLI calls are
unaffected.

The ETA comes from *trace time*, not packet counts: the generator knows
the configured trace duration up front but not the final packet count,
and packet rate is roughly stationary in trace time, so
``elapsed × (duration − t) / t`` is an honest estimate from the first
line onward.
"""

from __future__ import annotations

import sys
import time
from typing import Optional


def _format_seconds(seconds: float) -> str:
    if seconds < 0:
        seconds = 0.0
    if seconds < 100:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds + 0.5), 60)
    if minutes < 100:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Emits ``label: N packets · R pkt/s · trace t/T s · ETA x`` lines.

    ``update(packets, trace_time)`` is cheap enough to call per chunk:
    it returns immediately unless ``interval`` seconds have passed since
    the last line.  ``finish()`` prints one summary line — but only if
    an interval line was ever printed, keeping short runs silent.

    ``clock`` and ``stream`` are injectable for tests.
    """

    def __init__(
        self,
        label: str,
        duration: Optional[float] = None,
        interval: float = 2.0,
        stream=None,
        clock=time.monotonic,
    ) -> None:
        self.label = label
        self.duration = duration
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self._deadline = self._start + interval
        self._emitted = False
        self.packets = 0

    def update(self, packets: int, trace_time: Optional[float] = None) -> None:
        """Record progress; print a line if the throttle interval passed."""
        self.packets = packets
        now = self._clock()
        if now < self._deadline:
            return
        self._deadline = now + self.interval
        self._emitted = True
        elapsed = now - self._start
        rate = packets / elapsed if elapsed > 0 else 0.0
        parts = [f"{self.label}: {packets:,} packets",
                 f"{rate:,.0f} pkt/s"]
        if trace_time is not None and self.duration:
            parts.append(f"trace {trace_time:.0f}/{self.duration:.0f}s")
            if 0 < trace_time < self.duration:
                remaining = elapsed * (self.duration - trace_time) / trace_time
                parts.append(f"ETA {_format_seconds(remaining)}")
        print("  " + " · ".join(parts), file=self.stream, flush=True)

    def finish(self) -> None:
        """Print the closing summary — only for runs long enough to have
        reported at least once."""
        if not self._emitted:
            return
        elapsed = self._clock() - self._start
        rate = self.packets / elapsed if elapsed > 0 else 0.0
        print(
            f"  {self.label}: done — {self.packets:,} packets in "
            f"{_format_seconds(elapsed)} ({rate:,.0f} pkt/s)",
            file=self.stream,
            flush=True,
        )
