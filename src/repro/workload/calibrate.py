"""Calibration targets from the paper, and measurement helpers.

Section 3.3 publishes the aggregate characteristics of the 7.5-hour campus
trace; the synthetic generator aims at these shapes (not the absolute
scale — a laptop replay cannot push 146.7 Mbps × 7.5 h through pytest).
``measure_trace`` computes the same aggregates for any packet iterable so
tests can assert the generator stays inside tolerance bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.net.inet import IPPROTO_TCP
from repro.net.packet import Direction, Packet
from repro.workload.apps import (
    APP_BITTORRENT,
    APP_DNS,
    APP_EDONKEY,
    APP_FTP,
    APP_GNUTELLA,
    APP_HTTP,
    APP_OTHER,
    APP_UNKNOWN,
    ConnectionSpec,
    Initiator,
)


@dataclass(frozen=True)
class CalibrationTargets:
    """The paper's published trace aggregates (section 3.3 + Table 2)."""

    #: Fraction of all connections that are TCP (paper: 29.8 %).
    tcp_connection_fraction: float = 0.298
    #: Fraction of bytes carried over TCP (paper: 99.5 %).
    tcp_byte_fraction: float = 0.995
    #: Fraction of bytes that are upload/outbound (paper: 89.8 %).
    upload_byte_fraction: float = 0.898
    #: Of outbound bytes, fraction sent inside inbound-initiated
    #: connections (paper: 80 %).
    upload_on_inbound_connections: float = 0.80
    #: Mean connection lifetime in seconds (paper: 45.84).
    mean_lifetime: float = 45.84
    #: Lifetime quantiles: 90 % < 45 s, 95 % < 240 s, 99 % < 810 s.
    lifetime_q90: float = 45.0
    lifetime_q95: float = 240.0
    lifetime_q99: float = 810.0
    #: Out-in delay: 99 % under 2.8 s.
    outin_q99: float = 2.8
    #: Table 2 — share of connections per protocol.
    connection_share: Dict[str, float] = field(
        default_factory=lambda: {
            APP_HTTP: 0.0217,
            APP_BITTORRENT: 0.4790,
            APP_GNUTELLA: 0.0756,
            APP_EDONKEY: 0.2200,
            APP_UNKNOWN: 0.1755,
            "others": 0.0282,
        }
    )
    #: Table 2 — share of bytes ("utilizations") per protocol.
    byte_share: Dict[str, float] = field(
        default_factory=lambda: {
            APP_HTTP: 0.05,
            APP_BITTORRENT: 0.18,
            APP_GNUTELLA: 0.16,
            APP_EDONKEY: 0.21,
            APP_UNKNOWN: 0.35,
            "others": 0.05,
        }
    )


PAPER_TARGETS = CalibrationTargets()

#: Default application mix (probability an arrival belongs to each app).
#: FTP arrivals spawn two connections (control + data), so its weight is
#: kept small inside the paper's 2.82 % "others" budget.
DEFAULT_APP_MIX: Dict[str, float] = {
    APP_BITTORRENT: 0.4790,
    APP_EDONKEY: 0.2200,
    APP_UNKNOWN: 0.1755,
    APP_GNUTELLA: 0.0756,
    APP_HTTP: 0.0217,
    APP_DNS: 0.0140,
    APP_OTHER: 0.0112,
    APP_FTP: 0.0030,
}

#: Apps folded into Table 2's "Others" row.
OTHERS_GROUP = frozenset({APP_DNS, APP_OTHER, APP_FTP, "ftp-data", "smtp", "ssh", "imap"})


def table2_group(app: str) -> str:
    """Map a concrete app label to its Table 2 row."""
    if app in (APP_HTTP, APP_BITTORRENT, APP_GNUTELLA, APP_EDONKEY, APP_UNKNOWN):
        return app
    return "others"


@dataclass
class TraceMeasurement:
    """Aggregates of a (synthetic or real) trace, aligned with section 3.3."""

    connections: int = 0
    tcp_connections: int = 0
    udp_connections: int = 0
    total_bytes: int = 0
    tcp_bytes: int = 0
    upload_bytes: int = 0
    download_bytes: int = 0
    upload_bytes_on_inbound_conns: int = 0
    duration: float = 0.0
    connection_share: Dict[str, float] = field(default_factory=dict)
    byte_share: Dict[str, float] = field(default_factory=dict)
    mean_lifetime: float = 0.0
    lifetime_quantiles: Dict[float, float] = field(default_factory=dict)

    @property
    def tcp_connection_fraction(self) -> float:
        return self.tcp_connections / self.connections if self.connections else 0.0

    @property
    def tcp_byte_fraction(self) -> float:
        return self.tcp_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def upload_byte_fraction(self) -> float:
        return self.upload_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def upload_on_inbound_fraction(self) -> float:
        if self.upload_bytes == 0:
            return 0.0
        return self.upload_bytes_on_inbound_conns / self.upload_bytes

    @property
    def mean_throughput_mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.total_bytes * 8.0 / self.duration / 1e6


def measure_specs(specs: List[ConnectionSpec], packets: Iterable[Packet]) -> TraceMeasurement:
    """Measure a synthetic trace against the calibration targets.

    Uses ground-truth specs for per-connection attribution (app label,
    initiator) and the packet stream for byte/direction accounting.
    """
    result = TraceMeasurement()
    result.connections = len(specs)
    per_group_conns: Dict[str, int] = {}
    per_group_bytes: Dict[str, float] = {}
    lifetimes: List[float] = []
    spec_by_pair: Dict[tuple, ConnectionSpec] = {}

    for spec in specs:
        if spec.protocol == IPPROTO_TCP:
            result.tcp_connections += 1
        else:
            result.udp_connections += 1
        group = table2_group(spec.app)
        per_group_conns[group] = per_group_conns.get(group, 0) + 1
        if spec.protocol == IPPROTO_TCP:
            # Figure 4 measures TCP lifetimes (SYN to FIN/RST) only.
            lifetimes.append(spec.duration)
        spec_by_pair[spec.pair_from_client.canonical] = spec

    first_ts = None
    last_ts = 0.0
    for packet in packets:
        if first_ts is None:
            first_ts = packet.timestamp
        last_ts = packet.timestamp
        result.total_bytes += packet.size
        if packet.pair.protocol == IPPROTO_TCP:
            result.tcp_bytes += packet.size
        spec = spec_by_pair.get(packet.pair.canonical)
        if packet.direction is Direction.OUTBOUND:
            result.upload_bytes += packet.size
            if spec is not None and spec.initiator is Initiator.REMOTE:
                result.upload_bytes_on_inbound_conns += packet.size
        else:
            result.download_bytes += packet.size
        if spec is not None:
            group = table2_group(spec.app)
            per_group_bytes[group] = per_group_bytes.get(group, 0) + packet.size

    result.duration = (last_ts - first_ts) if first_ts is not None else 0.0
    if result.connections:
        result.connection_share = {
            group: count / result.connections for group, count in per_group_conns.items()
        }
    if result.total_bytes:
        result.byte_share = {
            group: size / result.total_bytes for group, size in per_group_bytes.items()
        }
    if lifetimes:
        ordered = sorted(lifetimes)
        result.mean_lifetime = sum(ordered) / len(ordered)
        result.lifetime_quantiles = {
            q: ordered[min(len(ordered) - 1, int(q * len(ordered)))] for q in (0.5, 0.9, 0.95, 0.99)
        }
    return result


def share_error(measured: Dict[str, float], target: Dict[str, float]) -> float:
    """Largest absolute deviation between measured and target shares."""
    keys = set(measured) | set(target)
    return max(abs(measured.get(key, 0.0) - target.get(key, 0.0)) for key in keys)
