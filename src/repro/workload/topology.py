"""Network topology for the synthetic client network.

Models the Figure 1 setup: a client subnet (the paper's campus /24-ish
network) behind an edge link, with the rest of the Internet on the other
side.  Includes an ephemeral-port allocator with an OS-style port-reuse
timer, which is what produces the Figure 5 port-reuse peaks ("most of them
are in multiples of 60 seconds").
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from repro.net.inet import in_network, parse_ipv4


class ClientNetwork:
    """The monitored client subnet."""

    def __init__(self, network: str = "10.1.0.0", prefix_len: int = 16, hosts: int = 200):
        if hosts <= 0:
            raise ValueError(f"hosts must be positive: {hosts}")
        self.network = parse_ipv4(network)
        self.prefix_len = prefix_len
        max_hosts = (1 << (32 - prefix_len)) - 2
        if hosts > max_hosts:
            raise ValueError(f"{hosts} hosts do not fit in a /{prefix_len}")
        #: Client addresses: network base + 1 ... + hosts.
        self.clients: List[int] = [self.network + offset for offset in range(1, hosts + 1)]

    def contains(self, addr: int) -> bool:
        return in_network(addr, self.network, self.prefix_len)

    def random_client(self, rng: random.Random) -> int:
        return rng.choice(self.clients)

    def __len__(self) -> int:
        return len(self.clients)


class AddressSpace:
    """The outside world: remote peers and servers.

    Remote addresses are drawn from public-looking space, never colliding
    with the client network.  ``sticky_peers`` returns a stable pool per
    category so e.g. repeated BitTorrent connections hit a realistic swarm
    of recurring peers rather than fresh addresses every time.
    """

    def __init__(self, client_network: ClientNetwork, seed: int = 0):
        self.client_network = client_network
        self._rng = random.Random(seed ^ 0x5EED)
        self._pools: Dict[str, List[int]] = {}

    def random_remote(self, rng: Optional[random.Random] = None) -> int:
        rng = rng or self._rng
        while True:
            addr = rng.randint(parse_ipv4("1.0.0.0"), parse_ipv4("223.255.255.254"))
            first_octet = addr >> 24
            if first_octet in (10, 127):  # private/loopback
                continue
            if not self.client_network.contains(addr):
                return addr

    def sticky_peers(self, category: str, count: int) -> List[int]:
        """A stable pool of ``count`` remote addresses for a category."""
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        pool = self._pools.get(category)
        if pool is None or len(pool) < count:
            pool = [self.random_remote() for _ in range(count)]
            self._pools[category] = pool
        return pool[:count]


class PortAllocator:
    """Per-host ephemeral port allocation with an OS port-reuse timer.

    Freed ports return to circulation only after ``reuse_timeout`` seconds
    (real stacks hold closing ports in TIME_WAIT); when the fresh range is
    exhausted, the oldest eligible freed port is reused.  Reusing a source
    port toward the same destination within the analyzer's large expiry
    window (T_e = 600 s in section 3.3) is exactly what creates the
    out-in-delay measurement artifacts at multiples of the reuse timeout.
    """

    #: Common OS reuse timeouts ("most of them are in multiples of 60 s").
    COMMON_TIMEOUTS = (60.0, 120.0, 240.0)

    def __init__(
        self,
        low: int = 1024,
        high: int = 5000,
        reuse_timeout: float = 120.0,
    ) -> None:
        if not 1 <= low <= high <= 65535:
            raise ValueError(f"bad port range [{low}, {high}]")
        if reuse_timeout < 0:
            raise ValueError(f"negative reuse_timeout: {reuse_timeout}")
        self.low = low
        self.high = high
        self.reuse_timeout = reuse_timeout
        self._next_fresh = low
        #: Min-heap of (eligible_time, port) for released ports.
        self._released: List[Tuple[float, int]] = []

    def allocate(self, now: float) -> int:
        """Claim an ephemeral port at trace time ``now``."""
        if self._next_fresh <= self.high:
            port = self._next_fresh
            self._next_fresh += 1
            return port
        if self._released and self._released[0][0] <= now:
            return heapq.heappop(self._released)[1]
        if self._released:
            # Nothing eligible yet: real stacks block or fail; we model the
            # common fallback of grabbing the oldest TIME_WAIT port early.
            return heapq.heappop(self._released)[1]
        raise RuntimeError("port space exhausted with nothing released")

    def release(self, port: int, now: float) -> None:
        """Return a port to the pool; reusable after the reuse timeout."""
        if not self.low <= port <= self.high:
            raise ValueError(f"port {port} outside [{self.low}, {self.high}]")
        heapq.heappush(self._released, (now + self.reuse_timeout, port))

    @property
    def fresh_remaining(self) -> int:
        return max(0, self.high - self._next_fresh + 1)


class HostModel:
    """Per-client-host state: its address and ephemeral allocator.

    Each host gets a reuse timeout drawn from the common OS values so the
    aggregate port-reuse artifact shows several 60 s-multiple peaks.
    """

    def __init__(self, addr: int, rng: random.Random, port_range: Tuple[int, int] = (1024, 5000)):
        self.addr = addr
        self.ports = PortAllocator(
            low=port_range[0],
            high=port_range[1],
            reuse_timeout=rng.choice(PortAllocator.COMMON_TIMEOUTS),
        )
        #: Listen ports this host's P2P applications advertise.
        self.listen_ports: Dict[str, int] = {}
