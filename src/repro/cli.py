"""Command-line interface.

Four subcommands mirror the library's workflow::

    repro trace   --out trace.pcap --duration 60 --rate 10   # synthesize
    repro analyze trace.pcap                                  # section 3 study
    repro filter  trace.pcap --filter bitmap --auto-red       # section 5 replay
    repro plan    --connections 15000 --target-p 0.05         # section 4.3 sizing

Every command prints plain text; nothing writes outside the paths given.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.bitmap_filter import BitmapFilterConfig, FieldMode


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments, dispatch to a command handler."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    return args.handler(args)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bitmap-filter reproduction toolkit (Huang & Lei, DSN 2007)",
    )
    sub = parser.add_subparsers(title="commands")

    trace = sub.add_parser("trace", help="synthesize a client-network pcap trace")
    trace.add_argument("--out", required=True, help="output pcap path")
    trace.add_argument("--duration", type=float, default=60.0, help="trace seconds")
    trace.add_argument("--rate", type=float, default=10.0, help="connection arrivals/sec")
    trace.add_argument("--hosts", type=int, default=120, help="client hosts")
    trace.add_argument("--seed", type=int, default=7, help="random seed")
    trace.add_argument("--snaplen", type=int, default=65535,
                       help="bytes captured per packet (64 = headers only)")
    trace.add_argument("--workers", type=int, default=1,
                       help="worker processes for trace materialization "
                            "(byte-identical output, scales with cores)")
    trace.set_defaults(handler=cmd_trace)

    analyze = sub.add_parser("analyze", help="run the section-3 traffic analysis")
    analyze.add_argument("pcap", help="input pcap path")
    analyze.add_argument("--network", default="10.1.0.0/16",
                         help="client network CIDR (decides packet direction)")
    analyze.set_defaults(handler=cmd_analyze)

    filt = sub.add_parser(
        "filter", help="replay a pcap (or synthetic trace) through a filter"
    )
    filt.add_argument("pcap", nargs="?", default=None,
                      help="input pcap (omit to synthesize a trace)")
    filt.add_argument("--network", default="10.1.0.0/16")
    filt.add_argument("--duration", type=float, default=60.0,
                      help="synthetic trace seconds (no pcap given)")
    filt.add_argument("--rate", type=float, default=10.0,
                      help="synthetic connection arrivals/sec")
    filt.add_argument("--hosts", type=int, default=120)
    filt.add_argument("--seed", type=int, default=7)
    filt.add_argument("--gen-workers", type=int, default=1,
                      help="worker processes for synthetic trace "
                           "materialization (--workers is replay workers)")
    filt.add_argument("--filter", dest="filter_name", default="bitmap",
                      choices=("bitmap", "spi", "naive", "counting", "none"))
    filt.add_argument("--size-bits", type=int, default=20, help="n of N=2^n")
    filt.add_argument("--vectors", type=int, default=4, help="k bit vectors")
    filt.add_argument("--hashes", type=int, default=3, help="m hash functions")
    filt.add_argument("--rotate", type=float, default=5.0, help="Δt seconds")
    filt.add_argument("--hole-punching", action="store_true",
                      help="ignore remote port in hashes (NAT traversal support)")
    filt.add_argument("--low-mbps", type=float, default=None, help="Equation 1 L")
    filt.add_argument("--high-mbps", type=float, default=None, help="Equation 1 H")
    filt.add_argument("--auto-red", action="store_true",
                      help="set L/H to 35%%/70%% of the measured uplink")
    filt.add_argument("--no-blocklist", action="store_true",
                      help="disable blocked-connection persistence")
    filt.add_argument("--batched", action="store_true",
                      help="use the columnar batched replay engine "
                           "(identical results, much faster)")
    filt.add_argument("--workers", type=int, default=1,
                      help="worker processes for the multiprocess sharded "
                           "replay engine (>1 shards the client network; "
                           "identical merged results)")
    filt.add_argument("--shard-bits", type=int, default=2,
                      help="with --workers > 1: split the client network "
                           "into 2^bits per-subnet shards (default: 4 shards)")
    filt.add_argument("--transport", default="auto",
                      choices=("auto", "shm", "pickle"),
                      help="with --workers > 1: lane dispatch mechanism — "
                           "shared-memory column buffers or pickled tables "
                           "(auto prefers shared memory; identical results)")
    filt.set_defaults(handler=cmd_filter)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's figures from a pcap (or synthetic)"
    )
    figures.add_argument("pcap", nargs="?", default=None,
                         help="input pcap (omit to synthesize a trace)")
    figures.add_argument("--network", default="10.1.0.0/16")
    figures.add_argument("--duration", type=float, default=90.0,
                         help="synthetic trace seconds (no pcap given)")
    figures.add_argument("--rate", type=float, default=12.0)
    figures.add_argument("--seed", type=int, default=7)
    figures.add_argument("--gen-workers", type=int, default=1,
                         help="worker processes for synthetic trace "
                              "materialization")
    figures.set_defaults(handler=cmd_figures)

    serve = sub.add_parser(
        "serve", help="run the live filter daemon over a packet source"
    )
    serve.add_argument("--source", default="generator",
                       choices=("generator", "pcap", "socket", "idle"),
                       help="where packets come from")
    serve.add_argument("--pcap", default=None, help="capture path (--source pcap)")
    serve.add_argument("--network", default="10.1.0.0/16",
                       help="client network CIDR (directions, sharding)")
    serve.add_argument("--feed", default=None,
                       help="listen address for the packet feed "
                            "(--source socket): unix:/path or tcp:host:port")
    serve.add_argument("--duration", type=float, default=60.0,
                       help="generator trace seconds (--source generator)")
    serve.add_argument("--rate", type=float, default=10.0,
                       help="generator connection arrivals/sec")
    serve.add_argument("--hosts", type=int, default=120)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--chunk-size", type=int, default=4096,
                       help="packets per source chunk")
    serve.add_argument("--speed", type=float, default=None,
                       help="trace-time pacing multiplier (1.0 = real time; "
                            "omit to replay flat out)")
    serve.add_argument("--control", default=None,
                       help="control socket: unix:/path or tcp:host:port")
    serve.add_argument("--snapshot-dir", default=None,
                       help="directory for warm-restart snapshots")
    serve.add_argument("--snapshot-interval", type=float, default=None,
                       help="seconds between periodic snapshots")
    serve.add_argument("--restore", default=None,
                       help="warm-restart from a snapshot file (or the "
                            "latest snapshot in a directory)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="ingest backpressure bound (chunks)")
    serve.add_argument("--size-bits", type=int, default=20, help="n of N=2^n")
    serve.add_argument("--vectors", type=int, default=4, help="k bit vectors")
    serve.add_argument("--hashes", type=int, default=3, help="m hash functions")
    serve.add_argument("--rotate", type=float, default=5.0, help="Δt seconds")
    serve.add_argument("--hole-punching", action="store_true")
    serve.add_argument("--low-mbps", type=float, default=None, help="Equation 1 L")
    serve.add_argument("--high-mbps", type=float, default=None, help="Equation 1 H")
    serve.add_argument("--no-blocklist", action="store_true")
    serve.add_argument("--sequential", action="store_true",
                       help="per-packet stepping instead of the columnar "
                            "batched engine (identical verdicts)")
    serve.set_defaults(handler=cmd_serve)

    feed = sub.add_parser(
        "feed", help="stream packet chunks into a daemon's socket source"
    )
    feed.add_argument("address",
                      help="feed address of the daemon: unix:/path or "
                           "tcp:host:port (the daemon's --feed)")
    feed.add_argument("--pcap", default=None,
                      help="capture to stream (omit to synthesize a trace)")
    feed.add_argument("--network", default="10.1.0.0/16",
                      help="client network CIDR (packet directions)")
    feed.add_argument("--duration", type=float, default=60.0,
                      help="synthetic trace seconds (no --pcap)")
    feed.add_argument("--rate", type=float, default=10.0,
                      help="synthetic connection arrivals/sec")
    feed.add_argument("--hosts", type=int, default=120)
    feed.add_argument("--seed", type=int, default=7)
    feed.add_argument("--chunk-size", type=int, default=4096,
                      help="packets per frame")
    feed.add_argument("--format", dest="wire_format", default="binary",
                      choices=("binary", "json"),
                      help="frame payload codec (json = legacy compat)")
    feed.add_argument("--workers", type=int, default=1,
                      help="worker processes for synthetic trace "
                           "materialization (byte-identical frames)")
    feed.set_defaults(handler=cmd_feed)

    fleet = sub.add_parser(
        "fleet", help="supervise a fleet of shard daemons (one plan, N serves)"
    )
    fleet_sub = fleet.add_subparsers(title="fleet commands")

    fserve = fleet_sub.add_parser(
        "serve", help="spawn shard daemons, pump a trace through them, "
                      "merge the fleet verdict"
    )
    fserve.add_argument("--workdir", default=None,
                        help="fleet state directory: sockets, snapshots, "
                             "manifest (default: a fresh temp dir)")
    fserve.add_argument("--keying", default="subnet",
                        choices=("subnet", "hash"),
                        help="shard plan: per-subnet split of --network, or "
                             "a consistent-hash ring over client subnets")
    fserve.add_argument("--shards", type=int, default=None,
                        help="lane count for --keying hash")
    fserve.add_argument("--shard-bits", type=int, default=2,
                        help="with --keying subnet: split the client "
                             "network into 2^bits shards")
    fserve.add_argument("--network", default="10.1.0.0/16")
    fserve.add_argument("--pcap", default=None,
                        help="trace to pump (omit to synthesize)")
    fserve.add_argument("--duration", type=float, default=30.0)
    fserve.add_argument("--rate", type=float, default=8.0)
    fserve.add_argument("--hosts", type=int, default=120)
    fserve.add_argument("--seed", type=int, default=7)
    fserve.add_argument("--chunk-size", type=int, default=1024)
    fserve.add_argument("--snapshot-every", type=int, default=8,
                        help="checkpoint every N chunks (0 = off; crashed "
                             "shards then restart cold)")
    fserve.add_argument("--size-bits", type=int, default=16)
    fserve.add_argument("--vectors", type=int, default=4)
    fserve.add_argument("--hashes", type=int, default=3)
    fserve.add_argument("--rotate", type=float, default=5.0)
    fserve.add_argument("--hole-punching", action="store_true")
    fserve.add_argument("--low-mbps", type=float, default=None)
    fserve.add_argument("--high-mbps", type=float, default=None)
    fserve.add_argument("--no-blocklist", action="store_true")
    fserve.add_argument("--rolling-restart", action="store_true",
                        help="roll every shard through a warm restart at "
                             "mid-trace (exactness drill)")
    fserve.add_argument("--kill-shard", type=int, default=None,
                        help="SIGKILL this shard at mid-trace (crash-"
                             "recovery drill)")
    fserve.add_argument("--verify-offline", action="store_true",
                        help="replay the same trace offline "
                             "(parallel_replay, workers=1) and require a "
                             "bit-identical fingerprint and blocklist")
    fserve.set_defaults(handler=cmd_fleet_serve)

    fstatus = fleet_sub.add_parser(
        "status", help="per-shard liveness for a running fleet"
    )
    fstatus.add_argument("workdir", help="the fleet's --workdir (manifest)")
    fstatus.set_defaults(handler=cmd_fleet_status)

    fctl = fleet_sub.add_parser(
        "ctl", help="fan one control command out to every shard daemon"
    )
    fctl.add_argument("workdir", help="the fleet's --workdir (manifest)")
    fctl.add_argument("command",
                      choices=("stats", "health", "config", "snapshot",
                               "drain", "shutdown"))
    fctl.add_argument("--low-mbps", type=float, default=None)
    fctl.add_argument("--high-mbps", type=float, default=None)
    fctl.add_argument("--probability", type=float, default=None)
    fctl.add_argument("--rotate", type=float, default=None)
    fctl.set_defaults(handler=cmd_fleet_ctl)

    ctl = sub.add_parser(
        "ctl", help="talk to a running filter daemon's control socket"
    )
    ctl.add_argument("address", help="control socket: unix:/path or tcp:host:port")
    ctl.add_argument("command",
                     choices=("stats", "health", "config", "snapshot",
                              "drain", "shutdown"))
    ctl.add_argument("--low-mbps", type=float, default=None,
                     help="config: new Equation 1 L")
    ctl.add_argument("--high-mbps", type=float, default=None,
                     help="config: new Equation 1 H")
    ctl.add_argument("--probability", type=float, default=None,
                     help="config: new static drop probability")
    ctl.add_argument("--rotate", type=float, default=None,
                     help="config: new Δt (rotation phase re-anchors)")
    ctl.set_defaults(handler=cmd_ctl)

    swarm = sub.add_parser(
        "swarm",
        help="run the adversarial closed-loop swarm against a filter",
    )
    swarm.add_argument("--peers", type=int, default=16, help="outside swarm peers")
    swarm.add_argument("--clients", type=int, default=4, help="inside client hosts")
    swarm.add_argument("--duration", type=float, default=120.0, help="trace seconds")
    swarm.add_argument("--seed", type=int, default=7, help="run seed")
    swarm.add_argument("--filter", dest="filter_name", default="bitmap",
                       choices=("bitmap", "counting", "spi", "chain"))
    swarm.add_argument("--size-bits", type=int, default=14, help="n of N=2^n")
    swarm.add_argument("--vectors", type=int, default=4, help="k bit vectors")
    swarm.add_argument("--hashes", type=int, default=3, help="m hash functions")
    swarm.add_argument("--rotate", type=float, default=5.0, help="Δt seconds")
    swarm.add_argument("--hole-punching", action="store_true",
                       help="asymmetric fields: ignore the remote port "
                            "(lets the hole-punch tactic through)")
    swarm.add_argument("--pd", type=float, default=1.0,
                       help="static inbound drop probability P_d")
    swarm.add_argument("--no-evasion", action="store_true",
                       help="peers never react to refusals (baseline)")
    swarm.add_argument("--background-rate", type=float, default=1.0,
                       help="non-P2P connections/sec (collateral probe)")
    swarm.add_argument("--link-lifetime", type=float, default=45.0,
                       help="mean seconds before a link churns (0 = forever)")
    swarm.add_argument("--retune-mbps", type=float, default=None,
                       help="close the defense loop: steer P_d toward this "
                            "uplink target (starts from --pd)")
    swarm.add_argument("--retune-via", default="direct",
                       choices=("direct", "control"),
                       help="apply retuned P_d in-process or through a live "
                            "FilterService control socket")
    swarm.add_argument("--retune-interval", type=float, default=5.0,
                       help="seconds between retune probes")
    swarm.add_argument("--retune-gain", type=float, default=0.4,
                       help="TargetRateController integral gain")
    swarm.add_argument("--json", dest="json_out", default=None,
                       help="write the full SwarmResult as JSON (use '-' "
                            "for stdout)")
    swarm.set_defaults(handler=cmd_swarm)

    plan = sub.add_parser("plan", help="size a bitmap filter (section 4.3)")
    plan.add_argument("--connections", type=int, required=True,
                      help="active connections per T_e window")
    plan.add_argument("--target-p", type=float, default=0.05,
                      help="tolerated penetration probability")
    plan.add_argument("--expiry", type=float, default=20.0, help="T_e seconds")
    plan.add_argument("--rotate", type=float, default=5.0, help="Δt seconds")
    plan.set_defaults(handler=cmd_plan)

    return parser


# ---------------------------------------------------------------------------


def _parse_cidr(text: str):
    from repro.net.inet import parse_ipv4

    if "/" in text:
        network, prefix = text.split("/", 1)
        return parse_ipv4(network), int(prefix)
    return parse_ipv4(text), 16


def _load_pcap(path: str, network_cidr: str):
    from repro.net.headers import HeaderError, decode_packet
    from repro.net.inet import in_network
    from repro.net.packet import Direction
    from repro.net.pcap import iter_pcap

    network, prefix = _parse_cidr(network_cidr)
    packets = []
    for record in iter_pcap(path):
        try:
            packet = decode_packet(record.data, record.timestamp)
        except HeaderError:
            continue
        inside = in_network(packet.pair.src_addr, network, prefix)
        packet.direction = Direction.OUTBOUND if inside else Direction.INBOUND
        packets.append(packet)
    return packets


def _load_table(path: str, network_cidr: str):
    """Stream a pcap straight into a columnar PacketTable (never holds
    the capture twice: records decode one at a time into columns)."""
    from repro.net.table import PacketTable

    network, prefix = _parse_cidr(network_cidr)
    return PacketTable.from_pcap(path, network, prefix)


def cmd_trace(args) -> int:
    """Synthesize a client-network trace and write it as a pcap."""
    from repro.workload.generator import TraceConfig, TraceGenerator
    from repro.workload.progress import ProgressReporter

    config = TraceConfig(
        duration=args.duration,
        connection_rate=args.rate,
        hosts=args.hosts,
        seed=args.seed,
    )
    generator = TraceGenerator(config)
    reporter = ProgressReporter("trace", duration=args.duration)
    count = generator.write_pcap(args.out, snaplen=args.snaplen,
                                 workers=args.workers,
                                 progress=reporter.update)
    reporter.finish()
    print(f"wrote {count:,} packets ({len(generator.specs()):,} connections) "
          f"to {args.out}")
    return 0


def cmd_analyze(args) -> int:
    """Run the section-3 measurement study over a pcap."""
    from repro.analyzer.classifier import TrafficAnalyzer
    from repro.analyzer.report import lifetime_report, protocol_distribution
    from repro.net.packet import Direction

    packets = _load_pcap(args.pcap, args.network)
    if not packets:
        print("no parseable packets", file=sys.stderr)
        return 1
    analyzer = TrafficAnalyzer().analyze(packets)

    print(f"{len(packets):,} packets, {len(analyzer.flows):,} connections\n")
    print(f"{'protocol':<12} {'connections':>12} {'bytes':>8}")
    for row in protocol_distribution(analyzer.flows):
        print(f"{row.protocol:<12} {row.connection_share:>11.1%} {row.byte_share:>7.1%}")

    try:
        report = lifetime_report(analyzer.flows)
        print(f"\nTCP lifetimes: mean {report.mean:.1f}s, "
              f"90% < {report.quantiles[0.9]:.1f}s, "
              f"95% < {report.quantiles[0.95]:.1f}s")
    except ValueError:
        pass
    if analyzer.outin is not None and len(analyzer.outin):
        print(f"out-in delay: median {analyzer.outin.quantile(0.5) * 1000:.0f} ms, "
              f"99% < {analyzer.outin.quantile(0.99):.2f}s")
    upload = sum(p.size for p in packets if p.direction is Direction.OUTBOUND)
    total = sum(p.size for p in packets)
    print(f"upload share: {upload / total:.1%} of {total:,} bytes")
    return 0


def _build_filter(args, offered_up_mbps: float):
    from repro.filters.base import AcceptAllFilter
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.counting import CountingBitmapFilter
    from repro.filters.naive import NaiveTimerFilter
    from repro.filters.policy import DropController
    from repro.filters.spi import SPIFilter

    if args.auto_red:
        low, high = offered_up_mbps * 0.35, offered_up_mbps * 0.70
    else:
        low, high = args.low_mbps, args.high_mbps
    if low is not None and high is not None:
        controller = DropController.red_mbps(low_mbps=low, high_mbps=high)
        red_note = f"RED L={low:.2f} H={high:.2f} Mbps"
    else:
        controller = DropController.always_drop()
        red_note = "P_d = 1 (drop all stateless inbound)"

    config = BitmapFilterConfig(
        size=2 ** args.size_bits,
        vectors=args.vectors,
        hashes=args.hashes,
        rotate_interval=args.rotate,
        field_mode=FieldMode.HOLE_PUNCHING if args.hole_punching else FieldMode.STRICT,
    )
    if args.filter_name == "bitmap":
        return BitmapPacketFilter(config, drop_controller=controller), red_note
    if args.filter_name == "counting":
        return CountingBitmapFilter(config, drop_controller=controller), red_note
    if args.filter_name == "spi":
        return SPIFilter(drop_controller=controller), red_note
    if args.filter_name == "naive":
        return NaiveTimerFilter(expiry=config.expiry_time,
                                drop_controller=controller), red_note
    return AcceptAllFilter(), "no filtering"


def _build_sharded_filter(args, offered_up_mbps: float):
    """Split the client network into 2^shard_bits per-subnet shards, each
    hosting its own filter instance (per-network policy isolation)."""
    from repro.filters.sharded import ShardedFilter

    network, prefix = _parse_cidr(args.network)
    shard_prefix = prefix + args.shard_bits
    if args.shard_bits < 1 or shard_prefix > 32:
        raise SystemExit(
            f"--shard-bits {args.shard_bits} does not fit inside /{prefix}"
        )
    step = 1 << (32 - shard_prefix)
    shards = []
    note = ""
    for index in range(1 << args.shard_bits):
        member, note = _build_filter(args, offered_up_mbps)
        shards.append((network + index * step, shard_prefix, member))
    return ShardedFilter(shards), note


def cmd_filter(args) -> int:
    """Replay a pcap through a chosen filter and report the outcome."""
    from repro.filters.base import AcceptAllFilter
    from repro.net.packet import Direction
    from repro.sim.pipeline import select_backend
    from repro.sim.replay import replay

    if args.pcap is not None:
        packets = _load_table(args.pcap, args.network)
    else:
        from repro.workload.generator import TraceConfig, TraceGenerator

        print(f"synthesizing trace ({args.duration:g}s at {args.rate:g} "
              f"conn/s, seed {args.seed}"
              + (f", {args.gen_workers} workers" if args.gen_workers > 1 else "")
              + ")...")
        packets = TraceGenerator(TraceConfig(
            duration=args.duration,
            connection_rate=args.rate,
            hosts=args.hosts,
            seed=args.seed,
        )).table(workers=args.gen_workers)
    if not len(packets):
        print("no parseable packets", file=sys.stderr)
        return 1

    baseline = replay(packets, AcceptAllFilter(), use_blocklist=False)
    offered_up = baseline.passed.mean_mbps(Direction.OUTBOUND)

    if args.workers > 1:
        packet_filter, note = _build_sharded_filter(args, offered_up)
    else:
        if args.transport != "auto":
            raise SystemExit("--transport needs --workers > 1")
        packet_filter, note = _build_filter(args, offered_up)
    # batched=None lets each backend keep its default lane engine (the
    # parallel backend batches its lanes even without --batched).
    backend = select_backend(batched=True if args.batched else None,
                             workers=args.workers,
                             transport=args.transport)
    start = time.perf_counter()
    result = replay(packets, packet_filter,
                    use_blocklist=not args.no_blocklist, backend=backend)
    elapsed = time.perf_counter() - start

    print(f"filter: {packet_filter.name}  ({note})")
    engine = backend.describe()
    if args.workers > 1:
        engine += f" ({len(packet_filter)} shards)"
    print(f"engine: {engine}  ({result.packets / elapsed:,.0f} pkts/s)")
    print(f"packets: {result.packets:,}  inbound: {result.inbound_packets:,}")
    print(f"inbound drop rate: {result.inbound_drop_rate:.2%}")
    print(f"uplink: {offered_up:.2f} -> "
          f"{result.passed.mean_mbps(Direction.OUTBOUND):.2f} Mbps")
    print(f"downlink: {baseline.passed.mean_mbps(Direction.INBOUND):.2f} -> "
          f"{result.passed.mean_mbps(Direction.INBOUND):.2f} Mbps")
    if result.router.blocklist is not None:
        print(f"blocked connections: {len(result.router.blocklist):,}")
    if hasattr(packet_filter, "memory_bytes"):
        print(f"filter memory: {packet_filter.memory_bytes // 1024} KiB")
    if args.workers > 1:
        for label, stats in packet_filter.shard_stats().items():
            seen = (stats["passed_inbound"] + stats["dropped_inbound"]
                    + stats["passed_outbound"] + stats["dropped_outbound"])
            print(f"  shard {label}: {seen:,} packets, "
                  f"inbound drop rate {stats['inbound_drop_rate']:.2%}")
        if packet_filter.unrouted_packets:
            print(f"  transit (default lane): {packet_filter.unrouted_packets:,} packets")
    return 0


def cmd_figures(args) -> int:
    """Regenerate every figure of the paper's evaluation as ASCII plots."""
    from repro.analyzer.classifier import TrafficAnalyzer
    from repro.analyzer.report import (
        CLASS_NON_P2P,
        CLASS_P2P,
        CLASS_UNKNOWN,
        lifetime_report,
        port_cdf,
        protocol_distribution,
    )
    from repro.core.bitmap_filter import BitmapFilterConfig
    from repro.filters.base import AcceptAllFilter
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.policy import DropController
    from repro.filters.spi import SPIFilter
    from repro.net.inet import IPPROTO_TCP, IPPROTO_UDP
    from repro.net.packet import Direction
    from repro.report.figures import (
        render_cdf,
        render_histogram,
        render_scatter,
        render_series,
    )
    from repro.sim.replay import compare_drop_rates, replay

    if args.pcap is not None:
        packets = _load_table(args.pcap, args.network)
    else:
        from repro.workload.generator import TraceConfig, TraceGenerator

        print(f"synthesizing trace ({args.duration:g}s at {args.rate:g} conn/s, "
              f"seed {args.seed})...")
        packets = TraceGenerator(
            TraceConfig(duration=args.duration, connection_rate=args.rate,
                        seed=args.seed)
        ).table(workers=args.gen_workers)
    if not len(packets):
        print("no parseable packets", file=sys.stderr)
        return 1
    print(f"{len(packets):,} packets\n")

    # PacketTable iteration materializes one Packet at a time, so the
    # object-based analyzer streams over the columnar trace.
    analyzer = TrafficAnalyzer().analyze(packets)

    print("== Table 2: protocol distribution ==")
    for row in protocol_distribution(analyzer.flows):
        print(f"  {row.protocol:<12} {row.connection_share:>7.1%} of connections, "
              f"{row.byte_share:>6.1%} of bytes")

    tcp_cdf = port_cdf(analyzer.flows, protocol=IPPROTO_TCP)
    print("\n" + render_cdf(
        {klass: [(float(p), f) for p, f in tcp_cdf[klass]]
         for klass in (CLASS_P2P, CLASS_NON_P2P, CLASS_UNKNOWN) if klass in tcp_cdf},
        title="Figure 2: TCP service-port CDF",
    ))

    udp_cdf = port_cdf(analyzer.flows, protocol=IPPROTO_UDP)
    if udp_cdf:
        print("\n" + render_cdf(
            {"ALL": [(float(p), f) for p, f in udp_cdf["ALL"]]},
            title="Figure 3: UDP port CDF",
        ))

    report = lifetime_report(analyzer.flows)
    print("\n" + render_histogram(report.histogram[:18],
                                  title=f"Figure 4: lifetimes (mean {report.mean:.1f}s)"))

    if analyzer.outin is not None and len(analyzer.outin):
        print("\n" + render_histogram(
            analyzer.outin.histogram(bin_width=0.25, max_delay=3.0),
            title=f"Figure 5: out-in delays (99% < "
                  f"{analyzer.outin.quantile(0.99):.2f}s)",
        ))

    comparison = compare_drop_rates(
        packets,
        {
            "spi": SPIFilter(idle_timeout=240.0),
            "bitmap": BitmapPacketFilter(
                BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3,
                                   rotate_interval=5.0)
            ),
        },
        batched=True,
    )
    print("\n" + render_scatter(
        comparison.points,
        title=f"Figure 8: drop rates (SPI {comparison.overall('spi'):.2%} vs "
              f"bitmap {comparison.overall('bitmap'):.2%})",
    ))

    baseline = replay(packets, AcceptAllFilter(), use_blocklist=False, batched=True)
    offered = baseline.passed.mean_mbps(Direction.OUTBOUND)
    high = offered * 0.70
    limited = replay(
        packets,
        BitmapPacketFilter(
            BitmapFilterConfig(size=2 ** 20, vectors=4, hashes=3, rotate_interval=5.0),
            drop_controller=DropController.red_mbps(low_mbps=offered * 0.35,
                                                    high_mbps=high),
        ),
        use_blocklist=True,
        batched=True,
    )
    horizon = packets.last_timestamp * 0.6
    for title, result in (("Figure 9-a: uplink before", baseline),
                          ("Figure 9-b: uplink after (H marked)", limited)):
        series = [(t, v) for t, v in result.passed.series_mbps(Direction.OUTBOUND)
                  if t <= horizon]
        print("\n" + render_series(series, title=title, y_label="Mbps", hline=high))
    return 0


def _build_serve_filter(args):
    """The daemon's filter: a bitmap filter (the snapshot/restore unit)
    with a RED controller when thresholds are given."""
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.policy import DropController

    if args.low_mbps is not None and args.high_mbps is not None:
        controller = DropController.red_mbps(
            low_mbps=args.low_mbps, high_mbps=args.high_mbps
        )
        note = f"RED L={args.low_mbps:.2f} H={args.high_mbps:.2f} Mbps"
    else:
        controller = DropController.always_drop()
        note = "P_d = 1 (drop all stateless inbound)"
    config = BitmapFilterConfig(
        size=2 ** args.size_bits,
        vectors=args.vectors,
        hashes=args.hashes,
        rotate_interval=args.rotate,
        field_mode=FieldMode.HOLE_PUNCHING if args.hole_punching else FieldMode.STRICT,
    )
    return BitmapPacketFilter(config, drop_controller=controller), note


def _build_source(args):
    from repro.service import (
        GeneratorSource,
        IdleSource,
        PcapSource,
        SocketSource,
    )

    if args.source == "generator":
        from repro.workload.generator import TraceConfig, TraceGenerator

        generator = TraceGenerator(TraceConfig(
            duration=args.duration,
            connection_rate=args.rate,
            hosts=args.hosts,
            seed=args.seed,
        ))
        return GeneratorSource(generator, chunk_size=args.chunk_size)
    if args.source == "pcap":
        if args.pcap is None:
            raise SystemExit("--source pcap needs --pcap PATH")
        network, prefix = _parse_cidr(args.network)
        return PcapSource(args.pcap, network, prefix,
                          chunk_size=args.chunk_size)
    if args.source == "socket":
        if args.feed is None:
            raise SystemExit("--source socket needs --feed ADDRESS")
        from repro.service.control import parse_control_address

        kind, address = parse_control_address(args.feed)
        if kind == "unix":
            return SocketSource.unix(address)
        host, port = address
        return SocketSource.tcp(host, port)
    return IdleSource()


def cmd_serve(args) -> int:
    """Run the streaming filter daemon until its source ends or a
    control-plane drain/shutdown finalizes it."""
    from repro.net.packet import Direction
    from repro.service import FilterService
    from repro.sim.pipeline import BatchedBackend, SequentialBackend

    source = _build_source(args)
    backend = SequentialBackend() if args.sequential else BatchedBackend()
    common = dict(
        backend=backend,
        speed=args.speed,
        queue_depth=args.queue_depth,
        snapshot_dir=args.snapshot_dir,
        snapshot_interval=args.snapshot_interval,
        control=args.control,
        handle_signals=True,
    )
    if args.restore is not None:
        service = FilterService.restore(args.restore, source, **common)
        note = f"restored from {args.restore}"
    else:
        packet_filter, note = _build_serve_filter(args)
        service = FilterService(
            source, packet_filter,
            use_blocklist=not args.no_blocklist,
            **common,
        )
    print(f"serving {source.describe()} via {backend.describe()}  ({note})")
    if args.control:
        print(f"control socket: {args.control}")
    try:
        result = service.run_forever()
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    print(f"packets: {result.packets:,}  inbound: {result.inbound_packets:,}  "
          f"drop rate: {result.inbound_drop_rate:.2%}")
    print(f"uplink passed: {result.passed.mean_mbps(Direction.OUTBOUND):.2f} Mbps")
    if result.router.blocklist is not None:
        print(f"blocked connections: {len(result.router.blocklist):,}")
    if result.fingerprint is not None:
        print(f"verdict fingerprint: {result.fingerprint:#018x}")
    return 0


def cmd_feed(args) -> int:
    """Stream a trace into a running daemon's socket source, one
    length-prefixed frame per chunk (binary columnar by default)."""
    import socket as socket_module

    from repro.net.stream import FrameWriter
    from repro.service.control import parse_control_address

    if args.chunk_size < 1:
        raise SystemExit(f"--chunk-size must be >= 1: {args.chunk_size}")
    if args.pcap is not None:
        from repro.net.table import PacketTable

        network, prefix = _parse_cidr(args.network)
        table = PacketTable.from_pcap(args.pcap, network, prefix)
        chunks = (table.slice(start, start + args.chunk_size)
                  for start in range(0, len(table), args.chunk_size))
        label = f"pcap {args.pcap}"
    else:
        from repro.workload.generator import TraceConfig, TraceGenerator

        generator = TraceGenerator(TraceConfig(
            duration=args.duration,
            connection_rate=args.rate,
            hosts=args.hosts,
            seed=args.seed,
        ))
        chunks = generator.iter_tables(args.chunk_size, workers=args.workers)
        label = (f"synthetic trace ({args.duration:g}s at "
                 f"{args.rate:g} conn/s, seed {args.seed})")

    kind, address = parse_control_address(args.address)
    connection = socket_module.socket(
        socket_module.AF_UNIX if kind == "unix" else socket_module.AF_INET
    )
    try:
        connection.connect(address)
    except OSError as error:
        print(f"cannot connect to {args.address}: {error}", file=sys.stderr)
        connection.close()
        return 1
    stream = connection.makefile("wb")
    writer = FrameWriter(stream, binary=args.wire_format == "binary")
    from repro.workload.progress import ProgressReporter

    reporter = ProgressReporter(
        "feed", duration=args.duration if args.pcap is None else None
    )
    packets = 0
    try:
        for chunk in chunks:
            writer.send(chunk)
            packets += len(chunk)
            reporter.update(
                packets, chunk.timestamps[-1] if len(chunk) else None
            )
        reporter.finish()
    except (BrokenPipeError, ConnectionResetError):
        print("daemon closed the feed", file=sys.stderr)
        return 1
    finally:
        try:
            stream.close()
        except OSError:
            pass
        connection.close()
    print(f"fed {label}: {packets:,} packets in {writer.frames_sent} "
          f"{args.wire_format} frames ({writer.bytes_sent:,} payload bytes)")
    return 0


def _build_fleet_plan(args):
    from repro.shard.plan import HashShardPlan, SubnetShardPlan

    if args.keying == "hash":
        return HashShardPlan(args.shards or 4, seed=args.seed)
    if args.shards is not None:
        raise SystemExit("--shards needs --keying hash "
                         "(subnet keying uses --shard-bits)")
    network, prefix = _parse_cidr(args.network)
    try:
        return SubnetShardPlan.from_cidr(network, prefix, args.shard_bits)
    except ValueError as error:
        raise SystemExit(str(error))


def _fleet_table(args):
    if args.pcap is not None:
        table = _load_table(args.pcap, args.network)
        label = f"pcap {args.pcap}"
    else:
        from repro.workload.generator import TraceConfig, TraceGenerator

        table = TraceGenerator(TraceConfig(
            duration=args.duration,
            connection_rate=args.rate,
            hosts=args.hosts,
            seed=args.seed,
        )).table()
        label = (f"synthetic trace ({args.duration:g}s at "
                 f"{args.rate:g} conn/s, seed {args.seed})")
    return table, label


def cmd_fleet_serve(args) -> int:
    """Spawn one filter daemon per shard lane, pump a trace through the
    fleet, and merge the per-shard verdicts into one result — optionally
    drilling a mid-trace crash or rolling restart on the way."""
    import tempfile

    from repro.fleet import (
        FleetError,
        FleetSupervisor,
        ShardFilterSpec,
        offline_reference,
    )

    if args.chunk_size < 1:
        raise SystemExit(f"--chunk-size must be >= 1: {args.chunk_size}")
    plan = _build_fleet_plan(args)
    if args.kill_shard is not None and not 0 <= args.kill_shard < plan.lanes:
        raise SystemExit(
            f"--kill-shard {args.kill_shard} out of range (plan has "
            f"{plan.lanes} lanes)"
        )
    spec = ShardFilterSpec(
        size_bits=args.size_bits,
        vectors=args.vectors,
        hashes=args.hashes,
        rotate_interval=args.rotate,
        hole_punching=args.hole_punching,
        low_mbps=args.low_mbps,
        high_mbps=args.high_mbps,
        use_blocklist=not args.no_blocklist,
    )
    table, label = _fleet_table(args)
    if not len(table):
        print("no parseable packets", file=sys.stderr)
        return 1
    chunks = [table.slice(start, min(start + args.chunk_size, len(table)))
              for start in range(0, len(table), args.chunk_size)]
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-fleet-")

    supervisor = FleetSupervisor(
        plan, workdir, spec=spec, snapshot_every=args.snapshot_every
    )
    print(f"fleet: {plan.lanes} shards ({args.keying} keying) in {workdir}")
    print(f"pumping {label}: {len(table):,} packets in {len(chunks)} chunks")
    try:
        supervisor.launch()
        midpoint = len(chunks) // 2
        supervisor.feed(chunks[:midpoint])
        if args.kill_shard is not None:
            print(f"killing shard {plan.label(args.kill_shard)} mid-trace")
            supervisor.daemons[args.kill_shard].kill()
        if args.rolling_restart:
            print("rolling restart across the fleet")
            supervisor.rolling_restart()
        supervisor.feed(chunks[midpoint:])
        result = supervisor.drain()
    except FleetError as error:
        print(f"fleet error: {error}", file=sys.stderr)
        return 1
    finally:
        supervisor.stop()

    print(f"packets: {result.packets:,}  inbound: {result.inbound_packets:,}  "
          f"drop rate: {result.inbound_drop_rate:.2%}")
    if result.blocked is not None:
        print(f"blocked connections: {len(result.blocked):,}")
    print(f"shard restarts: {result.restarts}")
    print(f"fleet fingerprint: {result.fingerprint:#018x}")

    if args.verify_offline:
        reference = offline_reference(table, plan, spec)
        mismatches = []
        if reference.fingerprint != result.fingerprint:
            mismatches.append(
                f"fingerprint {result.fingerprint:#018x} != offline "
                f"{reference.fingerprint:#018x}"
            )
        offline_blocked = (
            dict(reference.router.blocklist._blocked)
            if reference.router.blocklist is not None else None
        )
        if (result.blocked or None) != (offline_blocked or None):
            mismatches.append("merged blocklist differs from offline replay")
        if mismatches:
            for mismatch in mismatches:
                print(f"OFFLINE MISMATCH: {mismatch}", file=sys.stderr)
            return 1
        print("offline verification: fingerprint and blocklist identical")
    return 0


def _read_fleet_manifest(workdir: str) -> dict:
    import json
    import os

    from repro.fleet.supervisor import MANIFEST_NAME

    path = os.path.join(workdir, MANIFEST_NAME)
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"no fleet manifest at {path} "
                         f"(is this a fleet --workdir?)")
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read fleet manifest {path}: {error}")


def cmd_fleet_status(args) -> int:
    """Per-shard liveness of a running fleet, via its manifest."""
    from repro.service import ControlClient, ControlError

    manifest = _read_fleet_manifest(args.workdir)
    plan = manifest.get("plan", {})
    print(f"fleet of {len(manifest['shards'])} shards "
          f"({plan.get('keying', '?')} keying)")
    exit_code = 0
    for shard in manifest["shards"]:
        try:
            with ControlClient(shard["control"], timeout=5.0) as client:
                health = client.health()
            status = (f"{health.get('status', 'unknown'):<9} "
                      f"chunks={health.get('chunks_done', 0)} "
                      f"queue={health.get('queue_depth', 0)}")
        except (ControlError, OSError) as error:
            status = f"unreachable ({error})"
            exit_code = 1
        print(f"  shard {shard['lane']} {shard['label']:<18} "
              f"pid={shard.get('pid')} restarts={shard.get('restarts', 0)} "
              f"{status}")
    return exit_code


def cmd_fleet_ctl(args) -> int:
    """Fan one control command out to every shard of a running fleet."""
    import json

    from repro.service import ControlClient, ControlError

    params = {}
    if args.command == "config":
        if args.low_mbps is not None:
            params["low_mbps"] = args.low_mbps
        if args.high_mbps is not None:
            params["high_mbps"] = args.high_mbps
        if args.probability is not None:
            params["probability"] = args.probability
        if args.rotate is not None:
            params["rotate_interval"] = args.rotate
        if not params:
            print("config needs at least one of --low-mbps/--high-mbps/"
                  "--probability/--rotate", file=sys.stderr)
            return 2

    manifest = _read_fleet_manifest(args.workdir)
    responses = {}
    exit_code = 0
    for shard in manifest["shards"]:
        try:
            with ControlClient(shard["control"], timeout=30.0) as client:
                responses[shard["label"]] = client.request(
                    args.command, **params
                )
        except (ControlError, OSError) as error:
            responses[shard["label"]] = {"ok": False, "error": str(error)}
            exit_code = 1
    print(json.dumps(responses, indent=2))
    return exit_code


def cmd_ctl(args) -> int:
    """One request against a running daemon's control socket."""
    import json

    from repro.service import ControlClient, ControlError

    try:
        with ControlClient(args.address) as client:
            if args.command == "stats":
                print(json.dumps(client.stats(), indent=2))
            elif args.command == "health":
                print(json.dumps(client.health(), indent=2))
            elif args.command == "snapshot":
                print(client.snapshot())
            elif args.command == "drain":
                print(json.dumps(client.drain(), indent=2))
            elif args.command == "shutdown":
                print(json.dumps(client.shutdown(), indent=2))
            else:
                params = {}
                if args.low_mbps is not None:
                    params["low_mbps"] = args.low_mbps
                if args.high_mbps is not None:
                    params["high_mbps"] = args.high_mbps
                if args.probability is not None:
                    params["probability"] = args.probability
                if args.rotate is not None:
                    params["rotate_interval"] = args.rotate
                if not params:
                    print("config needs at least one of --low-mbps/--high-mbps/"
                          "--probability/--rotate", file=sys.stderr)
                    return 2
                print(json.dumps(client.configure(**params), indent=2))
    except (ControlError, ConnectionError, FileNotFoundError, OSError) as error:
        print(f"control error: {error}", file=sys.stderr)
        return 1
    return 0


def _build_swarm_filter(args):
    """The swarm's defender and, when retuning, its drop controller."""
    from repro.core.dropper import StaticDropPolicy
    from repro.filters.bitmap import BitmapPacketFilter
    from repro.filters.chain import FilterChain
    from repro.filters.counting import CountingBitmapFilter
    from repro.filters.policy import DropController
    from repro.filters.spi import SPIFilter

    controller = DropController(StaticDropPolicy(args.pd))
    config = BitmapFilterConfig(
        size=2 ** args.size_bits,
        vectors=args.vectors,
        hashes=args.hashes,
        rotate_interval=args.rotate,
        field_mode=FieldMode.HOLE_PUNCHING if args.hole_punching
        else FieldMode.STRICT,
    )
    if args.filter_name == "bitmap":
        return BitmapPacketFilter(config, controller), controller
    if args.filter_name == "counting":
        return CountingBitmapFilter(config, controller), controller
    if args.filter_name == "spi":
        return SPIFilter(idle_timeout=240.0, drop_controller=controller), controller
    # chain: SPI in front of the bitmap; retune steers the bitmap's P_d.
    spi = SPIFilter(idle_timeout=240.0, drop_controller=DropController.never_drop())
    return FilterChain([spi, BitmapPacketFilter(config, controller)]), controller


def cmd_swarm(args) -> int:
    """Run the adversarial swarm and print the engagement summary."""
    import json

    from repro.core.autotune import TargetRateController
    from repro.swarm import (
        ControlApplier,
        DirectApplier,
        EvasionPolicy,
        RetuneLoop,
        SwarmConfig,
        SwarmSimulator,
        launch_control_service,
    )

    evasion = EvasionPolicy.off() if args.no_evasion else EvasionPolicy()
    config = SwarmConfig(
        peers=args.peers,
        clients=args.clients,
        duration=args.duration,
        seed=args.seed,
        background_rate=args.background_rate,
        link_lifetime=args.link_lifetime,
        evasion=evasion,
    )
    packet_filter, controller = _build_swarm_filter(args)

    retune = None
    handle = None
    if args.retune_mbps is not None:
        target = TargetRateController.mbps(
            args.retune_mbps, gain=args.retune_gain,
            initial_probability=args.pd,
        )
        if args.retune_via == "control":
            import os
            import tempfile

            sock = os.path.join(tempfile.mkdtemp(prefix="swarm-ctl-"),
                                "control.sock")
            handle = launch_control_service(packet_filter, "unix:" + sock)
            applier = ControlApplier(handle.client())
        else:
            applier = DirectApplier(controller)
        retune = RetuneLoop(target, applier, interval=args.retune_interval)

    try:
        result = SwarmSimulator(packet_filter, config, retune=retune).run()
    finally:
        if handle is not None:
            handle.close()

    payload = result.as_dict()
    if args.json_out == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    print(f"swarm: {args.peers} peers vs {args.clients} clients, "
          f"{args.duration:.0f}s, filter={args.filter_name} "
          f"P_d={args.pd} evasion={'off' if args.no_evasion else 'on'}")
    print(f"  attempts: {result.attempts_total} "
          f"(admitted {result.attempts_admitted}, "
          f"refused {result.attempts_refused})")
    print(f"  penetration probability: {result.penetration_probability:.3f} "
          f"({result.peers_penetrated}/{result.peers} peers penetrated)")
    for tactic in sorted(result.tactic_attempts):
        print(f"    {tactic}: {result.tactic_successes.get(tactic, 0)}"
              f"/{result.tactic_attempts[tactic]}")
    print(f"  reverse connections (outbound-initiated): "
          f"{result.reverse_connections}")
    print(f"  swarm upload: {result.swarm_upload_bytes:,} bytes "
          f"(bursts {result.burst_upload_bytes:,}, "
          f"reverse {result.reverse_upload_bytes:,})")
    print(f"  background: {result.background_total} connections, "
          f"{result.background_refused} refused "
          f"({result.background_refusal_rate:.1%} collateral)")
    if result.evasion_onset is not None:
        print(f"  evasion onset: t={result.evasion_onset:.1f}s")
    if retune is not None:
        recovery = ("%.1fs" % result.recovery_time
                    if result.recovery_time is not None else "not reached")
        print(f"  retune ({args.retune_via}): target "
              f"{args.retune_mbps:.2f} Mbps, recovery {recovery}, "
              f"final P_d {retune.controller.current_probability:.3f}")
    if result.replay is not None:
        print(f"  packets: {result.replay.packets:,}, "
              f"fingerprint {result.replay.fingerprint:#018x}")
    return 0


def cmd_plan(args) -> int:
    """Print a sized configuration from the section-4.3 procedure."""
    from repro.core.analysis import capacity_table, recommend_parameters

    rec = recommend_parameters(
        args.connections,
        target_p=args.target_p,
        expiry_time=args.expiry,
        rotate_interval=args.rotate,
    )
    print(rec.summary())
    print("\ncapacity of the recommended vector at other targets:")
    for row in capacity_table(rec.size):
        print(f"  p = {row['target_p']:.0%}: {row['capacity']:,.0f} connections")
    return 0


if __name__ == "__main__":
    sys.exit(main())
