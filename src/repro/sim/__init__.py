"""Trace-replay evaluation harness (paper section 5.3).

Feeds timestamp-ordered packets through an edge router hosting a filter,
with the blocked-connection persistence the paper uses to emulate live
blocking during replay, and collects throughput / drop-rate series that
regenerate Figures 8 and 9.
"""

from repro.sim.engine import EventScheduler
from repro.sim.metrics import DropRateSampler, ThroughputSeries
from repro.sim.router import EdgeRouter
from repro.sim.replay import ReplayResult, compare_drop_rates, replay
from repro.sim.closedloop import ClosedLoopResult, ClosedLoopSimulator
from repro.sim.fastpath import (
    PacketColumns,
    fast_replay,
    process_packets_fast,
    supports_fastpath,
)
from repro.sim.parallel import LaneResult, ParallelReplayResult, parallel_replay

__all__ = [
    "LaneResult",
    "ParallelReplayResult",
    "parallel_replay",
    "EventScheduler",
    "ThroughputSeries",
    "DropRateSampler",
    "EdgeRouter",
    "ReplayResult",
    "replay",
    "compare_drop_rates",
    "ClosedLoopSimulator",
    "ClosedLoopResult",
    "PacketColumns",
    "fast_replay",
    "process_packets_fast",
    "supports_fastpath",
]
