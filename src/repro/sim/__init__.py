"""Trace-replay evaluation harness (paper section 5.3).

Feeds timestamp-ordered packets through an edge router hosting a filter,
with the blocked-connection persistence the paper uses to emulate live
blocking during replay, and collects throughput / drop-rate series that
regenerate Figures 8 and 9.

Every entry point drives the same stage pipeline in
:mod:`repro.sim.pipeline` through a pluggable :class:`ExecutionBackend`
(sequential, batched, parallel) — see ``docs/architecture.md``.
"""

from repro.sim.engine import EventScheduler
from repro.sim.metrics import DropRateSampler, ThroughputSeries
from repro.sim.router import EdgeRouter
from repro.sim.pipeline import (
    BatchedBackend,
    ExecutionBackend,
    ParallelBackend,
    PipelineConfig,
    ReplayPipeline,
    ReplayResult,
    SequentialBackend,
    select_backend,
)
from repro.sim.replay import compare_drop_rates, replay
from repro.sim.closedloop import ClosedLoopResult, ClosedLoopSimulator
from repro.sim.fastpath import (
    PacketColumns,
    fast_replay,
    process_packets_fast,
    supports_fastpath,
)
from repro.sim.kernels import KERNELS, FilterKernel, kernel_for, register_kernel
from repro.sim.parallel import LaneResult, ParallelReplayResult, parallel_replay

__all__ = [
    "FilterKernel",
    "KERNELS",
    "kernel_for",
    "register_kernel",
    "LaneResult",
    "ParallelReplayResult",
    "parallel_replay",
    "EventScheduler",
    "ThroughputSeries",
    "DropRateSampler",
    "EdgeRouter",
    "ExecutionBackend",
    "SequentialBackend",
    "BatchedBackend",
    "ParallelBackend",
    "PipelineConfig",
    "ReplayPipeline",
    "select_backend",
    "ReplayResult",
    "replay",
    "compare_drop_rates",
    "ClosedLoopSimulator",
    "ClosedLoopResult",
    "PacketColumns",
    "fast_replay",
    "process_packets_fast",
    "supports_fastpath",
]
