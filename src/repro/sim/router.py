"""The edge router: filter + blocked-connection persistence + accounting.

The section 5.3 replay methodology: a packet first checks the blocked-σ
store (a connection once refused stays refused); surviving packets go to
the filter; inbound drops register the connection as blocked.  Passed
traffic feeds the throughput series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.filters.base import PacketFilter, Verdict
from repro.filters.blocklist import BlockedConnectionStore
from repro.net.packet import Direction, Packet
from repro.sim.metrics import DropRateSampler, ThroughputSeries


class EdgeRouter:
    """One deployment point of Figure 6, as replayable code."""

    def __init__(
        self,
        packet_filter: PacketFilter,
        blocklist: Optional[BlockedConnectionStore] = None,
        throughput_interval: float = 1.0,
        drop_window: float = 10.0,
    ) -> None:
        self.filter = packet_filter
        self.blocklist = blocklist
        self.passed = ThroughputSeries(interval=throughput_interval)
        self.offered = ThroughputSeries(interval=throughput_interval)
        self.inbound_drops = DropRateSampler(window=drop_window)
        self.packets = 0

    def forward(self, packet: Packet) -> Verdict:
        """Run one packet through the router; returns the final verdict."""
        if packet.direction is None:
            raise ValueError("packet has no direction set")
        self.packets += 1
        self.offered.record(packet)

        if self.blocklist is not None and self.blocklist.suppress(packet):
            if packet.direction is Direction.INBOUND:
                self.inbound_drops.record(packet.timestamp, dropped=True)
            return Verdict.DROP

        verdict = self.filter.process(packet)
        if packet.direction is Direction.INBOUND:
            self.inbound_drops.record(packet.timestamp, verdict is Verdict.DROP)
            if verdict is Verdict.DROP and self.blocklist is not None:
                self.blocklist.block(packet.pair, packet.timestamp)
        if verdict is Verdict.PASS:
            self.passed.record(packet)
        return verdict

    def process_batch(self, packets: Sequence[Packet]) -> List[Verdict]:
        """Run a timestamp-ordered batch through the router.

        Produces exactly the verdicts ``[self.forward(p) for p in packets]``
        would, but routes bitmap filters through the fused columnar loop in
        :mod:`repro.sim.fastpath`; other filters fall back to the loop.
        """
        from repro.sim.fastpath import process_packets_fast, supports_fastpath

        if supports_fastpath(self.filter):
            return process_packets_fast(self, packets)
        return [self.forward(packet) for packet in packets]

    def merge_lane(self, lane) -> "EdgeRouter":
        """Fold one partitioned-replay lane's measurements into this router.

        ``lane`` is anything exposing ``offered``/``passed`` series, an
        ``inbound_drops`` sampler and a ``packets`` count — a
        :class:`repro.sim.parallel.LaneResult` or another router/result.
        Series bins and drop windows are keyed by absolute trace time, so
        merging per-lane records reproduces exactly the measurements one
        interleaved replay would have collected.
        """
        self.offered.merge(lane.offered)
        self.passed.merge(lane.passed)
        self.inbound_drops.merge(lane.inbound_drops)
        self.packets += lane.packets
        return self

    @property
    def drop_rate(self) -> float:
        """Overall inbound drop rate including blocklist suppressions."""
        return self.inbound_drops.overall_drop_rate()
