"""The edge router: filter + blocked-connection persistence + accounting.

The section 5.3 replay methodology: a packet first checks the blocked-σ
store (a connection once refused stays refused); surviving packets go to
the filter; inbound drops register the connection as blocked.  Passed
traffic feeds the throughput series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.filters.base import PacketFilter, Verdict
from repro.filters.blocklist import BlockedConnectionStore
from repro.net.packet import Direction, Packet
from repro.sim.metrics import DropRateSampler, ThroughputSeries


class EdgeRouter:
    """One deployment point of Figure 6, as replayable code."""

    def __init__(
        self,
        packet_filter: PacketFilter,
        blocklist: Optional[BlockedConnectionStore] = None,
        throughput_interval: float = 1.0,
        drop_window: float = 10.0,
    ) -> None:
        self.filter = packet_filter
        self.blocklist = blocklist
        self.passed = ThroughputSeries(interval=throughput_interval)
        self.offered = ThroughputSeries(interval=throughput_interval)
        self.inbound_drops = DropRateSampler(window=drop_window)
        self.packets = 0

    def forward(self, packet: Packet) -> Verdict:
        """Run one packet through the router; returns the final verdict."""
        if packet.direction is None:
            raise ValueError("packet has no direction set")
        self.packets += 1
        self.offered.record(packet)

        if self.blocklist is not None and self.blocklist.suppress(packet):
            if packet.direction is Direction.INBOUND:
                self.inbound_drops.record(packet.timestamp, dropped=True)
            return Verdict.DROP

        verdict = self.filter.process(packet)
        if packet.direction is Direction.INBOUND:
            self.inbound_drops.record(packet.timestamp, verdict is Verdict.DROP)
            if verdict is Verdict.DROP and self.blocklist is not None:
                self.blocklist.block(packet.pair, packet.timestamp)
        if verdict is Verdict.PASS:
            self.passed.record(packet)
        return verdict

    def process_batch(self, packets: Sequence[Packet]) -> List[Verdict]:
        """Run a timestamp-ordered batch through the router.

        Produces exactly the verdicts ``[self.forward(p) for p in packets]``
        would.  Filters with a registered fused kernel
        (:mod:`repro.sim.kernels`: bitmap, SPI, counting Bloom,
        token-bucket, RED policer, chain) take their one-loop columnar
        replay; every other filter goes through the first-class
        :meth:`PacketFilter.process_batch` protocol with the router's
        accounting stages split around it.  A kernel may decline a
        configuration it cannot fuse (the chain kernel with a blocklist —
        blocked-σ suppression must interleave with verdicts, and member
        composition cannot stage that), in which case the exact generic
        fallbacks below run instead.
        """
        from repro.sim.kernels import kernel_for

        kernel = kernel_for(self.filter)
        if kernel is not None:
            verdicts = kernel.run_packets(self, packets)
            if verdicts is not None:
                return verdicts
        if self.blocklist is None:
            return self._process_batch_generic(packets)
        return [self.forward(packet) for packet in packets]

    def process_table(self, table) -> List[Verdict]:
        """Run a timestamp-ordered :class:`~repro.net.table.PacketTable`
        through the router.

        Same verdicts as :meth:`process_batch` on ``table.to_packets()``.
        Registered filters take their table-native fused kernel
        (:mod:`repro.sim.kernels`) and never build a :class:`Packet`;
        unregistered filters (and configurations a kernel declines) fall
        back to the object protocols through a single reused
        zero-allocation :class:`~repro.net.table.PacketView` cursor
        (per-packet when a blocklist must interleave, batch otherwise).
        """
        from repro.sim.kernels import kernel_for

        kernel = kernel_for(self.filter)
        if kernel is not None:
            verdicts = kernel.run_table(self, table)
            if verdicts is not None:
                return verdicts
        if self.blocklist is None:
            return self._process_batch_generic(table.to_packets())
        return [self.forward(view) for view in table.iter_views()]

    def _process_batch_generic(self, packets: Sequence[Packet]) -> List[Verdict]:
        """Stage-split batch for any filter, blocklist-free.

        Offered accounting, one :meth:`PacketFilter.process_batch` call
        for the verdicts, then the metrics stage — equivalent to the
        per-packet loop because filter state never depends on router
        accounting and the bins are order-independent sums.
        """
        for packet in packets:
            if packet.direction is None:
                raise ValueError("packet has no direction set")
            self.offered.record(packet)
        self.packets += len(packets)
        verdicts = self.filter.process_batch(packets)
        for packet, verdict in zip(packets, verdicts):
            if packet.direction is Direction.INBOUND:
                self.inbound_drops.record(packet.timestamp, verdict is Verdict.DROP)
            if verdict is Verdict.PASS:
                self.passed.record(packet)
        return verdicts

    def merge_lane(self, lane) -> "EdgeRouter":
        """Fold one partitioned-replay lane's measurements into this router.

        ``lane`` is anything exposing ``offered``/``passed`` series, an
        ``inbound_drops`` sampler and a ``packets`` count — a
        :class:`repro.sim.parallel.LaneResult` or another router/result.
        Series bins and drop windows are keyed by absolute trace time, so
        merging per-lane records reproduces exactly the measurements one
        interleaved replay would have collected.
        """
        self.offered.merge(lane.offered)
        self.passed.merge(lane.passed)
        self.inbound_drops.merge(lane.inbound_drops)
        self.packets += lane.packets
        return self

    @property
    def drop_rate(self) -> float:
        """Overall inbound drop rate including blocklist suppressions."""
        return self.inbound_drops.overall_drop_rate()

    # ------------------------------------------------------------------
    # Persistence — the service plane's warm-restart coverage
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable router measurement lanes + blocklist.

        Covers everything the router owns *except the filter* (which has
        its own snapshot with deeper state — bits, RNG, estimator): the
        offered/passed throughput lanes, the inbound drop-rate windows,
        the packet counter and the blocked-σ store.  Restoring this over
        a fresh router makes a resumed service's telemetry continue the
        same series an uninterrupted run would have produced.
        """
        return {
            "packets": self.packets,
            "offered": self.offered.snapshot(),
            "passed": self.passed.snapshot(),
            "inbound_drops": self.inbound_drops.snapshot(),
            "blocklist": (
                self.blocklist.snapshot() if self.blocklist is not None else None
            ),
        }

    def restore_state(self, snapshot: dict) -> "EdgeRouter":
        """Overwrite this router's measurement lanes and blocklist with a
        :meth:`snapshot`'s contents (the filter is untouched — restore it
        separately).  Returns ``self``."""
        self.packets = snapshot["packets"]
        self.offered = ThroughputSeries.restore(snapshot["offered"])
        self.passed = ThroughputSeries.restore(snapshot["passed"])
        self.inbound_drops = DropRateSampler.restore(snapshot["inbound_drops"])
        blocked = snapshot["blocklist"]
        if blocked is not None:
            self.blocklist = BlockedConnectionStore.restore(blocked)
        elif self.blocklist is not None:
            # The snapshot ran without a blocklist; a restored service
            # must not invent one (suppression would diverge).
            self.blocklist = None
        return self
