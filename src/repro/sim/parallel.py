"""Multiprocess sharded replay — Figure 6's core-router placement at scale.

A :class:`repro.filters.sharded.ShardedFilter` already partitions filter
state by client network, and shards "touch disjoint memory": a packet's
shard is decided by its *inner* address, a connection's packets all share
one inner address, and the blocked-σ store is keyed per connection.  A
sharded replay therefore decomposes exactly:

1. **Partition** the timestamp-ordered stream into per-shard sub-streams
   (the filter's :class:`~repro.shard.plan.ShardPlan`); transit packets
   matching no shard go to a *default lane* that applies
   ``default_verdict``.
2. **Replay each lane in its own worker process**, each driving the
   lane filter's fused kernel (:mod:`repro.sim.kernels` — any registered
   filter type, not just bitmap) over its sub-stream.  Lane processes
   live under a :class:`~repro.shard.lifecycle.WorkerPool`; the serial
   (``workers=1``) path isolates each lane through a
   :class:`~repro.shard.lifecycle.MemberLane` instead.  Every lane's
   filter carries its own RNG (seeded deterministically at
   construction), so verdicts are independent of worker scheduling.
3. **Merge** the picklable per-lane records back into one aggregate
   (:func:`~repro.shard.lifecycle.fold_lane_record` plus the metrics
   ``merge()`` layer): throughput-series bins and drop-rate windows are
   keyed by absolute trace time and counters are pure sums, so the
   merged result is bit-identical to a single-process replay of the
   interleaved stream.

The per-lane unit of work is one shard, so parallelism is capped by the
shard count; ``workers`` caps the number of simultaneous processes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.filters.base import FilterStats
from repro.filters.sharded import ShardedFilter
from repro.net.packet import SocketPair
from repro.net.table import PacketTable, as_table
from repro.shard.lifecycle import (
    DefaultLaneFilter,
    MemberLane,
    WorkerPool,
    combine_lane_fingerprints,
    fold_lane_record,
)
from repro.sim.metrics import DropRateSampler, ThroughputSeries
from repro.sim.pipeline import PipelineConfig, ReplayPipeline, ReplayResult

__all__ = [
    "DefaultLaneFilter",
    "LaneResult",
    "ParallelReplayResult",
    "parallel_replay",
]


@dataclass
class LaneResult:
    """One worker's replay outcome, shipped back over ``multiprocessing``.

    Everything here is plain picklable data: counter dataclasses, series
    objects backed by ``dict``s, and (optionally) the lane's blocked-σ
    table.  ``lane`` is the shard index, or -1 for the default lane.
    ``fingerprint`` is the lane's own FNV-1a verdict fingerprint when
    the replay recorded one — the per-lane quantity
    :func:`~repro.shard.lifecycle.combine_lane_fingerprints` aggregates.
    """

    lane: int
    packets: int
    inbound_packets: int
    inbound_dropped: int
    filter_stats: FilterStats
    core_stats: Optional[dict]
    offered: ThroughputSeries
    passed: ThroughputSeries
    inbound_drops: DropRateSampler
    blocked: Optional[Dict[SocketPair, float]]
    suppressed_packets: int
    suppressed_bytes: int
    fingerprint: Optional[int] = None


#: A parallel replay returns the same unified :class:`ReplayResult` as
#: every other backend, with ``workers`` and per-lane ``lanes`` filled
#: in.  ``router.filter`` is the caller's :class:`ShardedFilter` with
#: lane statistics flushed back in (top-level and per-shard counters,
#: ``unrouted_packets``), so ``shard_stats()`` reads as if the replay
#: had run in-process.  Filter *state* (bitmap bits, rotation clocks)
#: stays in the worker processes — a parallel replay is a measurement
#: run, not a warm filter you can keep feeding.  The name survives as a
#: compatibility alias for the pre-unification result split.
ParallelReplayResult = ReplayResult


def _replay_lane(task) -> LaneResult:
    """Worker entry point: replay one lane's sub-stream, record everything.

    Runs in a child process; ``task`` and the returned :class:`LaneResult`
    cross the process boundary by pickling.  ``packets`` is either the
    lane table itself (pickle transport / in-process) or a
    :class:`~repro.sim.shm.ShmLane` reference, in which case the worker
    maps the parent's column bytes in place and replays the zero-copy
    view table.
    """
    from repro.sim.replay import replay
    from repro.sim.shm import ShmLane, attach_lane

    (lane, lane_filter, packets, use_blocklist, throughput_interval,
     drop_window, batched, record_fingerprint) = task
    attachment = None
    if isinstance(packets, ShmLane):
        attachment = attach_lane(packets)
        packets = attachment.table
    try:
        result = replay(
            packets,
            lane_filter,
            use_blocklist=use_blocklist,
            throughput_interval=throughput_interval,
            drop_window=drop_window,
            batched=batched,
            record_fingerprint=record_fingerprint,
        )
    finally:
        if attachment is not None:
            attachment.close()
    router = result.router
    core = getattr(lane_filter, "core", None)
    blocklist = router.blocklist
    return LaneResult(
        lane=lane,
        packets=result.packets,
        inbound_packets=result.inbound_packets,
        inbound_dropped=result.inbound_dropped,
        filter_stats=lane_filter.stats,
        core_stats=core.stats.as_dict() if core is not None else None,
        offered=router.offered,
        passed=router.passed,
        inbound_drops=router.inbound_drops,
        blocked=dict(blocklist._blocked) if blocklist is not None else None,
        suppressed_packets=blocklist.suppressed_packets if blocklist else 0,
        suppressed_bytes=blocklist.suppressed_bytes if blocklist else 0,
        fingerprint=result.fingerprint,
    )


def _check_rng_isolation(sharded: ShardedFilter) -> None:
    """Reject shard filters sharing one RNG object.

    In-process, shards sharing a ``random.Random`` interleave their draws;
    across processes each worker would advance its own copy, silently
    breaking the equivalence contract.  Per-shard RNGs (the default —
    every ``BitmapPacketFilter`` seeds its own) are required.
    """
    seen: Dict[int, str] = {}
    for position, member in enumerate(sharded.members):
        holder = getattr(member, "core", member)
        rng = getattr(holder, "_rng", None)
        if rng is None:
            continue
        label = sharded.shard_label(position)
        previous = seen.get(id(rng))
        if previous is not None:
            raise ValueError(
                f"shards {previous} and {label} share one RNG object; "
                "parallel replay needs a deterministic per-shard RNG"
            )
        seen[id(rng)] = label


def parallel_replay(
    packets,
    packet_filter: ShardedFilter,
    workers: Optional[int] = None,
    use_blocklist: bool = True,
    throughput_interval: float = 1.0,
    drop_window: float = 10.0,
    batched: bool = True,
    transport: str = "auto",
    record_fingerprint: bool = False,
) -> ParallelReplayResult:
    """Replay a packet stream through a sharded filter, one worker per lane.

    ``packets`` may be a packet list, a :class:`PacketTable`, or an
    iterable of either (a stream of generator chunks is merged into one
    table first).  Columnar input partitions by interned flow
    (:meth:`ShardedFilter.partition_table`) into pool-sharing lane
    tables, and each lane replays columnar end to end.

    Produces the same merged verdict counts, throughput-series bins,
    drop-rate windows and per-shard statistics as
    ``replay(packets, packet_filter)`` in a single process, for any
    ``workers`` — the partitioning is by connection ownership, so no
    decision ever depends on another lane's state.  ``workers`` bounds
    concurrent processes (default: ``os.cpu_count()``); ``workers=1``
    runs the lanes serially in-process with zero multiprocessing overhead
    but the same merge path.  ``batched`` selects each lane's engine —
    the columnar batched backend by default, the sequential per-packet
    backend with ``batched=False`` — with bit-identical merged results
    either way.

    ``transport`` picks the lane dispatch mechanism: ``"shm"`` publishes
    column buffers into one shared-memory segment and ships workers only
    offsets (:mod:`repro.sim.shm`; object-shaped input is columnarized
    first), ``"pickle"`` serializes lane tables through the pipe, and
    ``"auto"`` (the default) uses shared memory whenever the dispatch is
    multiprocess, the input columnar and the platform capable.  Verdicts
    and merged statistics are identical across transports.

    ``record_fingerprint`` records each lane's own FNV-1a verdict
    fingerprint (``result.lanes[i].fingerprint``) and sets
    ``result.fingerprint`` to their lane-keyed, order-independent
    combination (:func:`~repro.shard.lifecycle.combine_lane_fingerprints`).
    This is **not** the interleaved-stream fingerprint an in-process
    replay records — it is the shard-decomposed invariant a fleet of
    independent daemons can reproduce, and the offline reference the
    fleet smoke verifies against.
    """
    from repro.sim.shm import HAVE_SHARED_MEMORY, SharedTableArena

    if not isinstance(packet_filter, ShardedFilter):
        raise ValueError(
            "parallel replay needs a ShardedFilter — only sharded state "
            f"partitions across processes (got {type(packet_filter).__name__})"
        )
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(
            f"transport must be 'auto', 'shm' or 'pickle': {transport!r}"
        )
    if transport == "shm" and not HAVE_SHARED_MEMORY:
        raise ValueError(
            "transport='shm' needs multiprocessing.shared_memory, which "
            "this platform lacks"
        )
    _check_rng_isolation(packet_filter)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")

    if transport == "shm" and not isinstance(packets, PacketTable):
        # The shared-memory transport ships column buffers; coerce
        # object-shaped input through the exact columnar converter.
        packets = as_table(packets)
    if not isinstance(packets, (list, PacketTable)):
        materialized = list(packets)
        if materialized and isinstance(materialized[0], PacketTable):
            # A stream of generator chunks: merge into one table (exact
            # re-interning converter) and partition columnar.
            packets = as_table(materialized)
        else:
            packets = materialized
    if isinstance(packets, PacketTable):
        span = (
            (packets.timestamps[0], packets.timestamps[-1])
            if len(packets) else None
        )
        lanes, default_lane = packet_filter.partition_table(packets)
    else:
        span = (
            (packets[0].timestamp, packets[-1].timestamp) if packets else None
        )
        lanes, default_lane = packet_filter.partition_packets(packets)

    lane_work: List[Tuple[int, object, object]] = []  # (lane, filter, packets)
    for position, lane_packets in enumerate(lanes):
        if not len(lane_packets):
            continue
        lane_work.append(
            (position, packet_filter.members[position], lane_packets)
        )
    if len(default_lane):
        lane_work.append(
            (-1, DefaultLaneFilter(packet_filter.default_verdict), default_lane)
        )

    in_process = workers <= 1 or len(lane_work) <= 1
    columnar = all(
        isinstance(lane_packets, PacketTable) for _, _, lane_packets in lane_work
    )
    use_shm = (
        not in_process
        and columnar
        and bool(lane_work)
        and HAVE_SHARED_MEMORY
        and transport != "pickle"
    )

    arena = None
    if use_shm:
        arena = SharedTableArena.publish(
            [(lane, lane_packets) for lane, _, lane_packets in lane_work]
        )
        payloads = arena.lanes
    else:
        payloads = [lane_packets for _, _, lane_packets in lane_work]

    tasks: List[Tuple] = []
    for (lane, lane_filter, _), payload in zip(lane_work, payloads):
        if in_process:
            # The in-process path replays the parent's own filter objects;
            # a MemberLane isolates each (deep copy on launch) so the
            # parent's filter only accumulates the merged statistics
            # afterwards.  Multiprocess dispatch skips this — pickling
            # into the worker is already a copy, and a parent-side
            # deepcopy would just double the dispatch cost.
            member = MemberLane(lane, lane_filter, isolate=True)
            member.launch()
            lane_filter = member.filter
        tasks.append((lane, lane_filter, payload, use_blocklist,
                      throughput_interval, drop_window, batched,
                      record_fingerprint))

    try:
        if in_process:
            records = [_replay_lane(task) for task in tasks]
        else:
            with WorkerPool(min(workers, len(tasks))) as pool:
                records = pool.map(_replay_lane, tasks)
    finally:
        if arena is not None:
            arena.dispose()

    return _merge(packet_filter, span, records, workers,
                  use_blocklist, throughput_interval, drop_window,
                  record_fingerprint)


def _merge(
    packet_filter: ShardedFilter,
    span: Optional[Tuple[float, float]],
    records: List[LaneResult],
    workers: int,
    use_blocklist: bool,
    throughput_interval: float,
    drop_window: float,
    record_fingerprint: bool = False,
) -> ReplayResult:
    """Fold per-lane records into one router-shaped aggregate.

    The merge drives the same :class:`ReplayPipeline` every backend uses:
    per-lane measurements fold in through :meth:`ReplayPipeline.merge_lane`,
    filter statistics and blocked-σ rows through the shared
    :func:`~repro.shard.lifecycle.fold_lane_record` arm, and the shared
    finalize hook compacts the merged blocklist at the trace's end time.
    A lane's store only GCs on its own lane's clock, so an idle lane can
    ship expired entries a single-process store would already have
    collected; end-of-replay compaction leaves exactly the still-live
    entries — the same table every other backend's finalize produces.
    """
    pipeline = ReplayPipeline(PipelineConfig(
        packet_filter=packet_filter,
        use_blocklist=use_blocklist,
        throughput_interval=throughput_interval,
        drop_window=drop_window,
    ))
    blocklist = pipeline.router.blocklist
    for record in records:
        pipeline.merge_lane(record)
        fold_lane_record(packet_filter, record, blocklist=blocklist)
    if span is not None:
        pipeline.observe_span(*span)
    result = pipeline.finalize(workers=workers, lanes=records)
    if record_fingerprint:
        result.fingerprint = combine_lane_fingerprints({
            record.lane: record.fingerprint
            for record in records
            if record.fingerprint is not None
        })
    return result
